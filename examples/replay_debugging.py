#!/usr/bin/env python
"""Checkpoint + replay debugging (paper §5).

"Other applications of data breakpoints include ... checkpointing data
for replayed execution."

The program below corrupts one element of a table somewhere in a long
computation.  The replay loop: checkpoint at startup, run with a single
coarse watchpoint over the whole table to learn *which* element dies,
then rewind and re-run with a precise watchpoint on just that element
to catch the corrupting store red-handed — without restarting the
process or losing determinism.
"""

from repro.debugger import Debugger

PROGRAM = """
int table[16];
int trash;

int mix(int round) {
    register int i;
    for (i = 0; i < 16; i++) {
        table[i] = table[i] * 3 + round;
    }
    return table[round % 16];
}

int vandal(int which) {
    table[which] = -999;      // the corruption, buried mid-run
    return which;
}

int main() {
    register int round;
    for (round = 0; round < 6; round++) {
        mix(round);
        if (round == 3) {
            vandal(11);
        }
    }
    print(table[11]);
    return 0;
}
"""


def main():
    debugger = Debugger.for_source(PROGRAM, optimize=None)
    checkpoint = debugger.checkpoint()

    # pass 1: coarse watch over the whole table, find the bad element
    coarse = debugger.watch("table", action="call",
                            callback=lambda wp, addr, size, value:
                            bad.append((addr, value))
                            if value == -999 else None)
    bad = []
    debugger.run()
    assert bad, "corruption not observed"
    corrupted_addr = bad[0][0]
    element = (corrupted_addr - coarse.region.start) // 4
    print("pass 1: table[%d] was set to %d (%d total writes seen)"
          % (element, bad[0][1], coarse.hit_count()))

    # rewind and re-run with a precise breakpoint on just that element
    debugger.restore(checkpoint)
    coarse.delete()
    precise = debugger.watch("table[%d]" % element, action="stop",
                             condition=lambda v: v == -999)
    reason = debugger.run()
    assert reason == "watch"
    print("pass 2 (replay): stopped at the corrupting store; "
          "table[%d] = %d" % (element, precise.last_value()))

    # identical determinism: finish the replay, outputs match
    reason = debugger.run()
    assert reason == "exited"
    print("program output:", " ".join(debugger.output))
    print("replay debugging OK")


if __name__ == "__main__":
    main()
