#!/usr/bin/env python
"""Data structure animation (paper §5).

"Other applications of data breakpoints include ... data structure
animation" — rendering a structure's evolution as the program mutates
it, without a single line of logging code in the program.

Here a binary min-heap is watched while the program pushes and pops;
every mutation redraws the heap as an ASCII tree snapshot.  The program
itself has no instrumentation hooks: the frames come entirely from
monitor-hit notifications on the heap array.
"""

from repro.debugger import Debugger
from repro.isa.instructions import to_signed

PROGRAM = """
int heap[15];
int count;

int push(int v) {
    register int i;
    register int parent;
    int t;
    heap[count] = v;
    i = count;
    count += 1;
    while (i > 0) {
        parent = (i - 1) / 2;
        if (heap[parent] <= heap[i]) break;
        t = heap[parent];
        heap[parent] = heap[i];
        heap[i] = t;
        i = parent;
    }
    return count;
}

int pop() {
    register int i;
    register int child;
    int top;
    int t;
    top = heap[0];
    count -= 1;
    heap[0] = heap[count];
    i = 0;
    while (2 * i + 1 < count) {
        child = 2 * i + 1;
        if (child + 1 < count && heap[child + 1] < heap[child]) {
            child += 1;
        }
        if (heap[i] <= heap[child]) break;
        t = heap[i];
        heap[i] = heap[child];
        heap[child] = t;
        i = child;
    }
    return top;
}

int main() {
    push(9); push(4); push(7); push(1); push(8);
    print(pop());
    print(pop());
    return 0;
}
"""


def render_heap(memory, base, count):
    """One ASCII frame of the heap as a level-order tree."""
    values = [to_signed(memory.read_word(base + 4 * i))
              for i in range(count)]
    if not values:
        return "   (empty)"
    lines = []
    level, start = 0, 0
    while start < len(values):
        width = 1 << level
        chunk = values[start:start + width]
        indent = " " * (12 // (level + 1))
        lines.append(indent + indent.join("%2d" % v for v in chunk))
        start += width
        level += 1
    return "\n".join(lines)


def main():
    debugger = Debugger.for_source(PROGRAM, optimize=None)
    heap_entry = debugger.symtab.lookup("heap")
    count_entry = debugger.symtab.lookup("count")
    memory = debugger.cpu.mem
    frames = []

    def animate(watchpoint, addr, size, value):
        count = memory.read_word(count_entry.address)
        frames.append(render_heap(memory, heap_entry.address, count))

    debugger.watch("heap", action="call", callback=animate)
    debugger.watch("count", action="call", callback=animate)
    debugger.run()

    print("program output:", " ".join(debugger.output))
    print("%d animation frames captured; a selection:" % len(frames))
    for index in (0, len(frames) // 2, len(frames) - 1):
        print("--- frame %d ---" % index)
        print(frames[index])
    assert debugger.output == ["1", "4"]
    assert len(frames) > 10
    print("data structure animation OK")


if __name__ == "__main__":
    main()
