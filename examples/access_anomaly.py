#!/usr/bin/env python
"""Read monitoring (§5 extension): an uninitialized-read detector.

The paper closes by noting that "some applications of data breakpoints,
such as detecting access anomalies in parallel programs, require the
monitoring of read instructions as well ... Straightforward extensions
of these techniques will handle read instructions as well."

This reproduction implements that extension (``monitor_reads=True``
instruments loads with the same check code, reporting hits with a read
flag).  Here we use it for a classic dynamic check: reading a heap word
before anything was written to it.
"""

from repro.minic.codegen import compile_source
from repro.session import DebugSession

PROGRAM = """
int main() {
    int *block;
    int a;
    int b;
    block = sbrk(32);       // fresh 8-word allocation
    block[0] = 11;
    block[1] = 22;
    a = block[0] + block[1];
    b = block[5];            // BUG: never initialized
    print(a + b);
    return 0;
}
"""


def main():
    asm = compile_source(PROGRAM)
    session = DebugSession.from_asm(asm, strategy="Bitmap",
                                    monitor_reads=True)

    heap_base = session.cpu.mem.brk
    region = session.mrs.create_region(heap_base, 32)
    session.mrs.enable()

    initialized = set()
    anomalies = []

    def on_access(addr, size, is_read):
        word = addr & ~3
        if is_read:
            if word not in initialized:
                anomalies.append(word - heap_base)
        else:
            initialized.add(word)

    session.mrs.add_callback(on_access)
    session.run()

    print("program output:", " ".join(session.output))
    print("monitored accesses:", len(session.mrs.hits),
          "(reads and writes)")
    for offset in anomalies:
        print("ANOMALY: read of uninitialized heap word at offset %d"
              % offset)
    assert anomalies == [20], anomalies  # block[5] at byte offset 20
    print("uninitialized read caught by read+write monitoring")


if __name__ == "__main__":
    main()
