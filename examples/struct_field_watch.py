#!/usr/bin/env python
"""The paper's §1 example: "stop when field f of structure s is
modified" — with the structure updated through reference parameters
and pointer aliases, where finding every updating statement by hand
"is both tedious and error-prone".
"""

from repro.debugger import Debugger

PROGRAM = """
struct sensor { int id; int reading; int alarm; };

struct sensor station;
struct sensor *probe;

int calibrate(struct sensor *s) {
    s->reading = 0;                    // write via parameter
    return 0;
}

int sample(struct sensor *s, int raw) {
    s->reading = raw * 2 + 1;          // write via parameter
    if (s->reading > 90) {
        s->alarm = 1;
    }
    return s->reading;
}

int main() {
    register int t;
    probe = &station;
    station.id = 17;
    calibrate(probe);
    for (t = 1; t <= 5; t = t + 1) {
        sample(probe, t * 10);         // readings 21,41,61,81,101
    }
    print(station.reading);
    print(station.alarm);
    return 0;
}
"""


def main():
    debugger = Debugger.for_source(PROGRAM, optimize="full")

    # stop when station.reading is modified to a value above 90
    watchpoint = debugger.watch("station.reading", action="stop",
                                condition=lambda value: value > 90)
    trace = debugger.watch("station.reading", action="print")

    reason = debugger.run()
    print("stopped:", reason)
    print("update trace so far:")
    for line in debugger.log:
        print("   ", line)
    assert reason == "watch"
    assert watchpoint.last_value() == 101

    # resume to completion
    reason = debugger.run()
    assert reason == "exited"
    print("program output:", " ".join(debugger.output))
    print("total updates to station.reading:", trace.hit_count())
    assert trace.hit_count() == 6   # calibrate + 5 samples
    print("struct field watch OK")


if __name__ == "__main__":
    main()
