#!/usr/bin/env python
"""Compare every write-check implementation on one workload.

A miniature of the paper's evaluation: runs the matrix300 mimic under
each §3 strategy (and the §4 optimizers) and prints the overhead each
one costs relative to the uninstrumented program — ending with the
paper's two headline configurations: check-everything (~Table 1) and
check-almost-nothing (~Table 2 "Full").
"""

from repro.eval.overhead import WorkloadBench
from repro.optimizer.pipeline import build_plan

WORKLOAD = "030.matrix300"
SCALE = 0.6


def main():
    bench = WorkloadBench(WORKLOAD, scale=SCALE)
    base = bench.baseline()
    print("workload %s: %d instructions, %d writes (%.1f%% density)"
          % (WORKLOAD, base.instructions, base.stores,
             100.0 * base.stores / base.instructions))
    print()
    print("%-28s %10s" % ("configuration", "overhead"))

    disabled = bench.overhead("Bitmap", enabled=False)
    print("%-28s %9.1f%%" % ("checks present, disabled", disabled))

    for strategy in ("Bitmap", "BitmapInline", "BitmapInlineRegisters",
                     "Cache", "CacheInline"):
        overhead = bench.overhead(strategy, enabled=True)
        print("%-28s %9.1f%%" % (strategy, overhead))

    for mode, label in (("sym", "symbol optimization"),
                        ("full", "symbol + loop optimization")):
        _stmts, plan = build_plan(bench.asm, mode=mode)
        overhead = bench.overhead("BitmapInlineRegisters", enabled=True,
                                  plan=plan)
        eliminated = plan.summary()
        print("%-28s %9.1f%%   (eliminated: %s)"
              % (label, overhead,
                 ", ".join("%s=%d" % kv for kv in eliminated.items())))

    print()
    print("The ordering reproduces the paper: procedure-call checks "
          "cost the most, reserved registers cut that sharply, segment "
          "caching helps when locality is high, and dataflow "
          "elimination removes nearly all checks for scientific loops.")


if __name__ == "__main__":
    main()
