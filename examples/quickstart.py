#!/usr/bin/env python
"""Quickstart: practical data breakpoints in five minutes.

Compiles a small mini-C program, instruments every write instruction
with segmented-bitmap checks (Wahbe/Lucco/Graham, PLDI'93), sets a data
breakpoint on a global that is updated through pointers, and prints
each update as it happens — the paper's motivating "print the value of
field f of structure s every time it is updated" task, which is tedious
and error-prone with control breakpoints alone.
"""

from repro.debugger import Debugger

PROGRAM = """
int balance;
int *account;          // alias through which balance is modified

int deposit(int amount) {
    *account = *account + amount;     // writes balance via a pointer
    return *account;
}

int withdraw(int amount) {
    *account = *account - amount;
    return *account;
}

int main() {
    account = &balance;
    balance = 100;
    deposit(50);
    withdraw(30);
    deposit(5);
    print(balance);
    return 0;
}
"""


def main():
    debugger = Debugger.for_source(PROGRAM, optimize="full")

    # One line: watch the variable, whoever writes it, however aliased.
    watchpoint = debugger.watch("balance", action="print")

    reason = debugger.run()

    print("program output :", " ".join(debugger.output))
    print("stop reason    :", reason)
    print("updates seen   :", watchpoint.hit_count())
    for line in debugger.log:
        print("  data breakpoint:", line)

    assert watchpoint.hit_count() == 4          # init + 3 updates
    assert watchpoint.last_value() == 125
    print("quickstart OK")


if __name__ == "__main__":
    main()
