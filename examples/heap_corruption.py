#!/usr/bin/env python
"""Fault isolation: catch a heap-allocator corruption (paper §5).

"A programmer could detect corruption of library data structures such
as those used by a memory allocator."

The program below manages a free list.  One client function writes one
element past the end of its allocation, silently smashing the size
header of the *next* block — the classic corruption that crashes much
later, far from the bug.  We protect the allocator metadata with a
monitored region and an allow-list containing only the allocator
itself; the out-of-bounds writer is identified at the exact corrupting
store.
"""

from repro.debugger import Debugger, FaultIsolator

PROGRAM = """
int heap[64];
int free_top;

// a tiny allocator: blocks are [size, payload...]; metadata = heap[i]
int alloc(int n) {
    int base;
    base = free_top;
    heap[base] = n;                  // size header (allocator metadata)
    free_top = free_top + n + 1;
    return base + 1;
}

int fill(int block, int n, int v) {
    register int i;
    for (i = 0; i <= n; i = i + 1) {   // BUG: <= writes one past the end
        heap[block + i] = v;
    }
    return v;
}

int main() {
    int a;
    int b;
    a = alloc(4);
    b = alloc(4);
    fill(a, 4, 7);        // smashes heap[b-1], block b's size header
    print(heap[b - 1]);   // corrupted: 7 instead of 4
    return 0;
}
"""


def main():
    debugger = Debugger.for_source(PROGRAM, optimize=None,
                                   strategy="BitmapInlineRegisters")
    isolator = FaultIsolator(debugger,
                             allowed_functions=["alloc", "main"])
    # protect the allocator's metadata words: both blocks' size headers
    isolator.protect("heap[0]")
    isolator.protect("heap[5]")

    debugger.run()

    print("program output:", " ".join(debugger.output))
    if isolator.violations:
        for violation in isolator.violations:
            print("CORRUPTION: %s wrote allocator metadata at 0x%x "
                  "(write site %s)"
                  % (violation.func, violation.addr, violation.site))
    assert len(isolator.violations) == 1
    assert isolator.violations[0].func == "fill"
    print("heap corruption pinpointed at the corrupting store — "
          "not at the crash site")


if __name__ == "__main__":
    main()
