"""Write-site discovery and write-type classification.

A *write site* is one store instruction in the program text.  Sites are
numbered in statement order, and the numbering is shared between the
optimizer (which decides which checks to eliminate) and the rewriter
(which inserts the remaining checks), so both scan with the same
function.

Write types (§3.1) group writes by expected spatial locality so that
each group gets its own segment-cache register:

* ``STACK``  — target address computed from ``%fp`` or ``%sp``;
* ``BSS``    — constant target address (a ``set symbol`` base with a
  constant displacement);
* ``BSS-VAR`` — the FORTRAN idiom: a ``set symbol`` base indexed by a
  register (recognized only for ``lang="F"`` programs, like the paper's
  special-casing of the Sun FORTRAN compiler);
* ``HEAP``   — everything else.
"""

from __future__ import annotations

from repro.errors import ReproError

from typing import Dict, List, NamedTuple, Optional

from repro.asm.ast import (AsmInsn, CC_MNEMONICS, Label, Mem, Reg,
                           Statement, STORE_MNEMONICS, STORE_WIDTHS, Sym)
from repro.core.runtime_asm import (WRITE_TYPE_BSS, WRITE_TYPE_BSS_VAR,
                                    WRITE_TYPE_HEAP, WRITE_TYPE_STACK)
from repro.isa.registers import FP, REGISTER_IDS, SP


class InstrumentError(ReproError):
    """Raised when a program cannot be instrumented safely."""


class WriteSite(NamedTuple):
    site: int            # site id (index into the site list)
    index: int           # statement index in the program statement list
    stmt: AsmInsn        # the store statement itself
    width: int           # access width in bytes
    func: str            # enclosing function name
    write_type: int      # WRITE_TYPE_* constant


_RESERVED_REGS = {REGISTER_IDS[name] for name in
                  ("%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
                   "%m0", "%m1", "%m2", "%m3")}


def enumerate_write_sites(statements: List[Statement],
                          lang: str = "C") -> List[WriteSite]:
    """Number all store instructions and classify their write types.

    Also stamps ``stmt.site`` on each store statement so the assembler
    propagates site ids onto decoded instructions.
    """
    sites: List[WriteSite] = []
    func = ""
    # tracks, per register id, whether its current value is a "set symbol"
    # base (reset at labels and control transfers)
    set_base: Dict[int, bool] = {}
    prev_insn: Optional[AsmInsn] = None

    for index, stmt in enumerate(statements):
        if isinstance(stmt, Label):
            set_base.clear()
            prev_insn = None
            continue
        if not isinstance(stmt, AsmInsn):
            if getattr(stmt, "name", "") == "proc":
                func = _proc_name(stmt)
            continue
        if stmt.mnemonic in STORE_MNEMONICS and stmt.tag == "orig":
            if prev_insn is not None and prev_insn.is_dcti():
                raise InstrumentError(
                    "store in a branch delay slot at line %d cannot be "
                    "checked (compile without delay-slot scheduling)"
                    % stmt.line_no)
            _reject_reserved(stmt)
            write_type = _classify(stmt, set_base, lang)
            site = len(sites)
            stmt.site = site
            sites.append(WriteSite(site, index, stmt,
                                   STORE_WIDTHS[stmt.mnemonic], func,
                                   write_type))
        _track_defs(stmt, set_base)
        if stmt.is_dcti():
            set_base.clear()
        prev_insn = stmt
    return sites


def _proc_name(stmt) -> str:
    arg = stmt.args[0]
    return arg.name if isinstance(arg, Sym) else str(arg)


def _reject_reserved(stmt: AsmInsn) -> None:
    mem = stmt.ops[1]
    used = {mem.base}
    if mem.index is not None:
        used.add(mem.index)
    if isinstance(stmt.ops[0], Reg):
        used.add(stmt.ops[0].rid)
    reserved = used & _RESERVED_REGS
    if reserved:
        raise InstrumentError(
            "store at line %d uses MRS-reserved register(s) %s"
            % (stmt.line_no, sorted(reserved)))


def _track_defs(stmt: AsmInsn, set_base: Dict[int, bool]) -> None:
    """Track which registers currently hold a ``set symbol`` base."""
    mnemonic = stmt.mnemonic
    if mnemonic == "sethi":
        value, rd = stmt.ops
        set_base[rd.rid] = isinstance(value, Sym)
        return
    if mnemonic == "or" and len(stmt.ops) == 3:
        rs1, op2, rd = stmt.ops
        if isinstance(rs1, Reg) and isinstance(op2, Sym) and \
                op2.part == "lo" and set_base.get(rs1.rid):
            set_base[rd.rid] = True
            return
    # any other definition invalidates the base property
    rd = _dest_reg(stmt)
    if rd is not None:
        set_base[rd] = False


def _dest_reg(stmt: AsmInsn) -> Optional[int]:
    mnemonic = stmt.mnemonic
    if mnemonic in STORE_MNEMONICS or stmt.is_branch() or \
            mnemonic in ("ta", "nop"):
        return None
    if mnemonic in ("call",):
        return REGISTER_IDS["%o7"]
    if stmt.ops and isinstance(stmt.ops[-1], Reg):
        return stmt.ops[-1].rid
    return None


def _classify(stmt: AsmInsn, set_base: Dict[int, bool], lang: str) -> int:
    mem: Mem = stmt.ops[1]
    if mem.base in (FP, SP):
        return WRITE_TYPE_STACK
    if set_base.get(mem.base):
        if mem.index is None:
            return WRITE_TYPE_BSS
        if lang == "F":
            return WRITE_TYPE_BSS_VAR
    return WRITE_TYPE_HEAP


def check_cc_liveness(statements: List[Statement]) -> None:
    """Verify condition codes are never live across a store (§3 caveat).

    Inserted check code clobbers the condition codes, so a store must
    not sit between a cc-setting instruction and the branch that reads
    it.  The naive compiler guarantees this; this pass verifies it for
    hand-written assembly too.
    """
    pending_store: Optional[AsmInsn] = None
    for stmt in statements:
        if isinstance(stmt, Label):
            continue
        if not isinstance(stmt, AsmInsn):
            continue
        if stmt.mnemonic in STORE_MNEMONICS and stmt.tag == "orig":
            pending_store = stmt
            continue
        if stmt.mnemonic in CC_MNEMONICS:
            pending_store = None
        elif stmt.is_branch() and stmt.mnemonic not in ("ba", "bn"):
            if pending_store is not None:
                raise InstrumentError(
                    "condition codes live across the store at line %d "
                    "(branch at line %d reads them)"
                    % (pending_store.line_no, stmt.line_no))
        elif stmt.is_dcti():
            pending_store = None
