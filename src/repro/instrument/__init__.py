"""Write-check insertion: the analysis/patching tool of §2.1/§3."""
