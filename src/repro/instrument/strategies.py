"""Write-check code generators — the §3 implementation variants.

Each strategy generates, for one write site, the check code inserted
*after* the store (§2.1: checks go after the write so a wild jump onto
the store itself still gets checked).  All variants share the same
shape:

.. code-block:: asm

    st  %o0, [%fp-20]        ! the write instruction (site s)
    tst %g2                  ! global disabled flag
    bne .Lmrs_skip_s         ! branch around the check when disabled
    nop
    add %fp, -20, %g4        ! target address into the reserved register
    <strategy body>
  .Lmrs_skip_s:

Strategy bodies:

* ``Bitmap``               — ``call __mrs_check_w4`` (window push, §3);
* ``BitmapInline``         — full segmented-bitmap lookup inlined, with
  three scratch registers spilled below ``%sp`` (no reserved scratch);
* ``BitmapInlineRegisters`` — inlined lookup using reserved registers
  (``%g5`` = table base, ``%g6``/``%g7``/``%m0`` scratch): no spills,
  no address-constant recalculation;
* ``Cache``                — the four-instruction segment-cache check
  inlined; a procedure call on cache miss (§3.1);
* ``CacheInline``          — segment-cache check and miss path fully
  inlined (scratch: ``%g6``/``%g7``/``%g3``).
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.asm.ast import Mem
from repro.core.layout import MonitorLayout
from repro.core.runtime_asm import (TRAP_MONITOR_HIT, library_source,
                                    size_code)
from repro.instrument.writes import WriteSite
from repro.isa.registers import register_name


def address_computation(mem: Mem, dest: str = "%g4") -> str:
    """One instruction moving the store's effective address into *dest*."""
    base = register_name(mem.base)
    if mem.index is not None:
        return "add %s, %s, %s" % (base, register_name(mem.index), dest)
    if mem.disp:
        return "add %s, %d, %s" % (base, mem.disp, dest)
    return "mov %s, %s" % (base, dest)


class CheckStrategy:
    """Base class: builds per-site check code and the needed library."""

    name = "?"
    #: does the library need the per-write-type cache-miss handlers?
    needs_cache_lib = False
    #: does the strategy rely on host-initialized reserved registers?
    uses_reserved_base = False

    def __init__(self, layout: MonitorLayout = None,
                 monitor_reads: bool = False):
        self.layout = layout if layout is not None else MonitorLayout()
        self.monitor_reads = monitor_reads

    # -- public interface ---------------------------------------------------

    def site_check(self, site: WriteSite, is_read: bool = False
                   ) -> List[str]:
        """Assembly lines of the full check for *site*."""
        skip = ".Lmrs_skip_%d%s" % (site.site, "r" if is_read else "")
        lines = [
            "tst %g2",
            "bne %s" % skip,
            "nop",
            address_computation(site.stmt.ops[1 if not is_read else 0]),
        ]
        lines += self.body(site, skip, is_read)
        lines.append("%s:" % skip)
        return lines

    def library(self) -> str:
        return library_source(self.layout, with_cache=self.needs_cache_lib,
                              with_reads=self.monitor_reads)

    def body(self, site: WriteSite, skip: str, is_read: bool) -> List[str]:
        raise NotImplementedError

    # -- shared pieces ---------------------------------------------------------

    def _inline_full_lookup(self, seg_ptr: str, scratch_a: str,
                            scratch_b: str, done: str, width: int,
                            is_read: bool) -> List[str]:
        mask = self.layout.segment_words - 1
        bit_mask = 3 if width == 8 else 1  # aligned std: adjacent bits
        return [
            "srl %%g4, 2, %s" % scratch_a,
            "and %s, %d, %s" % (scratch_a, mask, scratch_a),
            "srl %s, 5, %s" % (scratch_a, scratch_b),
            "sll %s, 2, %s" % (scratch_b, scratch_b),
            "ld [%s+%s], %s" % (seg_ptr, scratch_b, scratch_b),
            "and %s, 31, %s" % (scratch_a, scratch_a),
            "srl %s, %s, %s" % (scratch_b, scratch_a, scratch_b),
            "andcc %s, %d, %%g0" % (scratch_b, bit_mask),
            "be %s" % done,
            "nop",
            "mov %d, %%g6" % size_code(width, is_read),
            "ta 0x%x" % TRAP_MONITOR_HIT,
        ]


class BitmapStrategy(CheckStrategy):
    """Address lookup executed via procedure call (Table 1 "Bitmap")."""

    name = "Bitmap"

    def body(self, site: WriteSite, skip: str, is_read: bool) -> List[str]:
        kind = "r" if is_read else "w"
        return ["call __mrs_check_%s%d" % (kind, site.width), "nop"]


class BitmapInlineStrategy(CheckStrategy):
    """Inlined bitmap lookup without reserved scratch registers.

    Three program registers are spilled to the unused area below ``%sp``
    and reloaded afterwards — the cost the paper attributes to inlining
    without reserved registers.
    """

    name = "BitmapInline"

    def body(self, site: WriteSite, skip: str, is_read: bool) -> List[str]:
        s = site.site
        restore = ".Lmrs_res_%d%s" % (s, "r" if is_read else "")
        lines = [
            "st %l5, [%sp-4]",
            "st %l6, [%sp-8]",
            "st %l7, [%sp-12]",
            "set %d, %%l5" % self.layout.seg_table_base,
            "srl %%g4, %d, %%l6" % self.layout.seg_shift,
            "sll %l6, 2, %l6",
            "ld [%l5+%l6], %l7",
            "tst %l7",
            "be %s" % restore,
            "nop",
        ]
        lines += self._inline_full_lookup("%l7", "%l5", "%l6", restore,
                                          site.width, is_read)
        lines += [
            "%s:" % restore,
            "ld [%sp-4], %l5",
            "ld [%sp-8], %l6",
            "ld [%sp-12], %l7",
        ]
        return lines


class BitmapInlineRegistersStrategy(CheckStrategy):
    """Inlined lookup with reserved registers (Table 1's winner, §5)."""

    name = "BitmapInlineRegisters"
    uses_reserved_base = True

    def body(self, site: WriteSite, skip: str, is_read: bool) -> List[str]:
        lines = [
            "srl %%g4, %d, %%g6" % self.layout.seg_shift,
            "sll %g6, 2, %g6",
            "ld [%g5+%g6], %g7",
            "tst %g7",
            "be %s" % skip,
            "nop",
        ]
        lines += self._inline_full_lookup("%g7", "%g6", "%m0", skip,
                                          site.width, is_read)
        return lines


class CacheStrategy(CheckStrategy):
    """Per-write-type segment caching; procedure call on cache miss."""

    name = "Cache"
    needs_cache_lib = True
    uses_reserved_base = True

    def body(self, site: WriteSite, skip: str, is_read: bool) -> List[str]:
        kind = "r" if is_read else "w"
        return [
            "srl %%g4, %d, %%g6" % self.layout.seg_shift,
            "cmp %%g6, %%m%d" % site.write_type,
            "be %s" % skip,
            "nop",
            "call __mrs_miss_%d_%s%d" % (site.write_type, kind, site.width),
            "nop",
        ]


class CacheInlineStrategy(CheckStrategy):
    """Segment caching with the miss path inlined as well."""

    name = "CacheInline"
    uses_reserved_base = True

    def body(self, site: WriteSite, skip: str, is_read: bool) -> List[str]:
        s = site.site
        suffix = "r" if is_read else ""
        full = ".Lmrs_full_%d%s" % (s, suffix)
        cache_reg = "%%m%d" % site.write_type
        lines = [
            "srl %%g4, %d, %%g6" % self.layout.seg_shift,
            "cmp %%g6, %s" % cache_reg,
            "be %s" % skip,
            "nop",
            "sll %g6, 2, %g7",
            "ld [%g5+%g7], %g7",
            "tst %g7",
            "bne %s" % full,
            "nop",
            "mov %%g6, %s" % cache_reg,
            "ba %s" % skip,
            "nop",
            "%s:" % full,
        ]
        lines += self._inline_full_lookup("%g7", "%g6", "%g3", skip,
                                          site.width, is_read)
        return lines


STRATEGIES: Dict[str, Type[CheckStrategy]] = {
    cls.name: cls for cls in (BitmapStrategy, BitmapInlineStrategy,
                              BitmapInlineRegistersStrategy, CacheStrategy,
                              CacheInlineStrategy)
}


def make_strategy(name: str, layout: MonitorLayout = None,
                  monitor_reads: bool = False) -> CheckStrategy:
    if name not in STRATEGIES:
        raise ValueError("unknown strategy %r (have %s)"
                         % (name, sorted(STRATEGIES)))
    return STRATEGIES[name](layout, monitor_reads)
