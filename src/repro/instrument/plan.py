"""Optimization plan: what the §4 optimizer tells the rewriter to do.

The optimizer never rewrites program instructions — it only decides
which write checks to *omit* (and how they can be re-inserted at
runtime), which pre-header checks to add, and which control-flow
verification code is required.  This module is the data contract
between :mod:`repro.optimizer` (producer) and
:mod:`repro.instrument.rewriter` (consumer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: elimination kinds, as reported in Table 2
ELIM_SYMBOL = "symbol"
ELIM_LOOP_INVARIANT = "li"
ELIM_RANGE = "range"
#: interprocedural points-to/range elimination (repro.analysis)
ELIM_IPA = "ipa"

ELIM_KINDS = (ELIM_SYMBOL, ELIM_LOOP_INVARIANT, ELIM_RANGE, ELIM_IPA)


class PassStats:
    """Per-pass site accounting: seen / eliminated / guarded.

    ``guarded`` counts sites the pass considered but could only handle
    with a runtime guard (loop pre-header checks) or had to refuse
    outright (ipa alias refusals); either way the inline check survives
    in some form.
    """

    __slots__ = ("seen", "eliminated", "guarded")

    def __init__(self, seen: int = 0, eliminated: int = 0,
                 guarded: int = 0):
        self.seen = seen
        self.eliminated = eliminated
        self.guarded = guarded

    def as_dict(self) -> Dict[str, int]:
        return {"seen": self.seen, "eliminated": self.eliminated,
                "guarded": self.guarded}

    def __repr__(self) -> str:
        return "<pass seen=%d eliminated=%d guarded=%d>" % (
            self.seen, self.eliminated, self.guarded)


class PreheaderCheck:
    """A check block inserted before a loop header.

    ``kind`` is "li" (a standard write check on a loop-invariant address)
    or "range" (a superpage range check on a monotonic address range).
    ``lines`` is assembly text computing the address/bounds into the
    reserved registers and trapping with ``ta 0x45`` (loop id in %g6) on
    a potential hit.  ``anchor_index`` is the statement index of the
    loop header label; the block is inserted just before it, in the
    pre-header position the optimizer guaranteed dominates the loop.
    """

    __slots__ = ("loop_id", "kind", "anchor_index", "lines")

    def __init__(self, loop_id: int, kind: str, anchor_index: int,
                 lines: List[str]):
        self.loop_id = loop_id
        self.kind = kind
        self.anchor_index = anchor_index
        self.lines = lines


class OptimizationPlan:
    """Everything the rewriter needs to apply §4 optimizations."""

    def __init__(self):
        #: site id -> elimination kind (ELIM_*)
        self.eliminate: Dict[int, str] = {}
        #: (function, symbol name) -> site ids writing exactly that symbol
        self.symbol_sites: Dict[Tuple[str, str], List[int]] = {}
        #: loop id -> site ids whose checks the loop optimization removed
        self.loop_sites: Dict[int, List[int]] = {}
        #: pre-header check blocks
        self.preheaders: List[PreheaderCheck] = []
        #: statement indices (of prologue saves) after which the %fp
        #: shadow-stack push is inserted (§4.2)
        self.fp_push_indices: List[int] = []
        #: statement indices (of returns) before which the %fp
        #: shadow-stack pop/compare is inserted
        self.fp_check_indices: List[int] = []
        #: statement indices of indirect jumps (returns) needing target
        #: verification before they execute
        self.jmp_check_indices: List[int] = []
        #: pseudo-variable key -> StaticSym, from symbol promotion;
        #: pre-header code generation reads variables' home slots with it
        self.promoted: Dict = {}
        #: how many reserved registers this plan's code uses (report only)
        self.reserved_registers = 3
        #: site id -> human-readable provenance chain explaining why the
        #: pass eliminated the check (audit reports quote this verbatim)
        self.why_eliminated: Dict[int, str] = {}
        #: pass name ("symbol"/"loop"/"ipa") -> PassStats; populated by
        #: build_plan and reset at the start of every run
        self.pass_stats: Dict[str, PassStats] = {}
        #: site id -> static may-write fact from the ipa analysis:
        #:   None                      unknown target, may write anything
        #:   "heap"                    writes the sbrk arena only
        #:   ("frame", func)           writes func's stack frame only
        #:   [(name, func|None), ...]  writes within these symtab entries
        #: consumed by the watchpoint predicate pruner; only "ipa" plans
        #: populate it (empty dict otherwise)
        self.write_facts: Dict[int, object] = {}

    @property
    def uses_shadow_stack(self) -> bool:
        return bool(self.fp_push_indices)

    def eliminated_sites(self) -> List[int]:
        return sorted(self.eliminate)

    def merge_site(self, site: int, kind: str,
                   why: Optional[str] = None) -> None:
        """Record an elimination (first decision wins)."""
        if site in self.eliminate:
            return
        self.eliminate[site] = kind
        if why is not None:
            self.why_eliminated[site] = why

    def stats_for(self, pass_name: str) -> PassStats:
        """The (lazily created) statistics bucket for *pass_name*."""
        return self.pass_stats.setdefault(pass_name, PassStats())

    def reset_stats(self) -> None:
        """Drop all pass statistics (called at the top of build_plan)."""
        self.pass_stats.clear()

    def summary(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in ELIM_KINDS}
        for kind in self.eliminate.values():
            counts[kind] += 1
        return counts
