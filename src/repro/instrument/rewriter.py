"""The analysis/patching tool: inserts write checks into assembly.

This is the paper's "extra processing stage between the compiler and
the assembler" (§2.1).  It consumes the compiler's assembly (as parsed
statements), numbers the write sites, inserts the chosen strategy's
check code after each unchecked write, materializes Kessler-style patch
blocks for checks the optimizer eliminated (§4), inserts pre-header
check blocks and control-flow verification code from the optimization
plan, and appends the monitor library.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.asm.assembler import Program, assemble
from repro.asm.ast import AsmInsn, Label, Statement
from repro.asm.parser import parse
from repro.core.layout import MonitorLayout
from repro.instrument.plan import OptimizationPlan
from repro.instrument.strategies import (CheckStrategy, address_computation,
                                         make_strategy)
from repro.instrument.writes import (InstrumentError, WriteSite,
                                     check_cc_liveness,
                                     enumerate_write_sites)
from repro.isa import instructions as I


def _parse_tagged(lines: List[str], tag: str) -> List[Statement]:
    text = "\t.tag %s\n" % tag + "\n".join("\t" + ln if not
                                           ln.endswith(":") else ln
                                           for ln in lines) + "\n"
    return parse(text)


class SiteRuntimeInfo:
    """Post-assembly info needed to patch one eliminated site."""

    __slots__ = ("site", "addr", "patch_addr", "original_insn", "active")

    def __init__(self, site: int, addr: int, patch_addr: int,
                 original_insn: I.Instruction):
        self.site = site
        self.addr = addr
        self.patch_addr = patch_addr
        self.original_insn = original_insn
        self.active = False


class InstrumentResult:
    """Instrumented statements plus all the metadata the MRS needs."""

    def __init__(self, statements: List[Statement],
                 sites: List[WriteSite], strategy: CheckStrategy,
                 plan: Optional[OptimizationPlan]):
        self.statements = statements
        self.sites = sites
        self.strategy = strategy
        self.plan = plan if plan is not None else OptimizationPlan()
        self.program: Optional[Program] = None
        #: site id -> SiteRuntimeInfo for every *eliminated* site
        self.patchable: Dict[int, SiteRuntimeInfo] = {}

    @property
    def layout(self) -> MonitorLayout:
        return self.strategy.layout

    def assemble(self, **kwargs) -> Program:
        """Assemble the instrumented statements and resolve site info."""
        program = assemble(self.statements, **kwargs)
        self.program = program
        site_addr: Dict[int, int] = {}
        site_insn: Dict[int, I.Instruction] = {}
        for index, insn in enumerate(program.insns):
            if insn.site is not None and insn.tag == "orig" and \
                    insn.site not in site_addr:
                site_addr[insn.site] = program.text_base + 4 * index
                site_insn[insn.site] = insn
        for site_id in self.plan.eliminate:
            patch_label = ".Lmrs_patch_%d" % site_id
            if patch_label not in program.labels:
                raise InstrumentError("missing patch block for site %d"
                                      % site_id)
            self.patchable[site_id] = SiteRuntimeInfo(
                site_id, site_addr[site_id], program.labels[patch_label],
                site_insn[site_id])
        return program


class Rewriter:
    def __init__(self, strategy: CheckStrategy,
                 plan: Optional[OptimizationPlan] = None,
                 monitor_reads: bool = False):
        self.strategy = strategy
        self.plan = plan if plan is not None else OptimizationPlan()
        self.monitor_reads = monitor_reads

    def rewrite(self, statements: List[Statement],
                lang: str = "C") -> InstrumentResult:
        sites = enumerate_write_sites(statements, lang)
        check_cc_liveness(statements)
        eliminated = self.plan.eliminate
        # statement index -> statements to insert after / before it
        after: Dict[int, List[Statement]] = {}
        before: Dict[int, List[Statement]] = {}
        patch_sections: List[Statement] = []

        for site in sites:
            if site.site in eliminated:
                ret_label = ".Lmrs_ret_%d" % site.site
                after.setdefault(site.index, []).append(
                    Label(ret_label, site.stmt.line_no))
                patch_sections.extend(self._patch_block(site, ret_label))
            else:
                lines = self.strategy.site_check(site)
                after.setdefault(site.index, []).extend(
                    _parse_tagged(lines, "check"))

        if self.monitor_reads:
            # read checks go *before* the load: a load may overwrite its
            # own base register, and unlike stores there is no wild-jump
            # reason to place the check afterwards (§2.1)
            self._insert_read_checks(statements, before)

        if (self.plan.uses_shadow_stack or self.plan.eliminate) and \
                self.strategy.name.startswith("Cache"):
            raise InstrumentError(
                "optimization plans reserve %m1 for the %fp shadow "
                "stack and %m0 for scratch; use a non-Cache strategy")

        for pre in self.plan.preheaders:
            tag = "phead_%s" % pre.kind
            stmts = _parse_tagged(pre.lines, tag)
            before.setdefault(pre.anchor_index, []).extend(stmts)
        for index in self.plan.fp_push_indices:
            after.setdefault(index, []).extend(
                _parse_tagged(self._fp_push_lines(), "fpcheck"))
        for index in self.plan.fp_check_indices:
            before.setdefault(index, []).extend(
                _parse_tagged(self._fp_check_lines(index), "fpcheck"))
        for index in self.plan.jmp_check_indices:
            before.setdefault(index, []).extend(
                _parse_tagged(self._jmp_check_lines(index), "jmpcheck"))

        output: List[Statement] = []
        for index, stmt in enumerate(statements):
            if index in before:
                output.extend(before[index])
            output.append(stmt)
            if index in after:
                output.extend(after[index])

        output.extend(parse(self.strategy.library()))
        if patch_sections:
            output.extend(parse("\t.text\n"))
            output.extend(patch_sections)
        return InstrumentResult(output, sites, self.strategy, self.plan)

    # -- pieces ------------------------------------------------------------

    def _patch_block(self, site: WriteSite, ret_label: str
                     ) -> List[Statement]:
        """Kessler-style write-check patch for an eliminated site (§4).

        The patch executes the displaced store, runs a standard check,
        and branches back to the instruction after the site.  Activation
        replaces the site's store with ``ba,a`` to this block.
        """
        stmts: List[Statement] = [Label(".Lmrs_patch_%d" % site.site)]
        displaced = AsmInsn(site.stmt.mnemonic, site.stmt.ops,
                            line_no=site.stmt.line_no, tag="orig",
                            site=site.site)
        stmts.append(displaced)
        skip = ".Lmrs_pskip_%d" % site.site
        lines = [
            "tst %g2",
            "bne %s" % skip,
            "nop",
            address_computation(site.stmt.ops[1]),
            "call __mrs_check_w%d" % site.width,
            "nop",
            "%s:" % skip,
            "ba %s" % ret_label,
            "nop",
        ]
        stmts.extend(_parse_tagged(lines, "patch"))
        return stmts

    def _insert_read_checks(self, statements: List[Statement],
                            before: Dict[int, List[Statement]]) -> None:
        """Optional §5 extension: monitor read instructions too."""
        read_site = 1 << 20  # read pseudo-sites, distinct label space
        prev: Optional[AsmInsn] = None
        for index, stmt in enumerate(statements):
            if isinstance(stmt, AsmInsn) and stmt.is_load() and \
                    stmt.tag == "orig":
                if prev is not None and prev.is_dcti():
                    raise InstrumentError(
                        "load in a delay slot cannot be read-checked "
                        "(line %d)" % stmt.line_no)
                width = 4 if stmt.mnemonic in ("ld", "ldd") else 1
                pseudo = WriteSite(read_site, index, stmt, width, "", 2)
                lines = self.strategy.site_check(pseudo, is_read=True)
                before.setdefault(index, []).extend(
                    _parse_tagged(lines, "check"))
                read_site += 1
            if isinstance(stmt, AsmInsn):
                prev = stmt
            elif isinstance(stmt, Label):
                prev = None

    @staticmethod
    def _fp_push_lines() -> List[str]:
        """Push the just-established %fp onto the MRS shadow stack.

        §4.2: verifying %fp definitions "requires a pair of memory
        accesses to save and retrieve the correct %fp value"; ``%m1``
        is the dedicated shadow-stack pointer (the 4th reserved
        register of the symbol-optimized implementation).
        """
        return [
            "st %fp, [%m1]",
            "add %m1, 4, %m1",
        ]

    @staticmethod
    def _fp_check_lines(index: int) -> List[str]:
        """Pop the shadow stack and verify %fp before returning (§4.2)."""
        ok = ".Lmrs_fpok_%d" % index
        return [
            "sub %m1, 4, %m1",
            "ld [%m1], %g6",
            "cmp %g6, %fp",
            "be %s" % ok,
            "nop",
            "ta 0x43",
            "%s:" % ok,
        ]

    @staticmethod
    def _jmp_check_lines(index: int) -> List[str]:
        """Verify an indirect jump target lies in text (§4.2: "check all
        indirect jumps ... to ensure that they transfer control to
        legitimate targets")."""
        ok = ".Lmrs_jok_%d" % index
        return [
            "set 0x1000000, %g6",   # generous text ceiling
            "cmp %i7, %g6",
            "blu %s" % ok,
            "nop",
            "ta 0x43",
            "%s:" % ok,
        ]


def instrument_source(asm_source: str, strategy="Bitmap",
                      layout: Optional[MonitorLayout] = None,
                      plan: Optional[OptimizationPlan] = None,
                      monitor_reads: bool = False) -> InstrumentResult:
    """Parse, instrument, and return the result (not yet assembled).

    *strategy* may be a registered name or a CheckStrategy instance
    (the hash-table baseline passes an instance).
    """
    statements = parse(asm_source)
    lang = _find_lang(statements)
    if isinstance(strategy, CheckStrategy):
        strategy_obj = strategy
    else:
        strategy_obj = make_strategy(strategy, layout, monitor_reads)
    rewriter = Rewriter(strategy_obj, plan, monitor_reads)
    return rewriter.rewrite(statements, lang)


def _find_lang(statements: List[Statement]) -> str:
    for stmt in statements:
        if getattr(stmt, "name", "") == "lang" and stmt.args:
            arg = stmt.args[0]
            return getattr(arg, "name", None) or str(arg)
    return "C"
