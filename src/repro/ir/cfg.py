"""Dominators and dominance frontiers (Cooper-Harvey-Kennedy).

Used for SSA construction (§4.1 cites Cytron et al.) and natural-loop
detection (§4.3)."""

from __future__ import annotations

from typing import Dict, List

from repro.ir.build import Block, FuncIr


def reverse_postorder(func: FuncIr) -> List[Block]:
    """Reachable blocks of *func* in reverse postorder."""
    visited = set()
    postorder: List[Block] = []

    def visit(block: Block) -> None:
        stack = [(block, 0)]
        visited.add(block.bid)
        while stack:
            current, index = stack.pop()
            if index < len(current.succs):
                stack.append((current, index + 1))
                succ = current.succs[index]
                if succ.bid not in visited:
                    visited.add(succ.bid)
                    stack.append((succ, 0))
            else:
                postorder.append(current)

    if func.entry is not None:
        visit(func.entry)
    order = list(reversed(postorder))
    for number, block in enumerate(order):
        block.rpo = number
    return order


def compute_dominators(func: FuncIr) -> List[Block]:
    """Fill ``idom``/``dom_children``/``df``; returns reachable RPO."""
    order = reverse_postorder(func)
    if not order:
        return order
    entry = order[0]
    entry.idom = entry
    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            candidates = [p for p in block.preds if p.idom is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = _intersect(pred, new_idom)
            if block.idom is not new_idom:
                block.idom = new_idom
                changed = True
    entry.idom = None
    for block in order:
        block.dom_children = []
        block.df = []
    for block in order:
        if block.idom is not None:
            block.idom.dom_children.append(block)
    # dominance frontiers
    for block in order:
        if len(block.preds) >= 2:
            for pred in block.preds:
                if pred.rpo < 0:
                    continue
                runner = pred
                while runner is not block.idom and runner is not None:
                    runner.df.append(block)
                    runner = runner.idom
    return order


def _intersect(a: Block, b: Block) -> Block:
    while a is not b:
        while a.rpo > b.rpo:
            a = a.idom
        while b.rpo > a.rpo:
            b = b.idom
    return a


def dominates(a: Block, b: Block) -> bool:
    """Does *a* dominate *b*?  (entry has idom None)"""
    runner = b
    while runner is not None:
        if runner is a:
            return True
        runner = runner.idom
    return False


def dominator_depths(order: List[Block]) -> Dict[int, int]:
    depths: Dict[int, int] = {}
    for block in order:
        if block.idom is None:
            depths[block.bid] = 0
        else:
            depths[block.bid] = depths[block.idom.bid] + 1
    return depths
