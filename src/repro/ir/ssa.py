"""SSA construction (§4.1: "converts it to static single assignment
form [Cytron et al.]").

Phi nodes are placed with iterated dominance frontiers, then variables
are renamed along the dominator tree.  Assert ops (§4.3.1) must already
be in place — they are ordinary defs of their operands, which is
exactly how the paper's ASSERT re-definitions refine bound information.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.build import Block, FuncIr
from repro.ir.cfg import compute_dominators
from repro.ir.tac import IrOp, SsaVar


class SsaInfo:
    """Results of SSA conversion for one function."""

    def __init__(self, func: FuncIr, order: List[Block]):
        self.func = func
        self.order = order
        #: SSA variable live at the *end* of each block, per base name
        self.exit_version: Dict[Tuple[int, Tuple], SsaVar] = {}
        self.all_vars: List[SsaVar] = []


def convert_to_ssa(func: FuncIr) -> SsaInfo:
    order = compute_dominators(func)
    info = SsaInfo(func, order)
    if not order:
        return info

    # 1. collect def sites per variable name
    def_blocks: Dict[Tuple, Set[int]] = {}
    block_by_id = {b.bid: b for b in order}
    for block in order:
        for op in block.ops:
            for dest in op.defs:
                if isinstance(dest, tuple):
                    def_blocks.setdefault(dest, set()).add(block.bid)

    # 2. phi placement via iterated dominance frontiers
    for name, blocks in def_blocks.items():
        if len(blocks) < 2:
            continue
        placed: Set[int] = set()
        work = list(blocks)
        while work:
            bid = work.pop()
            for frontier in block_by_id[bid].df:
                if frontier.bid in placed:
                    continue
                placed.add(frontier.bid)
                phi = IrOp("phi", [name],
                           [name] * len(frontier.preds),
                           frontier.header_stmt_index)
                phi.block = frontier
                frontier.phis.append(phi)
                if frontier.bid not in blocks:
                    work.append(frontier.bid)

    # 3. renaming
    counters: Dict[Tuple, int] = {}
    stacks: Dict[Tuple, List[SsaVar]] = {}

    def fresh(name: Tuple, def_op: IrOp) -> SsaVar:
        version = counters.get(name, 0)
        counters[name] = version + 1
        var = SsaVar(name, version)
        var.def_op = def_op
        stacks.setdefault(name, []).append(var)
        info.all_vars.append(var)
        return var

    def current(name: Tuple) -> SsaVar:
        stack = stacks.get(name)
        if stack:
            return stack[-1]
        # undefined on this path: version-0 var with no def
        var = SsaVar(name, counters.get(name, 0))
        counters[name] = var.version + 1
        stacks.setdefault(name, []).append(var)
        info.all_vars.append(var)
        return var

    def rename_value(value):
        if isinstance(value, tuple):
            return current(value)
        return value

    def rename(block: Block) -> None:
        pushed: List[Tuple] = []
        for op in block.phis:
            name = op.defs[0]
            op.defs = [fresh(name, op)]
            pushed.append(name)
        for op in block.ops:
            op.uses = [rename_value(use) for use in op.uses]
            if op.mem is not None:
                op.mem = tuple(rename_value(part) for part in op.mem)
            new_defs = []
            for dest in op.defs:
                if isinstance(dest, tuple):
                    new_defs.append(fresh(dest, op))
                    pushed.append(dest)
                else:
                    new_defs.append(dest)
            op.defs = new_defs
        # versions live at the end of this block (used when generating
        # pre-header code on the entry edge into a loop header)
        for name, stack in stacks.items():
            if stack:
                info.exit_version[(block.bid, name)] = stack[-1]
        for succ in block.succs:
            which = succ.preds.index(block)
            for phi in succ.phis:
                name = phi.uses[which]
                if isinstance(name, tuple):
                    phi.uses[which] = current(name)
        for child in block.dom_children:
            rename(child)
        for name in reversed(pushed):
            stacks[name].pop()

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        rename(order[0])
    finally:
        sys.setrecursionlimit(old_limit)
    return info


def defining_block(var: SsaVar) -> Block:
    """Block containing *var*'s definition (entry block for undefined)."""
    if var.def_op is not None and var.def_op.block is not None:
        return var.def_op.block
    return None
