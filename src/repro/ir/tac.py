"""Three-address intermediate representation (§4.1).

The analysis tool "converts this sequence into an intermediate
representation (IR) which is defined as a set of 3-address codes".  Our
IR is analysis-only: it never regenerates program code (the rewriter
only adds or removes *checks*), so each op remembers the statement it
came from.

Variables are named by tuples before SSA renaming:

* ``("r", rid)``   — an architectural register;
* ``("v", key)``   — a pseudo-operand introduced by symbol-table pattern
  matching (§4.2): a memory-resident variable promoted to an IR
  variable so induction analysis can see its def-use cycle;
* ``("cc",)``      — the integer condition codes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

VarName = Tuple


class Const:
    """Integer constant operand."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __repr__(self) -> str:
        return "#%d" % self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


class SymAddr:
    """Address constant: a data symbol plus addend (from sethi/or)."""

    __slots__ = ("name", "addend")

    def __init__(self, name: str, addend: int = 0):
        self.name = name
        self.addend = addend

    def __repr__(self) -> str:
        return "&%s%+d" % (self.name, self.addend) if self.addend \
            else "&%s" % self.name

    def __eq__(self, other) -> bool:
        return (isinstance(other, SymAddr) and self.name == other.name
                and self.addend == other.addend)

    def __hash__(self) -> int:
        return hash(("symaddr", self.name, self.addend))


class SsaVar:
    """One SSA name: base variable + version, with a link to its def."""

    __slots__ = ("name", "version", "def_op")

    def __init__(self, name: VarName, version: int):
        self.name = name
        self.version = version
        self.def_op: Optional["IrOp"] = None

    def __repr__(self) -> str:
        base = ".".join(str(part) for part in self.name)
        return "%s_%d" % (base, self.version)


Value = Union[Const, SymAddr, SsaVar, VarName]


class IrOp:
    """One IR operation.

    ``kind`` is one of: ``alu`` (with ``op``), ``move``, ``sethi``,
    ``ld``, ``st``, ``call``, ``trap``, ``branch`` (conditional),
    ``jump``, ``ret``, ``save``, ``restore``, ``phi``, ``assert``,
    ``entry``.
    """

    __slots__ = ("kind", "op", "defs", "uses", "stmt_index", "site",
                 "block", "relation", "mem", "width")

    def __init__(self, kind: str, defs: List, uses: List,
                 stmt_index: int = -1, op: str = "",
                 site: Optional[int] = None, relation: str = "",
                 mem=None, width: int = 4):
        self.kind = kind
        self.op = op
        self.defs = defs
        self.uses = uses
        self.stmt_index = stmt_index
        self.site = site
        self.block = None
        #: for assert ops: the relation that holds ("lt", "le", ...)
        self.relation = relation
        #: for ld/st ops: the (base, index, disp) memory operand values
        self.mem = mem
        self.width = width

    def __repr__(self) -> str:
        head = self.op or self.kind
        defs = ",".join(map(repr, self.defs))
        uses = ",".join(map(repr, self.uses))
        return "<%s %s := %s>" % (head, defs or "-", uses)


def walk_to_def(value: Value, *, through_asserts: bool = True,
                through_moves: bool = True) -> Value:
    """Follow move (and optionally assert) chains to an underlying value.

    Asserts preserve the value of their operand; moves copy it.  This is
    the "seeing through" used by monotonic-variable detection.
    """
    seen = set()
    while isinstance(value, SsaVar) and value.def_op is not None:
        if id(value) in seen:
            break
        seen.add(id(value))
        op = value.def_op
        if through_moves and op.kind == "move":
            value = op.uses[0]
            continue
        if through_asserts and op.kind == "assert":
            # an assert redefines both operands; find which one we are
            position = op.defs.index(value)
            value = op.uses[position]
            continue
        break
    return value
