"""Analysis IR: 3-address codes, CFG, dominators, SSA, loops (§4.1)."""
