"""Assembly statements -> per-function IR with basic blocks (§4.1).

Also performs the recognition half of symbol-table pattern matching
(§4.2) while translating: every load/store is matched against the
static symbol table, address-escape information is collected, and —
after all functions are scanned — exactly-matched scalar accesses are
rewritten into IR ``move`` ops on *pseudo-operands*, which is what lets
SSA see memory-resident induction variables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.asm.ast import (AsmInsn, Directive, Imm, Label, Mem, Reg,
                           Statement, Sym)
from repro.instrument.writes import InstrumentError
from repro.ir.tac import Const, IrOp, SymAddr, VarName
from repro.isa.registers import FP, REGISTER_IDS, SP
from repro.optimizer.symbols import StaticSym, StaticSymbols

CC: VarName = ("cc",)
_G0 = 0
_O_REGS = [("r", REGISTER_IDS["%%o%d" % i]) for i in range(8)]
_G1 = ("r", REGISTER_IDS["%g1"])

_RELATIONS = {"e": "eq", "ne": "ne", "l": "lt", "le": "le", "g": "gt",
              "ge": "ge"}
_NEGATED = {"eq": "ne", "ne": "eq", "lt": "ge", "le": "gt", "gt": "le",
            "ge": "lt"}


class Block:
    __slots__ = ("bid", "labels", "ops", "phis", "succs", "preds",
                 "header_stmt_index", "idom", "dom_children", "df", "rpo")

    def __init__(self, bid: int):
        self.bid = bid
        self.labels: List[str] = []
        self.ops: List[IrOp] = []
        self.phis: List[IrOp] = []
        self.succs: List["Block"] = []
        self.preds: List["Block"] = []
        #: statement index where pre-header code may be inserted (the
        #: first label of the block), or -1
        self.header_stmt_index = -1
        self.idom: Optional["Block"] = None
        self.dom_children: List["Block"] = []
        self.df: List["Block"] = []
        self.rpo = -1

    def all_ops(self) -> List[IrOp]:
        return self.phis + self.ops

    def __repr__(self) -> str:
        return "B%d%s" % (self.bid, self.labels[:1] or "")


class MemAccess:
    """Match record for one load/store op."""

    __slots__ = ("op", "stmt", "kind", "func", "covering", "exact",
                 "pseudo_key")

    def __init__(self, op: IrOp, stmt: AsmInsn, kind: str, func: str):
        self.op = op
        self.stmt = stmt
        self.kind = kind          # "ld" | "st"
        self.func = func
        self.covering: List[StaticSym] = []
        self.exact: Optional[StaticSym] = None
        self.pseudo_key: Optional[Tuple] = None


class FuncIr:
    def __init__(self, name: str, start_index: int, end_index: int):
        self.name = name
        self.start_index = start_index
        self.end_index = end_index
        self.blocks: List[Block] = []
        self.entry: Optional[Block] = None
        self.accesses: List[MemAccess] = []
        #: offsets of locals whose address escapes in this function
        self.escaped_local_offsets: Set[Tuple[int, int]] = set()
        #: all frame-relative access failed to resolve (e.g. [%fp+%reg])
        self.frame_unanalyzable = False
        #: statement index of the prologue save (for %fp shadow pushes)
        self.save_stmt_index = -1
        #: statement indices of returns (jmpl), for %fp/jump checks
        self.ret_stmt_indices: List[int] = []

    def reachable_blocks(self) -> List[Block]:
        return [b for b in self.blocks if b is self.entry or b.preds]


class IrBuilder:
    """See :func:`build_ir`."""

    def __init__(self, statements: List[Statement],
                 symbols: StaticSymbols):
        self.statements = statements
        self.symbols = symbols
        #: data labels whose address value escapes into arithmetic/calls
        self.escaped_labels: Set[str] = set()
        self.funcs: List[FuncIr] = []

    # -- program level -----------------------------------------------------------

    def build(self) -> List["FuncIr"]:
        for name, start, end in self._function_ranges():
            self.funcs.append(self._build_function(name, start, end))
        return self.funcs

    def _function_ranges(self) -> List[Tuple[str, int, int]]:
        ranges = []
        current: Optional[Tuple[str, int]] = None
        for index, stmt in enumerate(self.statements):
            if isinstance(stmt, Directive):
                if stmt.name == "proc":
                    arg = stmt.args[0]
                    name = arg.name if isinstance(arg, Sym) else str(arg)
                    current = (name, index)
                elif stmt.name == "endproc" and current is not None:
                    ranges.append((current[0], current[1], index))
                    current = None
        return ranges

    # -- function level -------------------------------------------------------------

    def _build_function(self, name: str, start: int, end: int) -> FuncIr:
        func = FuncIr(name, start, end)
        stmts = self.statements
        # collect instruction indices and label positions
        instrs: List[int] = []
        label_at: Dict[str, int] = {}  # label -> position in instrs
        pending_labels: List[Tuple[str, int]] = []
        for index in range(start, end):
            stmt = stmts[index]
            if isinstance(stmt, Label):
                pending_labels.append((stmt.name, index))
            elif isinstance(stmt, AsmInsn) and stmt.tag == "orig":
                for lname, _lidx in pending_labels:
                    label_at[lname] = len(instrs)
                instrs.append(index)
                pending_labels = pending_labels and []
        if not instrs:
            return func

        # leaders
        leaders: Set[int] = {0}
        for pos in label_at.values():
            leaders.add(pos)
        pos = 0
        while pos < len(instrs):
            stmt = stmts[instrs[pos]]
            if isinstance(stmt, AsmInsn) and stmt.is_dcti():
                if pos + 1 >= len(instrs):
                    raise InstrumentError(
                        "dcti without delay slot in %s" % name)
                slot = stmts[instrs[pos + 1]]
                if isinstance(slot, AsmInsn) and slot.is_dcti():
                    raise InstrumentError(
                        "dcti couple at line %d unsupported" % slot.line_no)
                if pos + 2 < len(instrs):
                    leaders.add(pos + 2)
                pos += 2
            else:
                pos += 1

        # build blocks
        blocks: Dict[int, Block] = {}
        order = sorted(leaders)
        for bid, leader in enumerate(order):
            block = Block(bid)
            blocks[leader] = block
            func.blocks.append(block)
        # attach label names + header statement index
        for lname, pos2 in label_at.items():
            block = blocks.get(pos2)
            if block is not None:
                block.labels.append(lname)
        for leader, block in blocks.items():
            # header stmt index: position of the first label before the
            # leading instruction, else the instruction itself
            stmt_index = instrs[leader]
            scan = stmt_index - 1
            first = stmt_index
            while scan >= start and isinstance(stmts[scan], Label):
                first = scan
                scan -= 1
            block.header_stmt_index = first

        func.entry = blocks[0]

        # translate and wire edges
        boundaries = order + [len(instrs)]
        for which, leader in enumerate(order):
            block = blocks[leader]
            limit = boundaries[which + 1]
            self._translate_block(func, block, instrs, leader, limit,
                                  label_at, blocks, boundaries, which)

        for block in func.blocks:
            for succ in block.succs:
                succ.preds.append(block)
        return func

    # -- block translation ---------------------------------------------------------

    def _translate_block(self, func: FuncIr, block: Block,
                         instrs: List[int], leader: int, limit: int,
                         label_at: Dict[str, int],
                         blocks: Dict[int, Block],
                         boundaries: List[int], which: int) -> None:
        stmts = self.statements
        #: registers currently holding a data-symbol address
        sym_in_reg: Dict[int, SymAddr] = {}
        pos = leader
        terminated = False
        while pos < limit:
            stmt = stmts[instrs[pos]]
            assert isinstance(stmt, AsmInsn)
            if stmt.is_dcti():
                # translate the delay slot first (it executes first)
                if pos + 1 < limit:
                    slot = stmts[instrs[pos + 1]]
                    self._translate_insn(func, block, slot,
                                         instrs[pos + 1], sym_in_reg)
                self._translate_control(func, block, stmt, instrs[pos],
                                        label_at, blocks, boundaries,
                                        which, sym_in_reg)
                terminated = True
                pos += 2
            else:
                self._translate_insn(func, block, stmt, instrs[pos],
                                     sym_in_reg)
                pos += 1
        if not terminated and which + 1 < len(boundaries) - 1:
            nxt = blocks[boundaries[which + 1]]
            block.succs.append(nxt)

    def _value(self, operand, sym_in_reg: Dict[int, SymAddr]):
        if isinstance(operand, Reg):
            if operand.rid == _G0:
                return Const(0)
            return ("r", operand.rid)
        if isinstance(operand, Imm):
            return Const(operand.value)
        if isinstance(operand, Sym):
            # %lo(sym) in an or — combined with sethi below
            return operand
        raise InstrumentError("bad IR operand %r" % (operand,))


    def _escape_if_boundary(self, rid: int, sym: Optional[SymAddr]) -> None:
        """A symbol address reaching an argument/return register (or any
        out/in register) escapes the analysis: the callee or caller may
        alias the variable through it."""
        if sym is None or sym.name.startswith("\x00"):
            return
        if 8 <= rid < 16 or 24 <= rid < 32:
            self.escaped_labels.add(sym.name)

    def _translate_insn(self, func: FuncIr, block: Block, stmt: AsmInsn,
                        stmt_index: int,
                        sym_in_reg: Dict[int, SymAddr]) -> None:
        m = stmt.mnemonic
        ops = stmt.ops

        def emit(op: IrOp) -> IrOp:
            op.block = block
            block.ops.append(op)
            return op

        def define(rid: int, value_sym: Optional[SymAddr]) -> None:
            if value_sym is not None:
                sym_in_reg[rid] = value_sym
            else:
                sym_in_reg.pop(rid, None)

        if m == "nop":
            return
        if m == "sethi":
            value, rd = ops
            if isinstance(value, Sym):
                # start of a `set label, rd` pair
                emit(IrOp("move", [("r", rd.rid)],
                          [SymAddr(value.name, value.addend)],
                          stmt_index, op="sethi_hi"))
                define(rd.rid, None)  # completed only by the or
                sym_in_reg[rd.rid] = SymAddr("\x00partial:" + value.name,
                                             value.addend)
            else:
                emit(IrOp("move", [("r", rd.rid)],
                          [Const((value.value << 10) & 0xFFFFFFFF)],
                          stmt_index))
                define(rd.rid, None)
            return
        if m in ("add", "addcc", "sub", "subcc", "and", "andcc", "andn",
                 "andncc", "or", "orcc", "xor", "xorcc", "sll", "srl",
                 "sra", "smul", "sdiv"):
            set_cc = m.endswith("cc") and m not in ()
            base_op = m[:-2] if set_cc else m
            rs1, op2, rd = ops
            rd_rid = rd.rid

            # recognize `or rX, %lo(sym), rX` completing a set
            if base_op == "or" and isinstance(op2, Sym) and \
                    op2.part == "lo":
                held = sym_in_reg.get(rs1.rid)
                full = SymAddr(op2.name, op2.addend)
                if held is not None and \
                        held.name == "\x00partial:" + op2.name:
                    op = emit(IrOp("move", [("r", rd_rid)], [full],
                                   stmt_index, op="set"))
                    define(rd_rid, full)
                    self._escape_if_boundary(rd_rid, full)
                    if set_cc:
                        op.defs.append(CC)
                    return
                op2_val = full  # unusual; treat as opaque symbol value
            else:
                op2_val = self._value(op2, sym_in_reg)

            rs1_val = self._value(rs1, sym_in_reg)
            # mov: or %g0, x, rd
            if base_op == "or" and rs1.rid == _G0 and not set_cc:
                emit(IrOp("move", [("r", rd_rid)], [op2_val], stmt_index))
                src_sym = sym_in_reg.get(op2.rid) \
                    if isinstance(op2, Reg) else (
                        op2_val if isinstance(op2_val, SymAddr) else None)
                define(rd_rid, src_sym)
                self._escape_if_boundary(rd_rid, src_sym)
                return
            defs = [] if rd_rid == _G0 else [("r", rd_rid)]
            if set_cc:
                defs = defs + [CC]
            op = emit(IrOp("alu", defs, [rs1_val, op2_val], stmt_index,
                           op=base_op))
            if set_cc:
                op.relation = "cmp" if rd_rid == _G0 and base_op == "sub" \
                    else ""
            # escape analysis: symbol address flowing into arithmetic
            for source in (rs1, op2):
                if isinstance(source, Reg) and source.rid in sym_in_reg:
                    held = sym_in_reg[source.rid]
                    if not held.name.startswith("\x00"):
                        self.escaped_labels.add(held.name)
            # address-of a local: add %fp, imm, rd
            if base_op == "add" and rs1.rid == FP and \
                    isinstance(op2, Imm) and rd_rid != _G0:
                for entry in self.symbols.locals.get(func.name, ()):
                    if entry.offset <= op2.value < \
                            entry.offset + entry.size:
                        func.escaped_local_offsets.add(
                            (entry.offset, entry.size))
            if rd_rid != _G0:
                # address arithmetic on a symbol base keeps it opaque
                define(rd_rid, None)
            return
        if m in ("ld", "ldub", "ldsb", "ldd"):
            mem, rd = ops
            self._translate_mem(func, block, stmt, stmt_index, "ld", mem,
                                ("r", rd.rid), sym_in_reg)
            define(rd.rid, None)
            return
        if m in ("st", "stb", "std"):
            rd, mem = ops
            self._translate_mem(func, block, stmt, stmt_index, "st", mem,
                                ("r", rd.rid), sym_in_reg)
            return
        if m == "save":
            func.save_stmt_index = stmt_index \
                if func.save_stmt_index < 0 else func.save_stmt_index
            emit(IrOp("save", [("r", SP), ("r", FP)],
                      [("r", SP)], stmt_index))
            sym_in_reg.clear()
            return
        if m == "restore":
            emit(IrOp("restore", [("r", SP), ("r", FP)], [], stmt_index))
            sym_in_reg.clear()
            return
        if m == "ta":
            emit(IrOp("trap", [_O_REGS[0]], [_O_REGS[0]], stmt_index))
            sym_in_reg.pop(_O_REGS[0][1], None)
            return
        raise InstrumentError("cannot translate %r to IR" % (stmt,))

    def _translate_mem(self, func: FuncIr, block: Block, stmt: AsmInsn,
                       stmt_index: int, kind: str, mem: Mem,
                       data_var: VarName,
                       sym_in_reg: Dict[int, SymAddr]) -> None:
        access = MemAccess(None, stmt, kind, func.name)
        width = 8 if stmt.mnemonic in ("ldd", "std") else \
            (1 if stmt.mnemonic in ("ldub", "ldsb", "stb") else 4)

        base_sym = sym_in_reg.get(mem.base)
        if base_sym is not None and base_sym.name.startswith("\x00"):
            base_sym = None
        if mem.base == FP and mem.index is None:
            access.covering = self.symbols.locals_covering(
                func.name, mem.disp, width)
            exact = self.symbols.exact_local_scalar(func.name, mem.disp)
            if exact is not None and width == 4:
                access.exact = exact
                access.pseudo_key = ("v", func.name, mem.disp)
        elif mem.base in (FP, SP) and mem.index is not None:
            func.frame_unanalyzable = True
        elif base_sym is not None and mem.index is None:
            offset = base_sym.addend + mem.disp
            access.covering = self.symbols.globals_covering(
                base_sym.name, offset, width)
            exact = self.symbols.exact_global_scalar(base_sym.name, offset)
            if exact is not None and width == 4:
                access.exact = exact
                access.pseudo_key = ("v", base_sym.name, offset)

        base_val = self._value(Reg(mem.base), sym_in_reg)
        if isinstance(base_val, tuple) and base_sym is not None:
            base_val_for_mem = base_sym
        else:
            base_val_for_mem = base_val
        index_val = self._value(Reg(mem.index), sym_in_reg) \
            if mem.index is not None else None

        uses = [base_val]
        if index_val is not None:
            uses.append(index_val)
        if kind == "st":
            # storing a register that holds a symbol's address publishes
            # a pointer to that symbol: it escapes
            stored_sym = sym_in_reg.get(data_var[1]) \
                if isinstance(data_var, tuple) else None
            if stored_sym is not None and \
                    not stored_sym.name.startswith("\x00"):
                self.escaped_labels.add(stored_sym.name)
        if kind == "st":
            uses.append(data_var)
            op = IrOp("st", [], uses, stmt_index, site=stmt.site,
                      mem=(base_val_for_mem, index_val, mem.disp),
                      width=width)
        else:
            op = IrOp("ld", [data_var], uses, stmt_index,
                      mem=(base_val_for_mem, index_val, mem.disp),
                      width=width)
        op.block = block
        block.ops.append(op)
        access.op = op
        func.accesses.append(access)

    def _translate_control(self, func: FuncIr, block: Block,
                           stmt: AsmInsn, stmt_index: int,
                           label_at: Dict[str, int],
                           blocks: Dict[int, Block],
                           boundaries: List[int], which: int,
                           sym_in_reg: Dict[int, SymAddr]) -> None:
        m = stmt.mnemonic

        def emit(op: IrOp) -> IrOp:
            op.block = block
            block.ops.append(op)
            return op

        def fallthrough() -> Optional[Block]:
            if which + 1 < len(boundaries) - 1:
                return blocks[boundaries[which + 1]]
            return None

        if m == "call":
            defs = list(_O_REGS) + [_G1, CC]
            defs += [key for key in self._promoted_global_keys]
            emit(IrOp("call", defs, list(_O_REGS[:6]), stmt_index))
            sym_in_reg.clear()
            nxt = fallthrough()
            if nxt is not None:
                block.succs.append(nxt)
            return
        if m == "jmpl":
            func.ret_stmt_indices.append(stmt_index)
            emit(IrOp("ret", [], [], stmt_index))
            return
        if m in ("ba",):
            target = stmt.ops[0]
            tpos = label_at.get(target.name)
            emit(IrOp("jump", [], [], stmt_index))
            if tpos is not None:
                block.succs.append(blocks[tpos])
            return
        if stmt.is_branch():
            target = stmt.ops[0]
            tpos = label_at.get(target.name)
            relation = _RELATIONS.get(m[1:], "")
            emit(IrOp("branch", [], [CC], stmt_index,
                      relation=relation))
            # successor order: [taken, fallthrough]
            if tpos is not None:
                block.succs.append(blocks[tpos])
            nxt = fallthrough()
            if nxt is not None:
                block.succs.append(nxt)
            return
        raise InstrumentError("unknown control transfer %r" % (stmt,))

    # filled in by apply_promotion before calls are translated on the
    # second pass; empty during the first pass
    _promoted_global_keys: List[Tuple] = []


def negate_relation(relation: str) -> str:
    return _NEGATED[relation]


def build_ir(statements: List[Statement],
             symbols: StaticSymbols) -> Tuple[List[FuncIr], Set[str]]:
    """Build IR for every function; returns (functions, escaped labels)."""
    builder = IrBuilder(statements, symbols)
    funcs = builder.build()
    return funcs, builder.escaped_labels


def apply_promotion(funcs: List[FuncIr], escaped_labels: Set[str]
                    ) -> Dict[Tuple, StaticSym]:
    """Rewrite exactly-matched scalar accesses into pseudo-variable moves.

    Returns the map of promoted pseudo keys.  Calls are treated as
    defining every promoted *global* (the callee may write it); locals
    are only promoted when their address never escapes, so calls cannot
    touch them.
    """
    promoted: Dict[Tuple, StaticSym] = {}
    for func in funcs:
        if func.frame_unanalyzable:
            escaped = None  # poison: no local promotion at all
        else:
            escaped = func.escaped_local_offsets
        for access in func.accesses:
            if access.exact is None or access.pseudo_key is None:
                continue
            entry = access.exact
            if entry.kind in ("local", "param"):
                if escaped is None:
                    continue
                if any(lo <= entry.offset < lo + size
                       for lo, size in escaped):
                    continue
            else:  # global scalar
                if entry.label in escaped_labels:
                    continue
            promoted[access.pseudo_key] = entry
    global_keys = [key for key, entry in promoted.items()
                   if entry.kind == "global"]

    for func in funcs:
        escaped = None if func.frame_unanalyzable else \
            func.escaped_local_offsets
        for access in func.accesses:
            key = access.pseudo_key
            if key is None or key not in promoted:
                continue
            op = access.op
            if access.kind == "ld":
                op.kind = "move"
                op.defs = list(op.defs)
                op.uses = [key]
            else:
                data = op.uses[-1]
                op.kind = "move"
                op.defs = [key]
                op.uses = [data]
        for block in func.blocks:
            for op in block.ops:
                if op.kind == "call":
                    op.defs = op.defs + global_keys
    return promoted
