"""Natural-loop detection and nesting (§4.3).

Loop nests are processed inner to outer "so that checks moved out of
inner loops can become candidates for further optimization".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.asm.ast import Label, Statement
from repro.ir.build import Block, FuncIr
from repro.ir.cfg import dominates


class Loop:
    __slots__ = ("header", "body", "back_edges", "parent", "children",
                 "loop_id")

    def __init__(self, header: Block):
        self.header = header
        self.body: Set[int] = {header.bid}
        self.back_edges: List[Block] = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        self.loop_id = -1

    def contains_block(self, block: Block) -> bool:
        return block.bid in self.body

    def __repr__(self) -> str:
        return "<loop @B%d, %d blocks>" % (self.header.bid, len(self.body))


def find_loops(func: FuncIr, order: List[Block]) -> List[Loop]:
    """Natural loops of *func*, returned inner-to-outer.

    Requires dominators (``compute_dominators`` already run).
    """
    by_header: Dict[int, Loop] = {}
    block_set = {b.bid: b for b in order}
    for block in order:
        for succ in block.succs:
            if succ.bid in block_set and dominates(succ, block):
                loop = by_header.get(succ.bid)
                if loop is None:
                    loop = Loop(succ)
                    by_header[succ.bid] = loop
                loop.back_edges.append(block)
                _grow(loop, block, block_set)
    loops = sorted(by_header.values(), key=lambda lp: len(lp.body))
    # nesting: smallest enclosing loop is the parent
    for index, loop in enumerate(loops):
        for outer in loops[index + 1:]:
            if loop.header.bid in outer.body and outer is not loop:
                loop.parent = outer
                outer.children.append(loop)
                break
    for loop_id, loop in enumerate(loops):
        loop.loop_id = loop_id
    return loops


def _grow(loop: Loop, tail: Block, block_set: Dict[int, Block]) -> None:
    stack = [tail]
    while stack:
        block = stack.pop()
        if block.bid in loop.body or block.bid not in block_set:
            continue
        loop.body.add(block.bid)
        stack.extend(block.preds)


def preheader_anchor(func: FuncIr, loop: Loop,
                     statements: List[Statement]) -> Optional[int]:
    """Statement index where pre-header checks can be inserted.

    Code inserted *before* the header's label is executed exactly by
    the loop-entry edges (fall-through from outside), while back edges
    branch to the label and skip it.  This is only a valid pre-header
    when every edge into the header from outside the loop falls
    through, i.e. no branch outside the loop targets the header label.
    """
    header = loop.header
    for pred in header.preds:
        if pred.bid in loop.body:
            # back edge: must be an explicit jump (skips inserted code)
            if not _ends_in_jump_to(pred, header):
                return None
        else:
            # entry edge: must fall through (passes through inserted code)
            if _ends_in_jump_to(pred, header):
                return None
    anchor = header.header_stmt_index
    if anchor < 0 or not isinstance(statements[anchor], (Label,)):
        return None
    return anchor


def _ends_in_jump_to(pred: Block, header: Block) -> bool:
    """Does *pred* transfer to *header* via an explicit branch target?

    Successor order for conditional branches is [taken, fallthrough];
    for jumps it is [target].
    """
    if not pred.ops:
        return False
    last = pred.ops[-1]
    if last.kind == "jump":
        return pred.succs and pred.succs[0] is header
    if last.kind == "branch":
        return len(pred.succs) >= 1 and pred.succs[0] is header
    return False
