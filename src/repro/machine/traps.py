"""Software trap codes and default host-side handlers.

The debuggee communicates with its host through ``ta`` traps, standing in
for SunOS system calls.  The monitored region service additionally claims
two codes: ``TRAP_MONITOR_HIT`` (raised by write-check code on a monitor
hit, with the target address in ``%g4`` and the access size in ``%g6``)
and ``TRAP_FAULT`` (raised by control-flow verification code when an
indirect jump or a ``%fp`` definition fails validation, §4.2).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ReproError
from repro.isa.instructions import to_signed
from repro.machine.cpu import CPU

TRAP_EXIT = 0x00
TRAP_PRINT_INT = 0x01
TRAP_PRINT_CHAR = 0x02
TRAP_SBRK = 0x03
TRAP_MONITOR_HIT = 0x42
TRAP_FAULT = 0x43

#: register protocol for TRAP_MONITOR_HIT
HIT_ADDR_REG = 4  # %g4 — reserved target-address register
HIT_SIZE_REG = 6  # %g6 — access size in bytes


class DebuggeeFault(ReproError):
    """Raised when MRS verification code detects control-flow corruption."""


def install_default_handlers(cpu: CPU,
                             output: Optional[List[str]] = None
                             ) -> List[str]:
    """Install exit / print / sbrk handlers; returns the output list."""
    sink: List[str] = output if output is not None else []

    def handle_exit(c: CPU) -> None:
        c.stop(to_signed(c.regs.read(8)))  # %o0

    def handle_print_int(c: CPU) -> None:
        sink.append(str(to_signed(c.regs.read(8))))

    def handle_print_char(c: CPU) -> None:
        sink.append(chr(c.regs.read(8) & 0xFF))

    def handle_sbrk(c: CPU) -> None:
        size = c.regs.read(8)
        c.regs.write(8, c.mem.sbrk(size))

    def handle_fault(c: CPU) -> None:
        raise DebuggeeFault("MRS verification trap at pc 0x%x" % c.pc)

    cpu.trap_handlers[TRAP_EXIT] = handle_exit
    cpu.trap_handlers[TRAP_PRINT_INT] = handle_print_int
    cpu.trap_handlers[TRAP_PRINT_CHAR] = handle_print_char
    cpu.trap_handlers[TRAP_SBRK] = handle_sbrk
    cpu.trap_handlers[TRAP_FAULT] = handle_fault
    return sink
