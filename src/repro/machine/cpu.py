"""CPU for the SPARC-like target: delayed control transfer, register
windows, condition codes, software traps, and cycle accounting.

The CPU executes decoded :class:`~repro.isa.instructions.Instruction`
objects held in a :class:`CodeSpace`.  Instruction fetch and data access
both go through a direct-mapped combined cache, so instrumentation-induced
code growth shows up as cache misses — the effect §3.3.1 of the paper
measures with its nop-insertion experiment.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.isa.instructions import Instruction
from repro.isa.registers import RegisterFile
from repro.machine.cache import DirectMappedCache
from repro.machine.costs import CostModel, DEFAULT_COSTS
from repro.machine.memory import Memory

WORD_MASK = 0xFFFFFFFF

_INFINITY = float("inf")

#: block-cache probe miss sentinel (cache values may legitimately be None)
_NO_BLOCK = object()


class SimulationError(ReproError):
    """Raised on invalid execution (bad pc, unknown trap, ...)."""


class SimulationLimit(SimulationError):
    """A watchdog budget (instructions, cycles or traps) was exhausted.

    This is *resumable*, not fatal: the CPU state is left intact at the
    instruction boundary where the budget tripped, so calling
    :meth:`CPU.run` again (with a fresh or re-armed watchdog) continues
    the simulation.  When the watchdog snapshots, :attr:`checkpoint`
    carries a full :class:`~repro.machine.checkpoint.Checkpoint` of the
    debuggee taken at the limit, so a harness can also rewind or fork.
    :attr:`context` records the budget kind, pc, cycles and instruction
    count at the limit.
    """

    def __init__(self, *args, checkpoint=None, **context):
        super().__init__(*args, **context)
        self.checkpoint = checkpoint

    @property
    def budget(self) -> Optional[str]:
        """Which budget tripped: "instructions", "cycles" or "traps"."""
        return self.context.get("budget")


class Watchdog:
    """Cycle / instruction / trap budgets for one :meth:`CPU.run` call.

    Budgets are *relative* to the counters at :meth:`arm` time, so a
    watchdog composes with resumed runs: re-arming grants the same
    budget again from wherever the CPU stopped.  On exhaustion the
    watchdog raises :class:`SimulationLimit`; with ``snapshot=True``
    (the default) the exception carries a checkpoint of the debuggee —
    including the monitor state when *mrs*/*output* are supplied — so
    the caller can degrade gracefully instead of losing the run.
    """

    def __init__(self, max_instructions: Optional[int] = None,
                 max_cycles: Optional[int] = None,
                 max_traps: Optional[int] = None,
                 snapshot: bool = True, mrs=None, output=None):
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles
        self.max_traps = max_traps
        self.snapshot = snapshot
        self.mrs = mrs
        self.output = output
        self.insn_limit = _INFINITY
        self.cycle_limit = _INFINITY
        self.trap_limit = _INFINITY

    def arm(self, cpu: "CPU") -> None:
        """Fix absolute limits from the CPU's current counters."""
        self.insn_limit = (cpu.instructions + self.max_instructions
                           if self.max_instructions is not None
                           else _INFINITY)
        self.cycle_limit = (cpu.cycles + self.max_cycles
                            if self.max_cycles is not None else _INFINITY)
        self.trap_limit = (cpu.traps_taken + self.max_traps
                           if self.max_traps is not None else _INFINITY)

    def exhausted(self, cpu: "CPU") -> None:
        """Build and raise the :class:`SimulationLimit` for *cpu*."""
        if cpu.instructions >= self.insn_limit:
            kind, budget = "instructions", self.max_instructions
        elif cpu.cycles >= self.cycle_limit:
            kind, budget = "cycles", self.max_cycles
        else:
            kind, budget = "traps", self.max_traps
        checkpoint = None
        if self.snapshot:
            from repro.machine.checkpoint import Checkpoint
            checkpoint = Checkpoint(cpu, output=self.output, mrs=self.mrs)
        raise SimulationLimit(
            "watchdog: exceeded %s %s budget" % (budget, kind),
            checkpoint=checkpoint, budget=kind, pc=cpu.pc,
            cycles=cpu.cycles, instructions=cpu.instructions,
            traps=cpu.traps_taken)


class CodeSpace:
    """Instruction memory: a growable array of decoded instructions.

    Dynamic code patching (Kessler-style write-check patches, §4) replaces
    single entries with :meth:`patch` and appends patch bodies with
    :meth:`append_block`.

    :attr:`version` counts mutations; the basic-block fast path
    (:mod:`repro.machine.blocks`) caches compiled blocks against it and
    flushes whenever it changes.  Anything that mutates :attr:`insns`
    outside this class (e.g. checkpoint restore) must bump it.
    """

    __slots__ = ("base", "insns", "version")

    def __init__(self, base: int = 0x10000):
        self.base = base
        self.insns: List[Optional[Instruction]] = []
        self.version = 0

    @property
    def limit(self) -> int:
        return self.base + 4 * len(self.insns)

    def addr_of(self, index: int) -> int:
        return self.base + 4 * index

    def index_of(self, addr: int) -> int:
        if addr < self.base or addr >= self.limit or addr & 3:
            raise SimulationError("invalid code address 0x%x" % addr)
        return (addr - self.base) >> 2

    def fetch(self, addr: int) -> Instruction:
        insn = self.insns[self.index_of(addr)]
        if insn is None:
            raise SimulationError("fetch from a code hole at 0x%x" % addr)
        return insn

    def at(self, addr: int) -> Optional[Instruction]:
        return self.insns[self.index_of(addr)]

    def patch(self, addr: int, insn: Instruction) -> Instruction:
        """Replace the instruction at *addr*, returning the displaced one."""
        index = self.index_of(addr)
        old = self.insns[index]
        self.insns[index] = insn
        self.version += 1
        return old

    def append_block(self, insns: List[Instruction]) -> int:
        """Append *insns* to code memory, returning the block's address."""
        addr = self.limit
        self.insns.extend(insns)
        self.version += 1
        return addr


class CPU:
    """Executes one simulated program to completion."""

    def __init__(self, code: CodeSpace, memory: Memory = None,
                 cache: DirectMappedCache = None,
                 costs: CostModel = DEFAULT_COSTS,
                 fast_path: Optional[bool] = None):
        self.code = code
        self.mem = memory if memory is not None else Memory()
        self.cache = cache if cache is not None else DirectMappedCache()
        self.costs = costs
        self.regs = RegisterFile()
        self.pc = code.base
        self.npc = code.base + 4
        self.icc_n = self.icc_z = self.icc_v = self.icc_c = 0
        self.running = False
        self.exit_code: Optional[int] = None
        self.cycles = 0
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.traps_taken = 0
        #: cycles and instruction counts attributed per instruction tag.
        self.tag_cycles: Dict[str, int] = {}
        self.tag_counts: Dict[str, int] = {}
        self.trap_handlers: Dict[int, Callable[["CPU"], None]] = {}
        #: when set, ``(site, addr, width)`` per original-program store.
        self.record_writes = False
        self.write_trace: List[Tuple[Optional[int], int, int]] = []
        #: peak register-window depth (diagnostics).
        self.max_window_depth = 1
        self._window_depth = 1
        # pending control transfer set by branch instructions
        self._branch_target: Optional[int] = None
        self._annul_slot = False
        self._skip_slot = False
        #: run whole basic blocks through compiled handlers when no
        #: per-instruction instrumentation boundary is armed
        #: (repro.machine.blocks).  REPRO_FAST_PATH=0 disables globally.
        if fast_path is None:
            fast_path = os.environ.get(
                "REPRO_FAST_PATH", "1").lower() not in ("0", "false", "off")
        self.fast_path = bool(fast_path)
        self._blocks = None

    # -- condition codes -----------------------------------------------

    def set_icc(self, n: int, z: int, v: int, c: int) -> None:
        self.icc_n = n
        self.icc_z = z
        self.icc_v = v
        self.icc_c = c

    # -- cycle accounting -------------------------------------------------

    def charge(self, cycles: int) -> None:
        self.cycles += cycles

    # -- data access -------------------------------------------------------

    def load_word(self, addr: int) -> int:
        self.loads += 1
        self.cycles += self.costs.load_extra
        if not self.cache.access(addr):
            self.cycles += self.costs.dmiss_penalty
        return self.mem.read_word(addr)

    def load_byte(self, addr: int) -> int:
        self.loads += 1
        self.cycles += self.costs.load_extra
        if not self.cache.access(addr):
            self.cycles += self.costs.dmiss_penalty
        return self.mem.read_byte(addr)

    def _store_common(self, addr: int, width: int, insn: Instruction) -> None:
        self.stores += 1
        self.cycles += self.costs.store_extra
        if not self.cache.access(addr):
            self.cycles += self.costs.dmiss_penalty
        mem = self.mem
        if mem.fault_handler is not None and mem.is_protected(addr):
            mem.fault_handler(addr, width)
        if self.record_writes and insn.tag == "orig":
            self.write_trace.append((insn.site, addr, width))

    def store_word(self, addr: int, value: int, insn: Instruction) -> None:
        self._store_common(addr, 4, insn)
        self.mem.write_word(addr, value)

    def store_byte(self, addr: int, value: int, insn: Instruction) -> None:
        self._store_common(addr, 1, insn)
        self.mem.write_byte(addr, value)

    # -- control transfer ---------------------------------------------------

    def branch_taken(self, target: int, annul_slot: bool) -> None:
        self._branch_target = target
        self._annul_slot = annul_slot

    def branch_untaken_annul(self) -> None:
        self._skip_slot = True

    def notify_window(self, delta: int) -> None:
        self._window_depth += delta
        if self._window_depth > self.max_window_depth:
            self.max_window_depth = self._window_depth

    # -- traps -----------------------------------------------------------

    def trap(self, code: int) -> None:
        handler = self.trap_handlers.get(code)
        if handler is None:
            raise SimulationError("unhandled trap 0x%x at pc 0x%x"
                                  % (code, self.pc), trap=code, pc=self.pc)
        self.traps_taken += 1
        self.cycles += self.costs.trap_base
        handler(self)

    # -- main loop ---------------------------------------------------------

    def step(self) -> None:
        pc = self.pc
        insn = self.code.fetch(pc)
        before = self.cycles
        self.cycles += 1
        if not self.cache.access(pc):
            self.cycles += self.costs.imiss_penalty
        insn.execute(self)
        self.instructions += 1
        tag = insn.tag
        self.tag_cycles[tag] = self.tag_cycles.get(tag, 0) + \
            (self.cycles - before)
        self.tag_counts[tag] = self.tag_counts.get(tag, 0) + 1
        if self._branch_target is not None:
            if self._annul_slot:
                self.pc = self._branch_target
                self.npc = self._branch_target + 4
            else:
                self.pc = self.npc
                self.npc = self._branch_target
            self._branch_target = None
            self._annul_slot = False
        elif self._skip_slot:
            self.pc = self.npc + 4
            self.npc = self.npc + 8
            self._skip_slot = False
        else:
            self.pc = self.npc
            self.npc += 4

    def run(self, start: Optional[int] = None,
            max_instructions: int = 400_000_000,
            watchdog: Optional[Watchdog] = None) -> int:
        """Run until the program exits; return the exit code.

        *watchdog* supersedes *max_instructions* when given; on budget
        exhaustion it raises a resumable :class:`SimulationLimit` and
        this CPU remains runnable from where it stopped.
        """
        if start is not None:
            self.pc = start
            self.npc = start + 4
        self.running = True
        if watchdog is None:
            watchdog = Watchdog(max_instructions=max_instructions,
                                snapshot=False)
        watchdog.arm(self)
        insn_limit = watchdog.insn_limit
        cycle_limit = watchdog.cycle_limit
        trap_limit = watchdog.trap_limit
        if self.fast_path and cycle_limit is _INFINITY \
                and trap_limit is _INFINITY:
            self._run_fast(watchdog, insn_limit)
        else:
            # cycle/trap budgets can trip *inside* a block, so the
            # boundary must stay per-instruction: slow loop only
            while self.running:
                self.step()
                if self.instructions >= insn_limit or \
                        self.cycles >= cycle_limit or \
                        self.traps_taken >= trap_limit:
                    watchdog.exhausted(self)
        return self.exit_code if self.exit_code is not None else 0

    def _run_fast(self, watchdog: Watchdog, insn_limit) -> None:
        """Block-dispatch loop: compiled blocks where possible, exact
        single steps everywhere else (armed fault handlers, pending
        delayed branches, instruction-budget boundaries, trap sites)."""
        blocks = self.block_cache()
        cache = blocks.blocks
        cache_get = cache.get
        lookup = blocks.lookup
        code = self.code
        mem = self.mem
        step = self.step
        while self.running:
            if self.npc == self.pc + 4 and mem.fault_handler is None:
                if blocks.version != code.version:
                    cache.clear()
                    blocks.version = code.version
                    blocks.invalidations += 1
                block = cache_get(self.pc, _NO_BLOCK)
                if block is _NO_BLOCK:
                    block = lookup(self.pc)
                if block is not None and \
                        self.instructions + block.max_retire <= insn_limit:
                    block.fn(self)
                    if self.instructions >= insn_limit:
                        watchdog.exhausted(self)
                    continue
            step()
            if self.instructions >= insn_limit:
                watchdog.exhausted(self)

    def run_steps(self, count: int) -> None:
        """Execute exactly *count* instructions (or until the program
        stops), using the fast path for full blocks that fit.

        This is the single-stepping entry point used by the debugger and
        the recorder's keyframe-stride chunks: because blocks are guarded
        by :attr:`BasicBlock.max_retire`, the loop never overshoots, and
        the final instruction boundary is bit-exact with *count* calls
        to :meth:`step`.
        """
        self.running = True
        limit = self.instructions + count
        if not self.fast_path:
            while self.running and self.instructions < limit:
                self.step()
            return
        blocks = self.block_cache()
        cache = blocks.blocks
        cache_get = cache.get
        lookup = blocks.lookup
        code = self.code
        mem = self.mem
        step = self.step
        while self.running and self.instructions < limit:
            if self.npc == self.pc + 4 and mem.fault_handler is None:
                if blocks.version != code.version:
                    cache.clear()
                    blocks.version = code.version
                    blocks.invalidations += 1
                block = cache_get(self.pc, _NO_BLOCK)
                if block is _NO_BLOCK:
                    block = lookup(self.pc)
                if block is not None and \
                        self.instructions + block.max_retire <= limit:
                    block.fn(self)
                    continue
            step()

    def block_cache(self):
        """The per-CPU compiled-block cache (created on first use)."""
        if self._blocks is None:
            from repro.machine.blocks import BlockCache
            self._blocks = BlockCache(self)
        return self._blocks

    def fast_stats(self) -> Dict[str, int]:
        """Fast-path telemetry: cached blocks, decodes, runs, retires."""
        if self._blocks is None:
            return {"cached_blocks": 0, "decodes": 0, "invalidations": 0,
                    "block_runs": 0, "fast_retired": 0}
        return self._blocks.stats()

    def stop(self, exit_code: int = 0) -> None:
        self.running = False
        self.exit_code = exit_code
