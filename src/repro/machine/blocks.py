"""Basic-block fast-path execution engine (DESIGN.md §14).

The per-instruction interpreter loop in :mod:`repro.machine.cpu` pays
Python dispatch overhead — fetch, bounds checks, two dict updates for
tag attribution, delayed-branch state — for every simulated
instruction.  This module removes that overhead for straight-line code:
each basic block is decoded **once** into a single specialized Python
function (superinstruction fusion taken to block granularity: the whole
block is one fused handler, a trailing compare+branch or jmpl plus its
delay slot is folded into the same function, loaded values are
forwarded directly into the instructions that consume them, and traces
extend *through* statically-targeted ``call``/``ba`` transfers so a
call-heavy inner loop still compiles to one handler).  Compiled blocks
are cached keyed by entry pc and invalidated whenever the code space
changes — Kessler write-check patches, breakpoint patches, appended
patch blocks and checkpoint restores all bump
:attr:`~repro.machine.cpu.CodeSpace.version`.

The fast path is *selective* and *exact*:

* Every architectural effect — cycles (including cache-miss penalties
  through the combined I+D cache), loads/stores/instructions counters,
  per-tag cycle attribution, condition codes, window traps, the
  write-record stream and fault-injection trip points — is reproduced
  bit-for-bit, so a fast-path run is byte-identical to the slow loop
  (same keyframe digests, same trace bytes; tests/test_fastpath.py
  enforces this).  Static per-instruction costs are *batched* (one
  ``cycles += n`` per straight run) but always flushed before any
  instruction that can raise, so observable state at every fault point
  matches the slow loop exactly.
* Blocks end at anything that must stay on the exact slow path: ``ta``
  traps (monitor hits, syscalls, breakpoints), tag changes (so per-tag
  accounting stays trivially exact), code holes, and unfusable delay
  slots.  The CPU additionally refuses the fast path while a
  page-protection fault handler is armed (the vmprotect baseline traps
  on stores), while a cycle/trap watchdog budget is armed (those can
  trip *inside* a block), and when a delayed control transfer is
  pending (``npc != pc + 4``).
* A block never retires past an instruction budget: callers guard with
  :attr:`BasicBlock.max_retire`, dropping to single stepping near
  keyframe strides and watchdog boundaries.

Mid-block exceptions (division traps, misaligned access, injected
faults, window underflow) restore exact slow-loop state — pc/npc at the
faulting instruction, counters covering only retired instructions —
before propagating, so fault-injection and divergence semantics are
unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults import MEMORY_WRITE
from repro.isa.instructions import (ArithInsn, BranchInsn, CallInsn,
                                    Instruction, JmplInsn, LoadInsn,
                                    NopInsn, RestoreInsn, SaveInsn,
                                    SethiInsn, StoreInsn)
from repro.machine.memory import MemoryFault

__all__ = ["BasicBlock", "BlockCache", "compile_block", "MAX_TRACE"]

_M = 4294967295          # WORD_MASK
_LINE_SHIFT = 5

#: longest trace (retired instructions) compiled into one handler.
MAX_TRACE = 96

#: branch-condition expressions over the flag locals ``_fn/_fz/_fv/_fc``
#: ("a" and "n" are handled structurally, not as expressions).
_COND_EXPR = {
    "e": "_fz", "ne": "not _fz",
    "l": "_fn != _fv", "ge": "_fn == _fv",
    "le": "_fz or _fn != _fv", "g": "not _fz and _fn == _fv",
    "lu": "_fc", "geu": "not _fc",
    "leu": "_fc or _fz", "gu": "not _fc and not _fz",
    "neg": "_fn", "pos": "not _fn",
}

_ALU_EXPR = {
    "add": "(%s + %s) & 4294967295",
    "sub": "(%s - %s) & 4294967295",
    "and": "%s & %s",
    "andn": "%s & ~%s & 4294967295",
    "or": "%s | %s",
    "xor": "%s ^ %s",
    "sll": "(%s << (%s & 31)) & 4294967295",
    "srl": "%s >> (%s & 31)",
}

_ALU_EXTRA = {"smul": 4, "sdiv": 19}


def _eligible_mem(insn) -> bool:
    return insn.width != 8 or not (insn.rd & 1)


def _true(_insn: Instruction) -> bool:
    return True


#: exact-type dispatch: subclasses (strategy-specific instructions, if
#: any appear) deliberately fall back to the slow loop.
_STRAIGHT = {
    ArithInsn: _true,
    SethiInsn: _true,
    NopInsn: _true,
    LoadInsn: _eligible_mem,
    StoreInsn: _eligible_mem,
    SaveInsn: _true,
    RestoreInsn: _true,
}

_CTI = (BranchInsn, CallInsn, JmplInsn)


def _can_raise(insn: Instruction) -> bool:
    """Can executing *insn* raise (misalignment, injected fault,
    division trap, window underflow)?  Instructions that cannot raise
    skip the per-instruction exception bookkeeping entirely and have
    their static costs batched."""
    kind = type(insn)
    if kind is StoreInsn:
        return True              # misalign / fault injection
    if kind is LoadInsn:
        return insn.width != 1   # word loads check alignment
    if kind is ArithInsn:
        return insn.op == "sdiv"
    return kind is RestoreInsn   # window underflow


class BasicBlock:
    """One compiled trace: entry pc, fused handler, retire bound."""

    __slots__ = ("entry", "fn", "max_retire", "size", "tag", "source")

    def __init__(self, entry: int, fn, max_retire: int, size: int,
                 tag: str, source: str):
        self.entry = entry
        self.fn = fn
        #: most instructions one execution can retire (annulled delay
        #: slots and untaken-annul arms may retire fewer) — callers use
        #: this to stay inside instruction budgets without overshoot.
        self.max_retire = max_retire
        self.size = size
        self.tag = tag
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<BasicBlock @0x%x size=%d tag=%s>" % (
            self.entry, self.size, self.tag)


def _decode(code, entry: int):
    """Walk the trace at *entry*: straight-line instructions, embedded
    ``call``/``ba``/``bn`` transfers (statically-known successor), and a
    terminator (conditional branch, ``jmpl``, trace-ending transfer, or
    plain fall-through).  Returns ``(tag, steps, term, fall_pc)`` or
    None when the entry instruction itself cannot go fast."""
    insns = code.insns
    base = code.base
    count = len(insns)

    def at(pc: int) -> Optional[Instruction]:
        if pc < base or pc & 3:
            return None
        index = (pc - base) >> 2
        return insns[index] if index < count else None

    first = at(entry)
    if first is None:
        return None
    tag = first.tag
    steps: List[tuple] = []
    term = None
    fall: Optional[int] = None
    seen = set()
    pc = entry
    retired = 0
    while True:
        if retired >= MAX_TRACE or pc in seen:
            fall = pc
            break
        insn = at(pc)
        if insn is None or insn.tag != tag:
            fall = pc
            break
        kind = type(insn)
        check = _STRAIGHT.get(kind)
        if check is not None:
            if not check(insn):
                fall = pc
                break
            seen.add(pc)
            steps.append(("s", pc, insn, None))
            pc += 4
            retired += 1
            continue
        if kind not in _CTI:       # ta trap / unknown: slow path only
            fall = pc
            break
        slot_pc = pc + 4
        slot = at(slot_pc)
        slot_ok = (slot is not None and slot.tag == tag
                   and _STRAIGHT.get(type(slot)) is not None
                   and _STRAIGHT[type(slot)](slot))
        if kind is JmplInsn:
            if slot_ok:
                term = ("jmpl", pc, insn, slot)
            else:
                fall = pc
            break
        if kind is BranchInsn and insn.cond not in ("a", "n"):
            if slot_ok:
                term = ("cond", pc, insn, slot)
            else:
                fall = pc
            break
        # statically-targeted transfer: call, ba[,a], bn[,a]
        if kind is CallInsn:
            target, annulled = insn.target, False
        elif insn.cond == "a":
            # ba,a annuls its delay slot even though taken
            target, annulled = insn.target, insn.annul
        else:                       # bn: never taken
            target, annulled = pc + 8, insn.annul
        if not annulled and not slot_ok:
            fall = pc
            break
        seen.add(pc)
        seen.add(slot_pc)
        retired += 1 if annulled else 2
        nxt = at(target)
        if (target in seen or retired >= MAX_TRACE or nxt is None
                or nxt.tag != tag):
            term = ("xend", pc, insn, None if annulled else slot)
            break
        steps.append(("x", pc, insn, None if annulled else slot))
        pc = target
    if not steps and term is None:
        return None
    return tag, steps, term, fall


class _Builder:
    """Generates the specialized Python source for one trace."""

    def __init__(self, cpu, entry: int, decoded):
        self.cpu = cpu
        self.entry = entry
        self.tag, self.steps, self.term, self.fall = decoded
        costs = cpu.costs
        self.imiss = costs.imiss_penalty
        self.dmiss = costs.dmiss_penalty
        self.load_extra = costs.load_extra
        self.store_extra = costs.store_extra
        self.window_trap = costs.window_trap
        self.cmask = cpu.cache.index_mask
        self.use: set = set()
        self.flags_written = False
        #: register id -> expression (a temp local or literal) holding
        #: the register's current value — the load+op / op+op
        #: value-forwarding ("fusion") map.
        self.fwd: Dict[int, str] = {}
        self._ntmp = 0
        #: cache line of the previous emitted fetch, or None when a
        #: data access (which may evict through the combined cache)
        #: broke the statically-provable-hit run.
        self._fetch_line: Optional[int] = None
        #: batched static counter increments, flushed before any
        #: can-raise instruction and at every exit path.
        self.pend_cycles = 0
        self.pend_hits = 0
        self.pend_loads = 0
        #: pc per retire index (for exception-exact pc recovery).
        self.pcs: List[int] = []
        self.max_retire = 0

    # -- small helpers ---------------------------------------------------

    def temp(self) -> str:
        self._ntmp += 1
        return "_v%d" % self._ntmp

    def flush_static(self, out: List[str]) -> None:
        if self.pend_cycles:
            out.append("cycles += %d" % self.pend_cycles)
            self.pend_cycles = 0
        if self.pend_hits:
            out.append("ch += %d" % self.pend_hits)
            self.pend_hits = 0
        if self.pend_loads:
            out.append("ld += %d" % self.pend_loads)
            self.pend_loads = 0

    def read(self, rid: int) -> str:
        fwd = self.fwd.get(rid)
        if fwd is not None:
            return fwd
        if rid == 0:
            return "0"
        if rid < 8:
            self.use.add("g")
            return "g[%d]" % rid
        if rid < 16:
            self.use.add("win")
            return "wo[%d]" % (rid - 8)
        if rid < 24:
            self.use.add("win")
            return "wl[%d]" % (rid - 16)
        if rid < 32:
            self.use.add("win")
            return "(pi[%d] if pi is not None else 0)" % (rid - 24)
        self.use.add("mon")
        return "mon[%d]" % (rid - 32)

    def write(self, rid: int, value: str, out: List[str]) -> None:
        """Emit a register write of *value* (a local or literal, always
        already masked to 32 bits) and update the forwarding map."""
        if rid == 0:
            return
        if rid < 8:
            self.use.add("g")
            out.append("g[%d] = %s" % (rid, value))
            self.fwd[rid] = value
        elif rid < 16:
            self.use.add("win")
            out.append("wo[%d] = %s" % (rid - 8, value))
            self.fwd[rid] = value
        elif rid < 24:
            self.use.add("win")
            out.append("wl[%d] = %s" % (rid - 16, value))
            self.fwd[rid] = value
        elif rid < 32:
            self.use.add("win")
            out.append("if pi is not None:")
            out.append("    pi[%d] = %s" % (rid - 24, value))
            # the write is discarded at the outermost frame, so the
            # value must not be forwarded into later reads
            self.fwd.pop(rid, None)
        else:
            self.use.add("mon")
            out.append("mon[%d] = %s" % (rid - 32, value))
            self.fwd[rid] = value

    def operand2(self, op2) -> str:
        if op2.is_imm:
            return str(op2.value & _M)
        return self.read(op2.value)

    def ea_expr(self, addr) -> str:
        base = self.read(addr.rs1)
        if addr.rs2 is not None:
            return "(%s + %s) & 4294967295" % (base, self.read(addr.rs2))
        if addr.imm == 0:
            return base
        return "(%s + %d) & 4294967295" % (base, addr.imm)

    def icache(self, pc: int, out: List[str], inline: bool) -> None:
        """Fetch access for the instruction at *pc*.

        Consecutive fetches from one 32-byte line are provable hits
        unless a data access ran in between (the combined cache may
        evict the code line), so most of them collapse into the batched
        hit counter.
        """
        line = pc >> _LINE_SHIFT
        if line == self._fetch_line:
            if inline:
                out.append("ch += 1")
            else:
                self.pend_hits += 1
            return
        self._fetch_line = line
        index = line & self.cmask
        out.append("if cl[%d] == %d:" % (index, line))
        out.append("    ch += 1")
        out.append("else:")
        out.append("    cl[%d] = %d" % (index, line))
        out.append("    cm += 1")
        out.append("    cycles += %d" % self.imiss)

    def dcache(self, ea: str, out: List[str]) -> None:
        self.use.add("mem")
        out.append("_l = %s >> 5" % ea)
        out.append("_x = _l & %d" % self.cmask)
        out.append("if cl[_x] == _l:")
        out.append("    ch += 1")
        out.append("else:")
        out.append("    cl[_x] = _l")
        out.append("    cm += 1")
        out.append("    cycles += %d" % self.dmiss)
        self._fetch_line = None

    # -- per-instruction emitters ---------------------------------------

    def emit_insn(self, insn: Instruction, pc: int, out: List[str],
                  slot_npc: Optional[str] = None) -> None:
        """Emit one straight-line instruction: retire bookkeeping,
        fetch, semantics.

        *slot_npc* marks a fused delay-slot instruction — mid-slot
        exceptions restore ``pc = slot pc`` with the delayed target as
        npc, exactly like the slow loop.
        """
        inline = _can_raise(insn)
        if inline:
            self.flush_static(out)
            out.append("_c = cycles")
            if slot_npc is None:
                out.append("_i = %d" % len(self.pcs))
            else:
                out.append("_xi = %d" % len(self.pcs))
                out.append("_xpc = %d" % pc)
                out.append("_xnpc = %s" % slot_npc)
                out.append("_i = -1")
            out.append("cycles += 1")
        else:
            self.pend_cycles += 1
        self.icache(pc, out, inline)
        kind = type(insn)
        if kind is ArithInsn:
            self.gen_arith(insn, out)
        elif kind is SethiInsn:
            self.write(insn.rd, str((insn.imm22 << 10) & _M), out)
        elif kind is NopInsn:
            pass
        elif kind is LoadInsn:
            self.gen_load(insn, out, inline)
        elif kind is StoreInsn:
            self.gen_store(insn, out)
        elif kind is SaveInsn:
            self.gen_save(insn, out, push=True)
        elif kind is RestoreInsn:
            self.gen_save(insn, out, push=False)
        else:  # pragma: no cover - decoder never lets this through
            raise AssertionError("unfusable %r" % insn)
        self.pcs.append(pc)

    def gen_arith(self, insn: ArithInsn, out: List[str]) -> None:
        op = insn.op
        bind = insn.set_cc or op in ("sra", "smul", "sdiv")
        a = self.read(insn.rs1)
        if bind and not (a.isdigit() or a.startswith("_")):
            name = self.temp()
            out.append("%s = %s" % (name, a))
            a = name
        b = self.operand2(insn.op2)
        if bind and not (b.isdigit() or b.startswith("_")):
            name = self.temp()
            out.append("%s = %s" % (name, b))
            b = name
        value = self.temp()
        if op in _ALU_EXPR:
            if op in ("sll", "srl") and insn.op2.is_imm:
                # fold the shift-amount mask at compile time
                expr = _ALU_EXPR[op].replace("(%s & 31)", "%s") \
                    % (a, (insn.op2.value & _M) & 31)
            else:
                expr = _ALU_EXPR[op] % (a, b)
            out.append("%s = %s" % (value, expr))
        elif op == "sra":
            sa = self.temp()
            out.append("%s = %s - 4294967296 if %s & 2147483648 else %s"
                       % (sa, a, a, a))
            shift = str((insn.op2.value & _M) & 31) if insn.op2.is_imm \
                else "(%s & 31)" % b
            out.append("%s = (%s >> %s) & 4294967295" % (value, sa, shift))
        else:  # smul / sdiv
            sa = self.temp()
            sb = self.temp()
            out.append("%s = %s - 4294967296 if %s & 2147483648 else %s"
                       % (sa, a, a, a))
            out.append("%s = %s - 4294967296 if %s & 2147483648 else %s"
                       % (sb, b, b, b))
            if op == "smul":
                out.append("%s = (%s * %s) & 4294967295" % (value, sa, sb))
            else:
                out.append("if %s == 0:" % sb)
                out.append("    raise ZeroDivisionError('sdiv by zero')")
                quot = self.temp()
                out.append("%s = abs(%s) // abs(%s)" % (quot, sa, sb))
                out.append("if (%s < 0) != (%s < 0):" % (sa, sb))
                out.append("    %s = -%s" % (quot, quot))
                out.append("%s = %s & 4294967295" % (value, quot))
        self.write(insn.rd, value, out)
        self.pend_cycles += _ALU_EXTRA.get(op, 0)
        if insn.set_cc:
            self.use.add("flags")
            self.flags_written = True
            out.append("_fn = 1 if %s & 2147483648 else 0" % value)
            out.append("_fz = 1 if %s == 0 else 0" % value)
            if op == "add":
                out.append("_fc = 1 if %s + %s > 4294967295 else 0"
                           % (a, b))
                out.append(
                    "_fv = 1 if (~(%s ^ %s) & (%s ^ %s)) & 2147483648 "
                    "else 0" % (a, b, a, value))
            elif op == "sub":
                out.append("_fc = 1 if %s < %s else 0" % (a, b))
                out.append(
                    "_fv = 1 if ((%s ^ %s) & (%s ^ %s)) & 2147483648 "
                    "else 0" % (a, b, a, value))
            else:
                out.append("_fv = 0")
                out.append("_fc = 0")

    def gen_load(self, insn: LoadInsn, out: List[str],
                 inline: bool) -> None:
        self.use.update(("mem", "ld"))
        ea = self.temp()
        out.append("%s = %s" % (ea, self.ea_expr(insn.addr)))
        if inline:
            out.append("ld += 1")
            out.append("cycles += %d" % self.load_extra)
        else:
            self.pend_loads += 1
            self.pend_cycles += self.load_extra
        self.dcache(ea, out)
        value = self.temp()
        if insn.width == 1:
            out.append("%s = mw.get(%s >> 2, 0) >> ((3 - (%s & 3)) * 8) "
                       "& 255" % (value, ea, ea))
            if insn.signed:
                out.append("if %s & 128:" % value)
                out.append("    %s |= 4294967040" % value)
            self.write(insn.rd, value, out)
            return
        out.append("if %s & 3:" % ea)
        out.append("    raise _MF('misaligned word read at 0x%%x' %% %s, "
                   "addr=%s)" % (ea, ea))
        out.append("%s = mw.get(%s >> 2, 0)" % (value, ea))
        self.write(insn.rd, value, out)
        if insn.width == 8:
            hi = self.temp()
            out.append("ld += 1")
            out.append("cycles += %d" % self.load_extra)
            self.dcache("(%s + 4)" % ea, out)
            out.append("%s = mw.get((%s + 4) >> 2, 0)" % (hi, ea))
            self.write(insn.rd + 1, hi, out)

    def _store_word(self, ea: str, value: str, site,
                    out: List[str]) -> None:
        out.append("st += 1")
        out.append("cycles += %d" % self.store_extra)
        self.dcache(ea, out)
        if self.tag == "orig":
            out.append("if cpu.record_writes:")
            out.append("    cpu.write_trace.append((%s, %s, 4))"
                       % (site, ea))
        out.append("if %s & 3:" % ea)
        out.append("    raise _MF('misaligned word write at 0x%%x' %% %s, "
                   "addr=%s)" % (ea, ea))
        out.append("if mem.faults is not None:")
        out.append("    mem.faults.trip(_MW, addr=%s, width=4)" % ea)
        out.append("mw[%s >> 2] = %s" % (ea, value))

    def gen_store(self, insn: StoreInsn, out: List[str]) -> None:
        self.use.update(("mem", "st"))
        ea = self.temp()
        out.append("%s = %s" % (ea, self.ea_expr(insn.addr)))
        value = self.read(insn.rd)
        site = repr(insn.site)
        if insn.width == 1:
            out.append("st += 1")
            out.append("cycles += %d" % self.store_extra)
            self.dcache(ea, out)
            if self.tag == "orig":
                out.append("if cpu.record_writes:")
                out.append("    cpu.write_trace.append((%s, %s, 1))"
                           % (site, ea))
            out.append("if mem.faults is not None:")
            out.append("    mem.faults.trip(_MW, addr=%s, width=1)" % ea)
            out.append("_x = %s >> 2" % ea)
            out.append("_s = (3 - (%s & 3)) * 8" % ea)
            out.append("mw[_x] = (mw.get(_x, 0) & ~(255 << _s)) | "
                       "((%s & 255) << _s)" % value)
            return
        self._store_word(ea, value, site, out)
        if insn.width == 8:
            ea4 = self.temp()
            out.append("%s = %s + 4" % (ea4, ea))
            self._store_word(ea4, self.read(insn.rd + 1), site, out)

    def gen_save(self, insn, out: List[str], push: bool) -> None:
        self.use.update(("win", "regs"))
        value = self.temp()
        out.append("%s = (%s + %s) & 4294967295"
                   % (value, self.read(insn.rs1),
                      self.operand2(insn.op2)))
        flag = self.temp()
        if push:
            out.append("%s = regs.save_window()" % flag)
        else:
            out.append("%s = regs.restore_window()" % flag)
        # the window moved: refresh the window locals and drop every
        # forwarded windowed register
        for rid in [r for r in self.fwd if 8 <= r < 32]:
            del self.fwd[rid]
        out.append("W = regs._window")
        out.append("wo = W.outs")
        out.append("wl = W.locals")
        out.append("P = W.parent")
        out.append("pi = P.outs if P is not None else None")
        self.write(insn.rd, value, out)
        out.append("if %s:" % flag)
        out.append("    cycles += %d" % self.window_trap)
        if push:
            out.append("cpu._window_depth += 1")
            out.append("if cpu._window_depth > cpu.max_window_depth:")
            out.append("    cpu.max_window_depth = cpu._window_depth")
        else:
            out.append("cpu._window_depth -= 1")

    # -- transfers and terminators ---------------------------------------

    def emit_xfer(self, pc: int, insn: Instruction,
                  slot: Optional[Instruction], out: List[str]) -> int:
        """Emit an embedded/terminating static transfer (call, ba, bn)
        plus its delay slot; returns the continuation pc."""
        self.pend_cycles += 1
        self.icache(pc, out, inline=False)
        if type(insn) is CallInsn:
            self.write(15, str(pc), out)   # %o7 <- pc of the call
            target = insn.target
        elif insn.cond == "a":
            target = insn.target
        else:                               # bn: falls through
            target = pc + 8
        self.pcs.append(pc)
        if slot is not None:
            self.emit_insn(slot, pc + 4, out, slot_npc=str(target))
        return target

    def emit_term(self, out: List[str]) -> None:
        kind, pc, insn, slot = self.term
        if kind == "xend":
            target = self.emit_xfer(pc, insn, slot, out)
            self.flush_static(out)
            out.append("_pc = %d" % target)
            out.append("_k = %d" % len(self.pcs))
            self.max_retire = len(self.pcs)
            return
        if kind == "jmpl":
            self.pend_cycles += 1
            self.icache(pc, out, inline=False)
            out.append("_tgt = (%s + %s) & 4294967295"
                       % (self.read(insn.rs1), self.operand2(insn.op2)))
            self.write(insn.rd, str(pc), out)
            self.pcs.append(pc)
            self.emit_insn(slot, pc + 4, out, slot_npc="_tgt")
            self.flush_static(out)
            out.append("_pc = _tgt")
            out.append("_k = %d" % len(self.pcs))
            self.max_retire = len(self.pcs)
            return
        # conditional branch: two arms, each with its own pending state
        self.use.add("flags")
        self.pend_cycles += 1
        self.icache(pc, out, inline=False)
        self.pcs.append(pc)
        target = insn.target
        fall = pc + 8
        state = (dict(self.fwd), self._fetch_line, self.pend_cycles,
                 self.pend_hits, self.pend_loads, list(self.pcs))

        def arm_to(arm_target: int, executes_slot: bool) -> List[str]:
            (fwd, fetch, pcy, phit, pld, pcs) = state
            self.fwd = dict(fwd)
            self._fetch_line = fetch
            self.pend_cycles = pcy
            self.pend_hits = phit
            self.pend_loads = pld
            self.pcs = list(pcs)
            arm: List[str] = []
            if executes_slot:
                self.emit_insn(slot, pc + 4, arm,
                               slot_npc=str(arm_target))
            self.flush_static(arm)
            arm.append("_pc = %d" % arm_target)
            arm.append("_k = %d" % len(self.pcs))
            self.max_retire = max(self.max_retire, len(self.pcs))
            return arm

        then_arm = arm_to(target, True)
        else_arm = arm_to(fall, not insn.annul)
        out.append("if %s:" % _COND_EXPR[insn.cond])
        out.extend("    " + line for line in then_arm)
        out.append("else:")
        out.extend("    " + line for line in else_arm)

    # -- whole-function assembly -----------------------------------------

    def build(self) -> str:
        body: List[str] = []
        for _, pc, insn, slot in self.steps:
            if type(insn) in _CTI:
                self.emit_xfer(pc, insn, slot, body)
            else:
                self.emit_insn(insn, pc, body)
        if self.term is not None:
            self.emit_term(body)
        else:
            self.flush_static(body)
            body.append("_pc = %d" % self.fall)
            body.append("_k = %d" % len(self.pcs))
            self.max_retire = len(self.pcs)

        lines = ["def _blk(cpu):"]

        def emit(text: str, depth: int = 1) -> None:
            lines.append("    " * depth + text)

        if self.use & {"g", "win", "mon", "regs"}:
            emit("regs = cpu.regs")
        if "g" in self.use:
            emit("g = regs.globals")
        if "win" in self.use:
            emit("W = regs._window")
            emit("wo = W.outs")
            emit("wl = W.locals")
            emit("P = W.parent")
            emit("pi = P.outs if P is not None else None")
        if "mon" in self.use:
            emit("mon = regs.monitors")
        if "mem" in self.use:
            emit("mem = cpu.mem")
            emit("mw = mem.words")
        emit("cache = cpu.cache")
        emit("cl = cache.lines")
        emit("ch = cache.hits")
        emit("cm = cache.misses")
        emit("cy0 = cycles = cpu.cycles")
        emit("_c = cycles")
        emit("ic = cpu.instructions")
        if "ld" in self.use:
            emit("ld = cpu.loads")
        if "st" in self.use:
            emit("st = cpu.stores")
        if "flags" in self.use:
            emit("_fn = cpu.icc_n")
            emit("_fz = cpu.icc_z")
            emit("_fv = cpu.icc_v")
            emit("_fc = cpu.icc_c")
        emit("_i = 0")
        emit("try:")
        for line in body:
            emit(line, 2)
        emit("except BaseException:")
        emit("cpu.cycles = cycles", 2)
        emit("if _i < 0:", 2)
        emit("_k = _xi", 3)
        emit("cpu.pc = _xpc", 3)
        emit("cpu.npc = _xnpc", 3)
        emit("else:", 2)
        emit("_k = _i", 3)
        emit("cpu.pc = _PCS[_i]", 3)
        emit("cpu.npc = _PCS[_i] + 4", 3)
        emit("cpu.instructions = ic + _k", 2)
        emit("if _k:", 2)
        emit("tc = cpu.tag_counts", 3)
        emit("tgc = cpu.tag_cycles", 3)
        emit("tc[_TAG] = tc.get(_TAG, 0) + _k", 3)
        emit("tgc[_TAG] = tgc.get(_TAG, 0) + (_c - cy0)", 3)
        self._emit_flush(emit, 2)
        emit("raise", 2)
        emit("cpu.cycles = cycles")
        emit("cpu.instructions = ic + _k")
        emit("tc = cpu.tag_counts")
        emit("tgc = cpu.tag_cycles")
        emit("tc[_TAG] = tc.get(_TAG, 0) + _k")
        emit("tgc[_TAG] = tgc.get(_TAG, 0) + (cycles - cy0)")
        self._emit_flush(emit, 1)
        emit("cpu.pc = _pc")
        emit("cpu.npc = _pc + 4")
        emit("_bc.runs += 1")
        emit("_bc.retired += _k")
        return "\n".join(lines) + "\n"

    def _emit_flush(self, emit, depth: int) -> None:
        emit("cache.hits = ch", depth)
        emit("cache.misses = cm", depth)
        if "ld" in self.use:
            emit("cpu.loads = ld", depth)
        if "st" in self.use:
            emit("cpu.stores = st", depth)
        if self.flags_written:
            emit("cpu.icc_n = _fn", depth)
            emit("cpu.icc_z = _fz", depth)
            emit("cpu.icc_v = _fv", depth)
            emit("cpu.icc_c = _fc", depth)


def compile_block(cpu, entry: int, cache: "BlockCache"
                  ) -> Optional[BasicBlock]:
    """Decode and compile the trace entered at *entry*, or None."""
    decoded = _decode(cpu.code, entry)
    if decoded is None:
        return None
    builder = _Builder(cpu, entry, decoded)
    source = builder.build()
    namespace = {
        "_PCS": tuple(builder.pcs),
        "_MF": MemoryFault,
        "_MW": MEMORY_WRITE,
        "_TAG": builder.tag,
        "_bc": cache,
    }
    exec(compile(source, "<block@0x%x>" % entry, "exec"), namespace)
    return BasicBlock(entry, namespace["_blk"], builder.max_retire,
                      len(builder.pcs), builder.tag, source)


class BlockCache:
    """Per-CPU cache of compiled blocks, keyed by entry pc.

    Invalidation is version-based: every :class:`CodeSpace` mutation
    (Kessler patches, appended patch blocks, checkpoint restores) bumps
    ``code.version``; the next lookup flushes the whole cache.  Decoding
    is cheap relative to execution, so whole-cache flushes keep the
    invalidation rules trivially sound (no per-pc range bookkeeping to
    get wrong).
    """

    __slots__ = ("cpu", "blocks", "version", "decodes", "invalidations",
                 "runs", "retired")

    def __init__(self, cpu):
        self.cpu = cpu
        self.blocks: Dict[int, Optional[BasicBlock]] = {}
        self.version = cpu.code.version
        self.decodes = 0
        self.invalidations = 0
        #: fast-path executions / instructions retired through blocks
        self.runs = 0
        self.retired = 0

    def lookup(self, pc: int) -> Optional[BasicBlock]:
        code = self.cpu.code
        if self.version != code.version:
            self.blocks.clear()
            self.version = code.version
            self.invalidations += 1
        try:
            return self.blocks[pc]
        except KeyError:
            block = compile_block(self.cpu, pc, self)
            self.blocks[pc] = block
            self.decodes += 1
            return block

    def stats(self) -> Dict[str, int]:
        return {
            "cached_blocks": sum(1 for block in self.blocks.values()
                                 if block is not None),
            "decodes": self.decodes,
            "invalidations": self.invalidations,
            "block_runs": self.runs,
            "fast_retired": self.retired,
        }
