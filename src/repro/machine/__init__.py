"""CPU, memory, cache and trap simulation substrate."""
