"""Sparse word-addressed data memory with optional page protection.

Memory is a dictionary from word index to 32-bit value; untouched words
read as zero.  This makes multi-megabyte sparse structures (the segment
table of the monitored region service spans 32 MB of address space) free
until touched, exactly like lazily allocated pages.

Page protection supports the VAX DEBUG baseline (:mod:`repro.baselines.
vmprotect`): writes to a protected page invoke a fault handler before the
write is performed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set

from repro.errors import ReproError
from repro.faults import MEMORY_WRITE

WORD_MASK = 0xFFFFFFFF

#: Page size used for protection granularity (SunOS used 4 KB pages).
PAGE_SIZE = 4096
PAGE_SHIFT = 12


class MemoryFault(ReproError):
    """Raised on misaligned access."""


class Memory:
    """Sparse 32-bit byte-addressable memory (word-granular storage)."""

    __slots__ = ("words", "protected_pages", "fault_handler", "brk",
                 "faults")

    def __init__(self, heap_base: int = 0x20008000):
        self.words: Dict[int, int] = {}
        self.protected_pages: Set[int] = set()
        #: called as ``fault_handler(addr, size)`` before a write to a
        #: protected page; installed by the vmprotect baseline.
        self.fault_handler: Optional[Callable[[int, int], None]] = None
        #: program break for the ``sbrk`` trap.
        self.brk = heap_base
        #: optional :class:`repro.faults.FaultPlan`; when armed, every
        #: word/byte write is a ``memory.write`` injection point.
        self.faults = None

    # -- word access --------------------------------------------------

    def read_word(self, addr: int) -> int:
        if addr & 3:
            raise MemoryFault("misaligned word read at 0x%x" % addr,
                              addr=addr)
        return self.words.get(addr >> 2, 0)

    def write_word(self, addr: int, value: int) -> None:
        if addr & 3:
            raise MemoryFault("misaligned word write at 0x%x" % addr,
                              addr=addr)
        if self.faults is not None:
            self.faults.trip(MEMORY_WRITE, addr=addr, width=4)
        self.words[addr >> 2] = value & WORD_MASK

    # -- byte access ---------------------------------------------------

    def read_byte(self, addr: int) -> int:
        word = self.words.get(addr >> 2, 0)
        shift = (3 - (addr & 3)) * 8  # big-endian, like SPARC
        return (word >> shift) & 0xFF

    def write_byte(self, addr: int, value: int) -> None:
        if self.faults is not None:
            self.faults.trip(MEMORY_WRITE, addr=addr, width=1)
        index = addr >> 2
        shift = (3 - (addr & 3)) * 8
        word = self.words.get(index, 0)
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self.words[index] = word

    # -- bulk helpers (host-side, not charged cycles) -------------------

    def write_words(self, addr: int, values: Iterable[int]) -> None:
        if addr & 3:
            raise MemoryFault("misaligned block write at 0x%x" % addr)
        index = addr >> 2
        for offset, value in enumerate(values):
            self.words[index + offset] = value & WORD_MASK

    def read_words(self, addr: int, count: int) -> list:
        if addr & 3:
            raise MemoryFault("misaligned block read at 0x%x" % addr)
        index = addr >> 2
        return [self.words.get(index + i, 0) for i in range(count)]

    def write_bytes(self, addr: int, data: bytes) -> None:
        for offset, byte in enumerate(data):
            self.write_byte(addr + offset, byte)

    def read_bytes(self, addr: int, count: int) -> bytes:
        return bytes(self.read_byte(addr + i) for i in range(count))

    # -- heap ------------------------------------------------------------

    def sbrk(self, size: int) -> int:
        """Grow the program break by *size* bytes, returning the old break."""
        old = self.brk
        self.brk = (self.brk + size + 7) & ~7
        return old

    # -- protection ------------------------------------------------------

    def protect_range(self, addr: int, size: int) -> None:
        for page in range(addr >> PAGE_SHIFT, (addr + size - 1 >> PAGE_SHIFT)
                          + 1):
            self.protected_pages.add(page)

    def unprotect_all(self) -> None:
        self.protected_pages.clear()

    def is_protected(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self.protected_pages
