"""Disassembler for decoded code space.

Renders instructions with addresses, label annotations, accounting tags
and live patch state — the view a debugger user needs to see what the
instrumenter and the dynamic patcher actually did to their code.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.asm.assembler import Program
from repro.machine.cpu import CodeSpace


def disassemble(code: CodeSpace, start: int, count: int,
                labels: Optional[Dict[str, int]] = None,
                mark: Optional[int] = None) -> str:
    """Disassemble *count* instructions starting at address *start*.

    *labels* (name -> address) annotates targets; *mark* draws an arrow
    at one address (e.g. the current pc).
    """
    by_addr: Dict[int, List[str]] = {}
    for name, addr in (labels or {}).items():
        by_addr.setdefault(addr, []).append(name)
    lines: List[str] = []
    for index in range(count):
        addr = start + 4 * index
        if addr < code.base or addr >= code.limit:
            break
        for name in by_addr.get(addr, ()):
            lines.append("%s:" % name)
        insn = code.insns[code.index_of(addr)]
        if insn is None:
            text, tag = "<hole>", ""
        else:
            text = str(insn)
            tag = "" if insn.tag == "orig" else "  ! %s" % insn.tag
            if insn.site is not None:
                tag += "  ! site %d" % insn.site
        arrow = "=> " if addr == mark else "   "
        lines.append("%s0x%08x:  %-28s%s" % (arrow, addr, text, tag))
    return "\n".join(lines)


def disassemble_function(program: Program, code: CodeSpace,
                         name: str, mark: Optional[int] = None) -> str:
    """Disassemble one function of an assembled program."""
    func = program.function_named(name)
    count = func.end_index - func.start_index
    return disassemble(code, func.address, count, labels=program.labels,
                       mark=mark)
