"""Cycle cost model for the simulated machine.

The model follows the accounting the paper uses in §3.3.3: register
instructions cost one cycle, loads cost "between 2 and 8 cycles" (here:
2 on a cache hit, 2 + ``dmiss_penalty`` on a miss), stores cost 3 cycles
on a hit.  Instruction fetch goes through the combined cache, so code
growth from inserted checks produces the §3.3.1 cache effects.
"""

from __future__ import annotations


class CostModel:
    """Per-event cycle costs.  All fields are plain ints so experiment
    harnesses can build variants (e.g. the §3.3.3 break-even analysis
    sweeps the load cost from 2 to 8 cycles)."""

    __slots__ = ("load_extra", "store_extra", "dmiss_penalty",
                 "imiss_penalty", "window_trap", "trap_base")

    def __init__(self, load_extra: int = 1, store_extra: int = 2,
                 dmiss_penalty: int = 8, imiss_penalty: int = 8,
                 window_trap: int = 60, trap_base: int = 100):
        self.load_extra = load_extra
        self.store_extra = store_extra
        self.dmiss_penalty = dmiss_penalty
        self.imiss_penalty = imiss_penalty
        self.window_trap = window_trap
        self.trap_base = trap_base

    def copy(self, **overrides) -> "CostModel":
        kwargs = {name: getattr(self, name) for name in self.__slots__}
        kwargs.update(overrides)
        return CostModel(**kwargs)


DEFAULT_COSTS = CostModel()
