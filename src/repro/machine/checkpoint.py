"""Checkpoint/restore of simulator state — the §5 replay application.

"Other applications of data breakpoints include ... checkpointing data
for replayed execution."  A checkpoint captures everything the debuggee
needs to re-execute deterministically: registers (including the window
chain), data memory, code space (with any dynamic patches), control
state, and — optionally — the monitored region service's host-side
bookkeeping, so watchpoints can be *changed* between replays.

Typical replay loop: checkpoint early, run until a data breakpoint
reports corruption, restore, re-run with narrower breakpoints to close
in on the culprit (see ``examples/replay_debugging.py``).
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

from repro.isa.registers import RegisterFile, _Window
from repro.machine.cpu import CPU


class Checkpoint:
    """Immutable snapshot of one CPU (plus optional MRS bookkeeping)."""

    __slots__ = ("pc", "npc", "icc", "globals", "monitors", "windows",
                 "window_counters", "memory_words", "brk", "code_insns",
                 "cycles", "instructions", "loads", "stores", "traps_taken",
                 "tag_cycles", "tag_counts", "cache_lines", "cache_stats",
                 "window_depth", "run_state", "output_len", "mrs_state")

    def __init__(self, cpu: CPU, output: Optional[List[str]] = None,
                 mrs=None):
        self.pc = cpu.pc
        self.npc = cpu.npc
        self.icc = (cpu.icc_n, cpu.icc_z, cpu.icc_v, cpu.icc_c)
        regs = cpu.regs
        self.globals = list(regs.globals)
        self.monitors = list(regs.monitors)
        self.windows = _serialize_windows(regs)
        self.window_counters = (regs._resident, regs._spilled, regs.depth)
        self.memory_words = dict(cpu.mem.words)
        self.brk = cpu.mem.brk
        self.code_insns = list(cpu.code.insns)
        self.cycles = cpu.cycles
        self.instructions = cpu.instructions
        self.loads = cpu.loads
        self.stores = cpu.stores
        self.traps_taken = cpu.traps_taken
        self.tag_cycles = dict(cpu.tag_cycles)
        self.tag_counts = dict(cpu.tag_counts)
        self.cache_lines = list(cpu.cache.lines)
        self.cache_stats = (cpu.cache.hits, cpu.cache.misses)
        self.window_depth = (cpu._window_depth, cpu.max_window_depth)
        self.run_state = (cpu.running, cpu.exit_code)
        self.output_len = len(output) if output is not None else None
        self.mrs_state = _snapshot_mrs(mrs) if mrs is not None else None

    def restore(self, cpu: CPU, output: Optional[List[str]] = None,
                mrs=None) -> None:
        """Rewind *cpu* (and optionally *output*/*mrs*) to this state."""
        cpu.pc = self.pc
        cpu.npc = self.npc
        cpu.icc_n, cpu.icc_z, cpu.icc_v, cpu.icc_c = self.icc
        regs = cpu.regs
        regs.globals[:] = self.globals
        regs.monitors[:] = self.monitors
        _restore_windows(regs, self.windows)
        regs._resident, regs._spilled, regs.depth = self.window_counters
        cpu.mem.words = dict(self.memory_words)
        cpu.mem.brk = self.brk
        cpu.code.insns[:] = self.code_insns
        # the code space changed behind patch()/append_block(): force the
        # basic-block cache to flush its compiled handlers
        cpu.code.version += 1
        cpu.cycles = self.cycles
        cpu.instructions = self.instructions
        cpu.loads = self.loads
        cpu.stores = self.stores
        cpu.traps_taken = self.traps_taken
        cpu.tag_cycles = dict(self.tag_cycles)
        cpu.tag_counts = dict(self.tag_counts)
        cpu.cache.lines[:] = self.cache_lines
        cpu.cache.hits, cpu.cache.misses = self.cache_stats
        cpu._window_depth, cpu.max_window_depth = self.window_depth
        cpu.running, cpu.exit_code = self.run_state
        cpu.write_trace = []
        cpu._branch_target = None
        cpu._annul_slot = False
        cpu._skip_slot = False
        if output is not None and self.output_len is not None:
            del output[self.output_len:]
        if mrs is not None and self.mrs_state is not None:
            _restore_mrs(mrs, self.mrs_state)


def _serialize_windows(regs: RegisterFile) -> List[Tuple[List[int],
                                                         List[int]]]:
    frames = []
    window = regs._window
    while window is not None:
        frames.append((list(window.outs), list(window.locals)))
        window = window.parent
    return frames


def _restore_windows(regs: RegisterFile, frames) -> None:
    parent = None
    for outs, locals_ in reversed(frames):
        window = _Window(parent=parent)
        window.outs[:] = outs
        window.locals[:] = locals_
        parent = window
    regs._window = parent


def _snapshot_mrs(mrs) -> Dict:
    return {
        "regions": list(mrs.regions),
        "hits": list(mrs.hits),
        "preheader_hits": dict(mrs.preheader_hits),
        "active_reasons": copy.deepcopy(mrs._active_reasons),
        "bitmap": (dict(mrs.bitmap._segments),
                   dict(mrs.bitmap._word_counts),
                   dict(mrs.bitmap.region_counts),
                   mrs.bitmap._arena_next),
        "superpages": dict(mrs.superpages._counts),
        "enabled": mrs.enabled,
    }


def _restore_mrs(mrs, state: Dict) -> None:
    from repro.core.regions import RegionSet

    regions = RegionSet()
    for region in state["regions"]:
        regions.add(region)
    mrs.regions = regions
    mrs.hits = list(state["hits"])
    mrs.preheader_hits = dict(state["preheader_hits"])
    mrs._active_reasons = copy.deepcopy(state["active_reasons"])
    segments, word_counts, region_counts, arena_next = state["bitmap"]
    mrs.bitmap._segments = dict(segments)
    mrs.bitmap._word_counts = dict(word_counts)
    mrs.bitmap.region_counts = dict(region_counts)
    mrs.bitmap._arena_next = arena_next
    mrs.superpages._counts = dict(state["superpages"])
    mrs.enabled = state["enabled"]
    # code space was rewound above; make the per-site active flags agree
    # with the restored activation refcounts
    patches = getattr(mrs, "patches", None)
    if patches is not None:
        patches.sync_active_flags()
