"""Direct-mapped combined instruction + data cache.

Models the cache of the paper's experimental SPARC: direct mapped,
combined I+D, 32-byte lines (§3.3.1).  Only hit/miss behaviour is
modelled — the CPU charges miss penalties from its cost model.
"""

from __future__ import annotations

from typing import List, Optional

DEFAULT_CACHE_BYTES = 64 * 1024
LINE_BYTES = 32
LINE_SHIFT = 5


class DirectMappedCache:
    """Direct-mapped cache over 32-byte lines."""

    __slots__ = ("num_lines", "index_mask", "lines", "hits", "misses")

    def __init__(self, size_bytes: int = DEFAULT_CACHE_BYTES):
        if size_bytes % LINE_BYTES:
            raise ValueError("cache size must be a multiple of 32 bytes")
        self.num_lines = size_bytes // LINE_BYTES
        if self.num_lines & (self.num_lines - 1):
            raise ValueError("cache size must be a power of two")
        self.index_mask = self.num_lines - 1
        self.lines: List[Optional[int]] = [None] * self.num_lines
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch *addr*; return True on hit.  Misses allocate the line."""
        line = addr >> LINE_SHIFT
        index = line & self.index_mask
        if self.lines[index] == line:
            self.hits += 1
            return True
        self.lines[index] = line
        self.misses += 1
        return False

    def reset(self) -> None:
        self.lines = [None] * self.num_lines
        self.hits = 0
        self.misses = 0
