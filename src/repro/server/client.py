"""Resilient blocking client for the debug server.

:class:`DebugClient` owns one connection.  A background reader thread
demultiplexes the stream: responses complete blocking :meth:`request`
calls, events accumulate in an ordered queue that :meth:`wait_event` /
:meth:`pop_events` drain.  A failed request raises :class:`RemoteError`
carrying the server's structured error payload — class name, message
and the original :class:`~repro.errors.ReproError` context dict — so
remote failures are as inspectable as local ones.

Fault tolerance (protocol v3):

* **per-request timeouts** — every :meth:`request` bounds its wait; a
  timed-out idempotent request is retried (fresh seq), a timed-out
  mutating one raises :class:`RequestTimeout` because its outcome is
  unknown;
* **retry budget with exponential backoff + jitter** — transport
  failures and ``retryAfter``-hinted server refusals (``capacity``,
  ``draining``, ``initializing``) are retried up to ``retries`` times,
  sleeping ``backoff * 2^attempt`` (jittered, capped) or the server's
  hint, whichever is larger — so overload degrades into queueing, not
  a thundering herd of instant retries;
* **automatic reconnect-and-resume** — when the connection dies the
  client dials again, replays ``initialize``, and sends ``resume`` for
  every session id it has launched or resumed, re-attaching to
  sessions the server hibernated when the old connection dropped (or
  that survived a full server restart on disk);
* **heartbeat** — with ``heartbeat=N`` a background thread sends
  ``ping`` every N seconds, keeping the connection inside the server's
  liveness window and detecting silent death early;
* **fault injection** — a :class:`~repro.faults.FaultPlan` passed as
  ``fault_plan`` trips the ``client.send`` point before each
  transmission, so the whole retry/reconnect path is testable
  deterministically.

.. code-block:: python

    with DebugClient(port=server.port, heartbeat=5.0) as client:
        client.initialize()
        sid = client.launch(SOURCE)
        info = client.data_breakpoint_info(sid, "total")
        client.set_data_breakpoints(sid, [{"dataId": info["dataId"]}])
        stop = client.cont(sid)              # -> reason "watch"
        hit = client.wait_event("monitorHit")
        client.disconnect(sid)
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import InjectedFault, ProtocolError, ReproError
from repro.faults import CLIENT_SEND, FaultPlan
from repro.server.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                   Event, Request, Response, encode,
                                   read_frame, decode)

__all__ = ["DebugClient", "RemoteError", "ClientClosed", "RequestTimeout",
           "IDEMPOTENT_COMMANDS"]

#: commands safe to retry after a transport failure of unknown depth:
#: they either read state or declaratively replace it, so running one
#: twice converges on the same result.  ``continue``/``step``/reverse
#: travel advance the debuggee and are never blind-retried.
IDEMPOTENT_COMMANDS = frozenset({
    "initialize", "ping", "threads", "evaluate", "dataBreakpointInfo",
    "setDataBreakpoints", "resume", "hibernate", "lastWrite",
    "disconnect",
})


class RemoteError(ReproError):
    """A request failed server-side; carries the structured payload."""

    def __init__(self, command: str, payload: Dict[str, Any]):
        message = payload.get("message", "request failed")
        super().__init__("%s: %s" % (command, message),
                         **(payload.get("context") or {}))
        self.command = command
        self.payload = payload
        #: the server-side exception class name (e.g. "RegionCreateError")
        self.remote_error = payload.get("error")

    @property
    def retry_after(self) -> Optional[float]:
        """The server's backpressure hint in seconds, if it gave one."""
        value = self.context.get("retryAfter")
        return float(value) if value is not None else None


class ClientClosed(ReproError):
    """The connection died while a request was outstanding."""


class RequestTimeout(ClientClosed):
    """No response within the per-request timeout; for a mutating
    request the outcome is unknown, so the caller must decide."""


class DebugClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 retries: int = 4,
                 backoff: float = 0.05,
                 backoff_max: float = 2.0,
                 reconnect: bool = True,
                 heartbeat: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 backoff_seed: Optional[int] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self.retries = max(0, retries)
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.auto_reconnect = reconnect
        self.heartbeat = heartbeat
        self.fault_plan = fault_plan
        self._rng = random.Random(backoff_seed)
        self._seq = 0
        self._gen = 0
        self._send_lock = threading.Lock()
        self._reconnect_lock = threading.RLock()
        self._cond = threading.Condition()
        self._responses: Dict[int, Response] = {}
        self._events: List[Event] = []
        self._closed = False
        self._user_closed = False
        #: session ids to resume after a reconnect (launch/resume add,
        #: disconnect removes)
        self._sessions: List[str] = []
        #: protocol version to replay in initialize on reconnect
        self._initialized_version: Optional[int] = None
        #: resume failures observed during the last reconnect
        self.resume_errors: Dict[str, RemoteError] = {}
        self._sock = self._dial()
        self._reader = self._start_reader(self._sock, self._gen)
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        if heartbeat is not None:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, name="repro-client-ping",
                daemon=True)
            self._heartbeat_thread.start()

    # -- plumbing ----------------------------------------------------------

    def _dial(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _start_reader(self, sock: socket.socket,
                      gen: int) -> threading.Thread:
        reader = threading.Thread(target=self._read_loop,
                                  args=(sock, gen),
                                  name="repro-client-reader",
                                  daemon=True)
        reader.start()
        return reader

    def _read_loop(self, sock: socket.socket, gen: int) -> None:
        try:
            while True:
                payload = read_frame(sock, self.max_frame_bytes)
                if payload is None:
                    break
                message = decode(payload)
                with self._cond:
                    if gen != self._gen:
                        break  # a reconnect superseded this socket
                    if isinstance(message, Response):
                        self._responses[message.request_seq] = message
                    elif isinstance(message, Event):
                        self._events.append(message)
                    self._cond.notify_all()
        except (ProtocolError, OSError):
            pass
        finally:
            with self._cond:
                # only the *current* connection's death closes the
                # client; a stale reader exiting after a reconnect
                # must not poison the new connection
                if gen == self._gen:
                    self._closed = True
                    self._cond.notify_all()

    def _send(self, command: str,
              arguments: Optional[Dict[str, Any]]) -> int:
        """Transmit one request; returns its seq.  Raises
        :class:`ClientClosed` when the transport fails (including an
        injected ``client.send`` fault) *before* the request can have
        reached the server."""
        with self._send_lock:
            if self._closed:
                raise ClientClosed("connection is closed",
                                   command=command)
            self._seq += 1
            seq = self._seq
            sock = self._sock
        payload = encode(Request(seq=seq, command=command,
                                 arguments=arguments or {}))
        try:
            if self.fault_plan is not None:
                self.fault_plan.trip(CLIENT_SEND, command=command,
                                     seq=seq)
            sock.sendall(payload)
        except InjectedFault as exc:
            raise ClientClosed("injected transport fault sending %r"
                               % command, command=command) from exc
        except OSError as exc:
            raise ClientClosed("transport failed sending %r: %s"
                               % (command, exc),
                               command=command) from exc
        return seq

    def _await(self, seq: int, command: str,
               timeout: float) -> Response:
        with self._cond:
            ok = self._cond.wait_for(
                lambda: seq in self._responses or self._closed,
                timeout=timeout)
            if seq in self._responses:
                return self._responses.pop(seq)
            if self._closed:
                raise ClientClosed(
                    "connection closed awaiting %r" % command,
                    command=command)
            if not ok:
                raise RequestTimeout(
                    "timed out awaiting %r" % command,
                    command=command, timeout=timeout)
            raise ClientClosed("no response for %r" % command,
                               command=command)

    def _backoff_delay(self, attempt: int,
                       floor: Optional[float] = None) -> float:
        """Exponential backoff with full jitter, floored at the
        server's ``retryAfter`` hint when one was given."""
        ceiling = min(self.backoff_max, self.backoff * (2 ** attempt))
        delay = self._rng.uniform(0, ceiling)
        if floor is not None:
            delay = max(delay, float(floor))
        return delay

    def request(self, command: str,
                arguments: Optional[Dict[str, Any]] = None,
                timeout: Optional[float] = None,
                idempotent: Optional[bool] = None,
                retries: Optional[int] = None) -> Dict[str, Any]:
        """Send one request and block for its response body.

        Transport failures reconnect-and-retry (for requests that are
        idempotent, or that provably never reached the server);
        ``retryAfter``-hinted refusals back off and retry regardless of
        idempotency, because the server refused *before* executing.
        Raises :class:`RemoteError` on a definitive server-side
        failure, :class:`RequestTimeout` / :class:`ClientClosed` when
        the retry budget is exhausted.
        """
        timeout = self.timeout if timeout is None else timeout
        if idempotent is None:
            idempotent = command in IDEMPOTENT_COMMANDS
        budget = self.retries if retries is None else max(0, retries)
        attempt = 0
        while True:
            sent = False
            try:
                seq = self._send(command, arguments)
                sent = True
                response = self._await(seq, command, timeout)
            except RequestTimeout:
                # the connection may be fine; only an idempotent
                # request can be blind-resent under a fresh seq
                if not idempotent or attempt >= budget:
                    raise
                attempt += 1
                time.sleep(self._backoff_delay(attempt))
                continue
            except ClientClosed:
                if self._user_closed or not self.auto_reconnect:
                    raise
                if sent and not idempotent:
                    raise  # outcome unknown: never re-run a mutation
                if attempt >= budget:
                    raise
                attempt += 1
                self._reconnect(attempt)
                continue
            if response.success:
                return response.body
            error = RemoteError(command, response.error or {})
            retry_after = error.retry_after
            if retry_after is not None and attempt < budget:
                # capacity / draining / initializing: refused before
                # execution, so safe to retry even for mutations
                attempt += 1
                time.sleep(self._backoff_delay(attempt,
                                               floor=retry_after))
                continue
            raise error

    # -- reconnect ---------------------------------------------------------

    def _reconnect(self, attempt: int = 1) -> None:
        """Dial a fresh connection, replay ``initialize``, and resume
        every tracked session id.  Raises :class:`ClientClosed` when
        the backoff budget runs out."""
        with self._reconnect_lock:
            with self._cond:
                if not self._closed:
                    return  # another caller already reconnected
                if self._user_closed:
                    raise ClientClosed("client was closed")
            last_error: Optional[BaseException] = None
            for retry in range(attempt - 1, self.retries + 1):
                time.sleep(self._backoff_delay(retry))
                try:
                    sock = self._dial()
                except OSError as exc:
                    last_error = exc
                    continue
                with self._cond:
                    old = self._sock
                    self._sock = sock
                    self._gen += 1
                    gen = self._gen
                    self._closed = False
                    self._responses.clear()  # stale seqs die with the
                    # old connection; nobody awaits them any more
                try:
                    old.close()
                except OSError:
                    pass
                self._reader = self._start_reader(sock, gen)
                try:
                    self._handshake()
                except (ClientClosed, RemoteError, OSError) as exc:
                    last_error = exc
                    with self._cond:
                        if gen == self._gen:
                            self._closed = True
                    continue
                return
            raise ClientClosed(
                "reconnect to %s:%d failed after %d attempts"
                % (self.host, self.port, self.retries + 1),
                attempts=self.retries + 1) from last_error

    def _handshake(self) -> None:
        """Replay initialize + resume on a fresh connection (single
        attempt each; the caller owns retries)."""
        if self._initialized_version is not None:
            seq = self._send("initialize",
                             {"protocolVersion":
                              self._initialized_version,
                              "client": "repro.client"})
            response = self._await(seq, "initialize", self.timeout)
            if not response.success:
                raise RemoteError("initialize", response.error or {})
        self.resume_errors = {}
        for session_id in list(self._sessions):
            seq = self._send("resume", {"sessionId": session_id})
            response = self._await(seq, "resume", self.timeout)
            if not response.success:
                error = RemoteError("resume", response.error or {})
                self.resume_errors[session_id] = error
                # the id no longer resolves server-side; stop trying
                # to resume it on every future reconnect
                if session_id in self._sessions:
                    self._sessions.remove(session_id)

    def _heartbeat_loop(self) -> None:
        interval = self.heartbeat
        while not self._stop.wait(interval):
            if self._user_closed:
                break
            try:
                self.request("ping", timeout=min(self.timeout,
                                                 max(interval, 1.0)))
            except (ClientClosed, RemoteError):
                # request() already spent the retry budget; the next
                # beat (or the next user request) tries again
                pass

    # -- events ------------------------------------------------------------

    def pop_events(self, name: Optional[str] = None
                   ) -> List[Dict[str, Any]]:
        """Drain (and return the bodies of) buffered events, optionally
        filtered by name; non-matching events stay queued."""
        with self._cond:
            if name is None:
                drained = [event.body for event in self._events]
                self._events = []
                return drained
            matching = [event.body for event in self._events
                        if event.event == name]
            self._events = [event for event in self._events
                            if event.event != name]
            return matching

    def wait_event(self, name: str, timeout: Optional[float] = None,
                   predicate: Optional[Callable[[Dict[str, Any]], bool]]
                   = None) -> Dict[str, Any]:
        """Block until an event named *name* (matching *predicate*, if
        given) arrives; returns its body and removes it from the queue."""
        timeout = self.timeout if timeout is None else timeout

        def find() -> Optional[int]:
            for index, event in enumerate(self._events):
                if event.event == name and (predicate is None
                                            or predicate(event.body)):
                    return index
            return None

        with self._cond:
            result: List[Optional[int]] = [None]

            def ready() -> bool:
                result[0] = find()
                return result[0] is not None or self._closed

            self._cond.wait_for(ready, timeout=timeout)
            if result[0] is None:
                raise ClientClosed(
                    "no %r event within %.1fs%s"
                    % (name, timeout,
                       " (connection closed)" if self._closed else ""),
                    event=name, timeout=timeout)
            return self._events.pop(result[0]).body

    # -- the command surface ----------------------------------------------

    def initialize(self, version: int = PROTOCOL_VERSION
                   ) -> Dict[str, Any]:
        body = self.request("initialize", {"protocolVersion": version,
                                           "client": "repro.client"})
        self._initialized_version = version
        return body

    def launch(self, source: str, **options: Any) -> str:
        arguments: Dict[str, Any] = {"source": source}
        arguments.update(options)
        session_id = self.request("launch", arguments)["sessionId"]
        if session_id not in self._sessions:
            self._sessions.append(session_id)
        return session_id

    def data_breakpoint_info(self, session_id: str, name: str,
                             func: Optional[str] = None) -> Dict[str, Any]:
        arguments = {"sessionId": session_id, "name": name}
        if func is not None:
            arguments["func"] = func
        return self.request("dataBreakpointInfo", arguments)

    def set_data_breakpoints(self, session_id: str,
                             breakpoints: List[Dict[str, Any]]
                             ) -> List[Dict[str, Any]]:
        return self.request("setDataBreakpoints",
                            {"sessionId": session_id,
                             "breakpoints": breakpoints})["breakpoints"]

    def cont(self, session_id: str,
             quota: Optional[int] = None) -> Dict[str, Any]:
        arguments: Dict[str, Any] = {"sessionId": session_id}
        if quota is not None:
            arguments["quota"] = quota
        return self.request("continue", arguments)

    def step(self, session_id: str, count: int = 1) -> Dict[str, Any]:
        return self.request("step", {"sessionId": session_id,
                                     "count": count})

    def step_back(self, session_id: str,
                  count: int = 1) -> Dict[str, Any]:
        return self.request("stepBack", {"sessionId": session_id,
                                         "count": count})

    def reverse_continue(self, session_id: str) -> Dict[str, Any]:
        return self.request("reverseContinue",
                            {"sessionId": session_id})

    def last_write(self, session_id: str, expression: str,
                   func: Optional[str] = None) -> Dict[str, Any]:
        arguments = {"sessionId": session_id, "expression": expression}
        if func is not None:
            arguments["func"] = func
        return self.request("lastWrite", arguments)

    def evaluate(self, session_id: str, expression: str,
                 func: Optional[str] = None) -> Dict[str, Any]:
        arguments = {"sessionId": session_id, "expression": expression}
        if func is not None:
            arguments["func"] = func
        return self.request("evaluate", arguments)

    def sessions(self) -> List[Dict[str, Any]]:
        return self.request("threads")["sessions"]

    def ping(self, echo: Any = None) -> Dict[str, Any]:
        return self.request("ping", {"echo": echo})

    def resume(self, session_id: str) -> Dict[str, Any]:
        """Re-attach to (and, if hibernated, thaw) a session by id."""
        body = self.request("resume", {"sessionId": session_id})
        if session_id not in self._sessions:
            self._sessions.append(session_id)
        return body

    def hibernate(self, session_id: str) -> Dict[str, Any]:
        """Freeze a session to the server's hibernation store."""
        return self.request("hibernate", {"sessionId": session_id})

    def disconnect(self, session_id: str) -> bool:
        body = self.request("disconnect", {"sessionId": session_id})
        if session_id in self._sessions:
            self._sessions.remove(session_id)
        return body["destroyed"]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._user_closed = True
        self._stop.set()
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader.join(timeout=2.0)
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=2.0)

    def __enter__(self) -> "DebugClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
