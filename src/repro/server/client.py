"""Blocking client for the debug server.

:class:`DebugClient` owns one connection.  A background reader thread
demultiplexes the stream: responses complete the (single outstanding)
blocking :meth:`request`, events accumulate in an ordered queue that
:meth:`wait_event` / :meth:`pop_events` drain.  A failed request
raises :class:`RemoteError` carrying the server's structured error
payload — class name, message and the original
:class:`~repro.errors.ReproError` context dict — so remote failures
are as inspectable as local ones.

.. code-block:: python

    with DebugClient(port=server.port) as client:
        client.initialize()
        sid = client.launch(SOURCE)
        info = client.data_breakpoint_info(sid, "total")
        client.set_data_breakpoints(sid, [{"dataId": info["dataId"]}])
        stop = client.cont(sid)              # -> reason "watch"
        hit = client.wait_event("monitorHit")
        client.disconnect(sid)
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ProtocolError, ReproError
from repro.server.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                   Event, Request, Response, encode,
                                   read_frame, decode)

__all__ = ["DebugClient", "RemoteError", "ClientClosed"]


class RemoteError(ReproError):
    """A request failed server-side; carries the structured payload."""

    def __init__(self, command: str, payload: Dict[str, Any]):
        message = payload.get("message", "request failed")
        super().__init__("%s: %s" % (command, message),
                         **(payload.get("context") or {}))
        self.command = command
        self.payload = payload
        #: the server-side exception class name (e.g. "RegionCreateError")
        self.remote_error = payload.get("error")


class ClientClosed(ReproError):
    """The connection died while a request was outstanding."""


class DebugClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._seq = 0
        self._send_lock = threading.Lock()
        self._cond = threading.Condition()
        self._responses: Dict[int, Response] = {}
        self._events: List[Event] = []
        self._closed = False
        self._reader = threading.Thread(target=self._read_loop,
                                        name="repro-client-reader",
                                        daemon=True)
        self._reader.start()

    # -- plumbing ----------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                payload = read_frame(self._sock, self.max_frame_bytes)
                if payload is None:
                    break
                message = decode(payload)
                with self._cond:
                    if isinstance(message, Response):
                        self._responses[message.request_seq] = message
                    elif isinstance(message, Event):
                        self._events.append(message)
                    self._cond.notify_all()
        except (ProtocolError, OSError):
            pass
        finally:
            with self._cond:
                self._closed = True
                self._cond.notify_all()

    def request(self, command: str,
                arguments: Optional[Dict[str, Any]] = None,
                timeout: Optional[float] = None) -> Dict[str, Any]:
        """Send one request and block for its response body.

        Raises :class:`RemoteError` when the server reports failure and
        :class:`ClientClosed` when the connection dies first.
        """
        timeout = self.timeout if timeout is None else timeout
        with self._send_lock:
            self._seq += 1
            seq = self._seq
            self._sock.sendall(encode(Request(
                seq=seq, command=command, arguments=arguments or {})))
        with self._cond:
            ok = self._cond.wait_for(
                lambda: seq in self._responses or self._closed,
                timeout=timeout)
            if seq not in self._responses:
                if self._closed:
                    raise ClientClosed(
                        "connection closed awaiting %r" % command,
                        command=command)
                if not ok:
                    raise ClientClosed("timed out awaiting %r" % command,
                                       command=command, timeout=timeout)
            response = self._responses.pop(seq)
        if not response.success:
            raise RemoteError(command, response.error or {})
        return response.body

    # -- events ------------------------------------------------------------

    def pop_events(self, name: Optional[str] = None
                   ) -> List[Dict[str, Any]]:
        """Drain (and return the bodies of) buffered events, optionally
        filtered by name; non-matching events stay queued."""
        with self._cond:
            if name is None:
                drained = [event.body for event in self._events]
                self._events = []
                return drained
            matching = [event.body for event in self._events
                        if event.event == name]
            self._events = [event for event in self._events
                            if event.event != name]
            return matching

    def wait_event(self, name: str, timeout: Optional[float] = None,
                   predicate: Optional[Callable[[Dict[str, Any]], bool]]
                   = None) -> Dict[str, Any]:
        """Block until an event named *name* (matching *predicate*, if
        given) arrives; returns its body and removes it from the queue."""
        timeout = self.timeout if timeout is None else timeout

        def find() -> Optional[int]:
            for index, event in enumerate(self._events):
                if event.event == name and (predicate is None
                                            or predicate(event.body)):
                    return index
            return None

        with self._cond:
            result: List[Optional[int]] = [None]

            def ready() -> bool:
                result[0] = find()
                return result[0] is not None or self._closed

            self._cond.wait_for(ready, timeout=timeout)
            if result[0] is None:
                raise ClientClosed(
                    "no %r event within %.1fs%s"
                    % (name, timeout,
                       " (connection closed)" if self._closed else ""),
                    event=name, timeout=timeout)
            return self._events.pop(result[0]).body

    # -- the command surface ----------------------------------------------

    def initialize(self, version: int = PROTOCOL_VERSION
                   ) -> Dict[str, Any]:
        return self.request("initialize", {"protocolVersion": version,
                                           "client": "repro.client"})

    def launch(self, source: str, **options: Any) -> str:
        arguments: Dict[str, Any] = {"source": source}
        arguments.update(options)
        return self.request("launch", arguments)["sessionId"]

    def data_breakpoint_info(self, session_id: str, name: str,
                             func: Optional[str] = None) -> Dict[str, Any]:
        arguments = {"sessionId": session_id, "name": name}
        if func is not None:
            arguments["func"] = func
        return self.request("dataBreakpointInfo", arguments)

    def set_data_breakpoints(self, session_id: str,
                             breakpoints: List[Dict[str, Any]]
                             ) -> List[Dict[str, Any]]:
        return self.request("setDataBreakpoints",
                            {"sessionId": session_id,
                             "breakpoints": breakpoints})["breakpoints"]

    def cont(self, session_id: str,
             quota: Optional[int] = None) -> Dict[str, Any]:
        arguments: Dict[str, Any] = {"sessionId": session_id}
        if quota is not None:
            arguments["quota"] = quota
        return self.request("continue", arguments)

    def step(self, session_id: str, count: int = 1) -> Dict[str, Any]:
        return self.request("step", {"sessionId": session_id,
                                     "count": count})

    def step_back(self, session_id: str,
                  count: int = 1) -> Dict[str, Any]:
        return self.request("stepBack", {"sessionId": session_id,
                                         "count": count})

    def reverse_continue(self, session_id: str) -> Dict[str, Any]:
        return self.request("reverseContinue",
                            {"sessionId": session_id})

    def last_write(self, session_id: str, expression: str,
                   func: Optional[str] = None) -> Dict[str, Any]:
        arguments = {"sessionId": session_id, "expression": expression}
        if func is not None:
            arguments["func"] = func
        return self.request("lastWrite", arguments)

    def evaluate(self, session_id: str, expression: str,
                 func: Optional[str] = None) -> Dict[str, Any]:
        arguments = {"sessionId": session_id, "expression": expression}
        if func is not None:
            arguments["func"] = func
        return self.request("evaluate", arguments)

    def sessions(self) -> List[Dict[str, Any]]:
        return self.request("threads")["sessions"]

    def disconnect(self, session_id: str) -> bool:
        return self.request("disconnect",
                            {"sessionId": session_id})["destroyed"]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader.join(timeout=2.0)

    def __enter__(self) -> "DebugClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
