"""The multi-session debug server: TCP transport + connection loop.

:class:`DebugServer` listens on a TCP socket, spawns one thread per
connection, and feeds frames through a
:class:`~repro.server.handlers.RequestRouter` backed by a shared
:class:`~repro.server.manager.SessionManager`.  Responses and streamed
events share the connection's socket behind a write lock, so a
``monitorHit`` fired mid-``continue`` interleaves cleanly with the
eventual response frame.

Failure containment, end to end:

* a malformed frame body gets an error *response* and the connection
  keeps serving (frame boundaries are still synchronised);
* an oversized or truncated frame drops only that connection — the
  length prefix can no longer be trusted;
* any error inside a handler (including injected
  :class:`~repro.errors.MrsTransactionError` faults) is serialised as
  a structured error payload and the server keeps serving every other
  session;
* :meth:`DebugServer.close` performs a graceful shutdown: stop
  accepting, drain in-flight executions, evict every session with
  reason ``"shutdown"``, then close the sockets.

When ``idle_timeout`` is configured a sweeper thread evicts sessions
that have not been touched within the window, emitting a
``sessionEvicted`` event to their subscribers first.

Crash safety: with ``hibernate_dir`` configured the server owns a
:class:`~repro.server.hibernate.HibernationStore`.  Startup scans the
directory and adopts sessions frozen by a previous process — so a
``kill -9`` mid-flight loses at most the sessions that were live in
RAM, and everything already hibernated resumes under its old id.  A
dropped connection (client crash, network partition, liveness-timeout
expiry) *hibernates* its sessions instead of destroying them, so the
client can reconnect and ``resume``; only an explicit ``disconnect``
request destroys.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.server.handlers import RequestRouter, ServerConfig
from repro.server.manager import SessionManager
from repro.server.protocol import (Event, Request, Response, decode,
                                   encode, error_payload, read_frame)

__all__ = ["DebugServer"]


class _Connection:
    """One client connection: a request loop plus an event sink."""

    def __init__(self, server: "DebugServer", sock: socket.socket,
                 peer: Tuple[str, int]):
        self.server = server
        self.sock = sock
        self.peer = peer
        self._write_lock = threading.Lock()
        self._seq_lock = threading.Lock()
        self._seq = 0
        #: sessions launched over this connection (torn down on close)
        self.sessions: List[str] = []
        self.closed = False

    def next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def send(self, message) -> None:
        payload = encode(message)
        with self._write_lock:
            if self.closed:
                return
            try:
                self.sock.sendall(payload)
            except OSError:
                self.closed = True

    def emit(self, event: str, body: Dict[str, Any]) -> None:
        if not self.closed:
            self.send(Event(seq=self.next_seq(), event=event, body=body))

    def serve(self) -> None:
        router = self.server.router
        try:
            while not self.closed and self.server.running:
                try:
                    payload = read_frame(
                        self.sock, self.server.config.max_frame_bytes)
                except ProtocolError as exc:
                    # framing is lost: report once, then drop the link
                    self.send(Response(
                        seq=self.next_seq(), request_seq=0,
                        command="", success=False,
                        error=error_payload(exc)))
                    break
                except OSError:
                    break
                if payload is None:
                    break
                try:
                    message = decode(payload)
                    if not isinstance(message, Request):
                        raise ProtocolError(
                            "clients may only send requests",
                            reason="direction")
                except ProtocolError as exc:
                    # the frame boundary held: answer and keep serving
                    self.send(Response(
                        seq=self.next_seq(), request_seq=0,
                        command="", success=False,
                        error=error_payload(exc)))
                    continue
                response = router.dispatch(message, self.emit,
                                           self.next_seq)
                if message.command in ("launch", "resume") and \
                        response.success:
                    session_id = response.body["sessionId"]
                    if session_id not in self.sessions:
                        self.sessions.append(session_id)
                self.send(response)
        finally:
            self.close()

    def close(self) -> None:
        self.closed = True
        for session_id in self.sessions:
            # a dead connection is not a disconnect request: with a
            # hibernation store the session freezes (resumable after
            # reconnect); a busy session stays live for the idle
            # sweeper.  Only without a store does a drop still destroy.
            manager = self.server.manager
            if manager.store is not None:
                try:
                    manager.hibernate(session_id, reason="connection")
                except Exception:
                    pass
            else:
                manager.destroy(session_id, reason="disconnect")
        self.sessions = []
        try:
            self.sock.close()
        except OSError:
            pass
        self.server._forget(self)


class DebugServer:
    """A TCP debug server hosting many concurrent sessions."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 config: Optional[ServerConfig] = None):
        self.config = config if config is not None else ServerConfig()
        self.store = None
        if self.config.hibernate_dir is not None:
            from repro.server.hibernate import HibernationStore
            self.store = HibernationStore(
                self.config.hibernate_dir,
                faults=self.config.hibernate_faults)
        self.trace_store = None
        if self.config.trace_store is not None:
            from repro.store import TraceStore
            self.trace_store = TraceStore(self.config.trace_store)
        self.manager = SessionManager(
            max_sessions=self.config.max_sessions,
            idle_timeout=self.config.idle_timeout,
            workers=self.config.workers,
            store=self.store,
            trace_store=self.trace_store)
        #: sessions frozen by a previous process, resumable by id
        self.adopted = self.manager.adopt_frozen()
        self.router = RequestRouter(self.manager, self.config)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self.running = True
        self._conn_lock = threading.Lock()
        self._connections: List[_Connection] = []
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._sweeper: Optional[threading.Thread] = None
        self._stop = threading.Event()
        if self.config.idle_timeout is not None:
            self._sweeper = threading.Thread(target=self._sweep,
                                             name="repro-evict",
                                             daemon=True)
            self._sweeper.start()

    @property
    def port(self) -> int:
        return self.address[1]

    # -- accept loop -------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close` (CLI entry point)."""
        while self.running:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                break
            self._spawn(sock, peer)

    def start(self) -> "DebugServer":
        """Run the accept loop on a background thread (tests, bench)."""
        self._accept_thread = threading.Thread(target=self.serve_forever,
                                               name="repro-accept",
                                               daemon=True)
        self._accept_thread.start()
        return self

    def _spawn(self, sock: socket.socket, peer) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.config.liveness_timeout is not None:
            # a connection silent past the deadline (no requests, no
            # heartbeat pings) times out of its blocking read; the
            # close path then hibernates its sessions
            sock.settimeout(self.config.liveness_timeout)
        connection = _Connection(self, sock, peer)
        with self._conn_lock:
            self._connections.append(connection)
        thread = threading.Thread(target=connection.serve,
                                  name="repro-conn-%s:%d" % peer,
                                  daemon=True)
        self._threads.append(thread)
        thread.start()

    def _forget(self, connection: _Connection) -> None:
        with self._conn_lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def _sweep(self) -> None:
        interval = max(0.05, min(self.config.idle_timeout / 2.0, 1.0))
        while not self._stop.wait(interval):
            self.manager.evict_idle()

    # -- shutdown ----------------------------------------------------------

    def close(self, drain: bool = True,
              timeout: Optional[float] = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight requests,
        evict all sessions, then close every socket."""
        if not self.running:
            return
        self.running = False
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self.manager.shutdown(drain=drain, timeout=timeout)
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self.trace_store is not None:
            self.trace_store.close()

    def __enter__(self) -> "DebugServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
