"""Multi-session debug server: a DAP-style wire protocol for data
breakpoints.

The paper's §2 frames the Monitored Region Service as a facility a
*debugger* consumes; this package puts that debugger behind a socket,
the way modern stacks expose it through the Debug Adapter Protocol's
``dataBreakpointInfo`` / ``setDataBreakpoints`` pair:

* :mod:`repro.server.protocol` — length-prefixed JSON framing, typed
  request/response/event messages, versioned capability negotiation,
  structured error payloads;
* :mod:`repro.server.manager` — many concurrent sessions with
  capacity limits, a bounded execution pool, per-session locks, idle
  eviction and graceful draining shutdown;
* :mod:`repro.server.handlers` — the command surface (``launch``,
  ``dataBreakpointInfo``, ``setDataBreakpoints``, ``continue``,
  ``step``, ``evaluate``, ``disconnect``) and the streamed events
  (``monitorHit``, ``stopped``, ``output``, ``sessionEvicted``);
* :mod:`repro.server.server` — the TCP transport;
* :mod:`repro.server.hibernate` — crash-safe frozen-session store:
  idle sessions freeze to disk (atomic, fsync'd, digest-verified) and
  thaw on demand — including after a full server crash/restart;
* :mod:`repro.server.client` — the resilient blocking client library
  (timeouts, backoff + retry budget, reconnect-and-resume, heartbeat)
  used by the tests, the bench harness and ``repro connect``.
"""

from repro.server.client import (ClientClosed, DebugClient, RemoteError,
                                 RequestTimeout)
from repro.server.handlers import RequestRouter, ServerConfig
from repro.server.hibernate import FrozenSession, HibernationStore
from repro.server.manager import ManagedSession, SessionManager
from repro.server.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                   SUPPORTED_VERSIONS, Event, Request,
                                   Response, error_payload)
from repro.server.server import DebugServer

__all__ = ["DebugServer", "DebugClient", "RemoteError", "ClientClosed",
           "RequestTimeout", "ServerConfig", "RequestRouter",
           "SessionManager", "ManagedSession", "HibernationStore",
           "FrozenSession", "Request", "Response", "Event",
           "PROTOCOL_VERSION", "SUPPORTED_VERSIONS", "MAX_FRAME_BYTES",
           "error_payload"]
