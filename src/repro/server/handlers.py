"""Request handlers: the debugger surface exposed over the wire.

Each handler takes ``(manager, config, arguments, emit)`` and returns
the response body dict; :class:`RequestRouter.dispatch` wraps the call
in the protocol envelope and maps any :class:`~repro.errors.ReproError`
to a structured error payload (so an injected
:class:`~repro.errors.MrsTransactionError` inside one session reaches
that client as data instead of killing the server).

Commands
--------

``initialize``
    Version negotiation + capability advertisement.
``launch``
    Compile/instrument mini-C source into a fresh session; accepts a
    fault-plan spec so failure paths can be exercised server-side.
``dataBreakpointInfo`` / ``setDataBreakpoints``
    The DAP data-breakpoint pair: resolve a source name to a
    ``dataId``, then declaratively replace the active breakpoint set.
``continue`` / ``step``
    Run the debuggee under the per-request execution quota
    (PR 1's watchdog budgets re-used as a server resource limit);
    quota exhaustion is a resumable ``stopped`` reason, not an error.
``stepBack`` / ``reverseContinue`` / ``lastWrite``
    Time travel (protocol v2, ``supportsStepBack``): sessions launched
    with ``record`` replay backwards through recorded history; a
    session launched without recording gets a structured
    ``reason="not_recording"`` error instead.
``evaluate``
    Read a watchable expression at the current stop.
``resume`` / ``hibernate`` / ``ping``
    Fault tolerance (protocol v3, ``supportsHibernation``): ``resume``
    re-attaches a client to a session by id — transparently thawing it
    from the hibernation store if a previous server process froze it —
    ``hibernate`` freezes a session to disk on demand, and ``ping`` is
    the client heartbeat the server's liveness timeout watches for.
``disconnect``
    Tear the session down (and discard its frozen file, if any).

Events streamed while a session runs: ``output`` (new debuggee
output), ``monitorHit`` (every §2 notification, with the resolved
symbol and pc), ``stopped`` (run finished with a reason),
``sessionEvicted`` (destruction / shutdown, emitted by the manager),
and the hibernation pair ``sessionHibernated`` / ``sessionResumed``.
"""

from __future__ import annotations

import re
import time
from typing import Any, Callable, Dict, List, Optional

from repro.debugger.debugger import Debugger, DebuggerError
from repro.errors import (PredicateCompileError, ProtocolError,
                          ReproError, ServerError)
from repro.watchpoints.predicate import condition_to_expr
from repro.faults import FaultPlan
from repro.isa.instructions import to_signed
from repro.machine.cpu import SimulationLimit
from repro.server.manager import ManagedSession, SessionManager
from repro.server.protocol import (PROTOCOL_VERSION, SUPPORTED_VERSIONS,
                                   Request, Response, error_payload)

__all__ = ["ServerConfig", "RequestRouter", "fault_plan_from_spec",
           "invalid_condition", "parse_condition",
           "supported_access_types"]

#: default per-request execution quota (simulated instructions)
DEFAULT_QUOTA = 2_000_000

_COND_RE = re.compile(r"^\s*(==|!=|<=|>=|<|>)\s*(-?\d+)\s*$")
_DATA_ID_RE = re.compile(r"^w:(?P<name>[^@]+)@(?P<func>.*)$")


class ServerConfig:
    """Tunables threaded from the CLI down to handlers and manager."""

    def __init__(self, max_sessions: int = 16,
                 idle_timeout: Optional[float] = None,
                 workers: int = 8,
                 quota_instructions: int = DEFAULT_QUOTA,
                 max_frame_bytes: Optional[int] = None,
                 hibernate_dir: Optional[str] = None,
                 hibernate_faults=None,
                 liveness_timeout: Optional[float] = None,
                 trace_store: Optional[str] = None):
        from repro.server.protocol import MAX_FRAME_BYTES
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self.workers = workers
        self.quota_instructions = quota_instructions
        self.max_frame_bytes = (MAX_FRAME_BYTES if max_frame_bytes is None
                                else max_frame_bytes)
        #: directory for frozen sessions; None disables hibernation
        self.hibernate_dir = hibernate_dir
        #: optional FaultPlan armed on the hibernation store
        #: (hibernate.write / hibernate.load injection points)
        self.hibernate_faults = hibernate_faults
        #: drop connections silent for this long (the client heartbeat
        #: keeps a healthy-but-idle connection alive with ``ping``)
        self.liveness_timeout = liveness_timeout
        #: persistent :mod:`repro.store` database path; recordings are
        #: archived there when a session hibernates or disconnects
        self.trace_store = trace_store

    def capabilities(self,
                     version: int = PROTOCOL_VERSION) -> Dict[str, Any]:
        caps = {
            "supportsDataBreakpoints": True,
            "supportsConditionalDataBreakpoints": True,
            "supportsReadMonitoring": True,
            "supportsFaultInjection": True,
            "supportsStepping": True,
            "supportsEvaluate": True,
            "executionQuota": self.quota_instructions,
            "maxFrameBytes": self.max_frame_bytes,
            "maxSessions": self.max_sessions,
        }
        if version >= 2:
            # time travel shipped in protocol v2; a v1 client never
            # sees the capability, so it never sends reverse requests
            caps["supportsStepBack"] = True
        if version >= 3:
            # fault tolerance shipped in protocol v3: resume/ping are
            # always served; hibernation needs a configured store
            caps["supportsHibernation"] = self.hibernate_dir is not None
            caps["supportsResume"] = True
            caps["supportsPing"] = True
            caps["supportsRetryAfter"] = True
        if version >= 4:
            # predicate watchpoints shipped in protocol v4: the DAP
            # `condition` field takes full predicate expressions, and
            # `when` selects transition-edge firing
            from repro.watchpoints import EDGES, SPECIALS
            caps["supportsPredicateConditions"] = True
            caps["supportsTransitionDataBreakpoints"] = True
            caps["predicateSpecials"] = ["$" + name for name in SPECIALS]
            caps["transitionEdges"] = list(EDGES)
        return caps


def fault_plan_from_spec(spec: Dict[str, Any]) -> FaultPlan:
    """Build a :class:`FaultPlan` from its JSON representation.

    ``{"schedule": {"service.create_region": [0]}, "seed": 7,
    "rate": 0.1, "maxFaults": 3, "maxInstructions": 100000, ...}``
    """
    schedule = None
    if spec.get("schedule"):
        schedule = {point: (True if occurrences is True
                            else set(occurrences))
                    for point, occurrences in spec["schedule"].items()}
    return FaultPlan(schedule=schedule,
                     seed=spec.get("seed"),
                     rate=spec.get("rate", 0.0),
                     points=spec.get("points"),
                     max_faults=spec.get("maxFaults"),
                     max_instructions=spec.get("maxInstructions"),
                     max_cycles=spec.get("maxCycles"),
                     max_traps=spec.get("maxTraps"))


def parse_condition(text: str) -> Callable[[int], bool]:
    """Compile a breakpoint condition like ``"== 42"`` or ``"> 10"``
    into a predicate over the newly written value."""
    match = _COND_RE.match(text)
    if match is None:
        raise ProtocolError("unsupported condition %r (use OP INT with "
                            "OP in ==, !=, <, <=, >, >=)" % text,
                            field="condition", reason="condition")
    op, literal = match.group(1), int(match.group(2))
    return {
        "==": lambda value: value == literal,
        "!=": lambda value: value != literal,
        "<": lambda value: value < literal,
        "<=": lambda value: value <= literal,
        ">": lambda value: value > literal,
        ">=": lambda value: value >= literal,
    }[op]


def invalid_condition(text: str, exc) -> ProtocolError:
    """Map a :class:`~repro.errors.PredicateCompileError` onto the wire
    error shape: ``reason="invalid_condition"`` plus the offending
    token, raised at ``setDataBreakpoints`` time — a bad predicate
    must never wait for its first hit to fail."""
    return ProtocolError(
        "invalid condition %r: %s" % (text, exc),
        field="condition", reason="invalid_condition",
        condition=text, token=getattr(exc, "token", None))


def supported_access_types(debugger: Debugger) -> List[str]:
    strategy = debugger.session.inst.strategy
    if getattr(strategy, "monitor_reads", False):
        return ["read", "write", "readWrite"]
    return ["write"]


def _data_id(name: str, func: Optional[str]) -> str:
    return "w:%s@%s" % (name, func or "")


def _split_data_id(data_id: str):
    match = _DATA_ID_RE.match(data_id)
    if match is None:
        raise ProtocolError("malformed dataId %r" % (data_id,),
                            field="dataId", reason="data_id")
    return match.group("name"), (match.group("func") or None)


def _require_arg(arguments: Dict[str, Any], name: str) -> Any:
    if name not in arguments:
        raise ProtocolError("request is missing argument %r" % name,
                            field=name, reason="missing_argument")
    return arguments[name]


class RequestRouter:
    """Maps protocol commands onto a :class:`SessionManager`."""

    def __init__(self, manager: SessionManager, config: ServerConfig):
        self.manager = manager
        self.config = config
        # a thawed session needs its monitorHit stream re-wired before
        # it serves its first request (emitters resubscribe via resume)
        manager.on_thaw = self._wire_monitor_stream
        self._handlers: Dict[str, Callable] = {
            "initialize": self._initialize,
            "launch": self._launch,
            "dataBreakpointInfo": self._data_breakpoint_info,
            "setDataBreakpoints": self._set_data_breakpoints,
            "continue": self._continue,
            "step": self._step,
            "stepBack": self._step_back,
            "reverseContinue": self._reverse_continue,
            "lastWrite": self._last_write,
            "evaluate": self._evaluate,
            "threads": self._threads,
            "resume": self._resume,
            "hibernate": self._hibernate,
            "ping": self._ping,
            "disconnect": self._disconnect,
        }

    def dispatch(self, request: Request, emit, seq: Callable[[], int]
                 ) -> Response:
        """Run one request; never raises — failures become structured
        error responses."""
        handler = self._handlers.get(request.command)
        try:
            if handler is None:
                raise ServerError("unknown command %r" % request.command,
                                  reason="unknown_command",
                                  command=request.command)
            body = handler(request.arguments, emit)
            return Response(seq=seq(), request_seq=request.seq,
                            command=request.command, success=True,
                            body=body or {})
        except (ReproError, DebuggerError) as exc:
            return Response(seq=seq(), request_seq=request.seq,
                            command=request.command, success=False,
                            error=error_payload(exc))
        except Exception as exc:  # a handler bug must not kill the server
            payload = error_payload(exc)
            payload["internal"] = True
            return Response(seq=seq(), request_seq=request.seq,
                            command=request.command, success=False,
                            error=payload)

    # -- handlers ----------------------------------------------------------

    def _initialize(self, arguments: Dict[str, Any], emit) -> Dict[str, Any]:
        version = arguments.get("protocolVersion", PROTOCOL_VERSION)
        if version not in SUPPORTED_VERSIONS:
            raise ServerError(
                "unsupported protocol version %r" % (version,),
                reason="version",
                requested=version, supported=list(SUPPORTED_VERSIONS))
        return {"protocolVersion": version,
                "server": "repro-debug-server",
                "capabilities": self.config.capabilities(version)}

    def _launch(self, arguments: Dict[str, Any], emit) -> Dict[str, Any]:
        source = _require_arg(arguments, "source")
        lang = arguments.get("lang", "C")
        strategy = arguments.get("strategy", "BitmapInlineRegisters")
        optimize = arguments.get("optimize", "full")
        monitor_reads = bool(arguments.get("monitorReads", False))
        faults_spec = arguments.get("faults")
        record_spec = arguments.get("record", False)

        def factory() -> Debugger:
            if faults_spec:
                from repro.instrument.plan import OptimizationPlan
                from repro.minic.codegen import compile_source
                from repro.optimizer.pipeline import build_plan
                from repro.session import DebugSession
                asm = compile_source(source, lang=lang)
                plan: Optional[OptimizationPlan] = None
                if optimize and optimize != "none":
                    _stmts, plan = build_plan(asm, mode=optimize)
                session = DebugSession.from_asm(
                    asm, strategy=strategy, plan=plan,
                    monitor_reads=monitor_reads,
                    faults=fault_plan_from_spec(faults_spec))
                return Debugger(session)
            return Debugger.for_source(
                source, lang=lang, strategy=strategy,
                optimize=None if optimize == "none" else optimize,
                monitor_reads=monitor_reads)

        managed = self.manager.create(factory)
        managed.subscribe(emit)
        # the identity hibernation rebuilds the debuggee from; kept
        # even for fault-plan sessions so freeze can refuse them with
        # a reason instead of guessing
        managed.program_spec = {
            "source": source, "lang": lang, "strategy": strategy,
            "optimize": optimize if optimize != "none" else None,
            "monitorReads": monitor_reads,
            "faults": bool(faults_spec)}
        workload = arguments.get("workload")
        if workload:
            # names the run in the persistent trace store's analytics
            managed.program_spec["workload"] = workload
        self._wire_monitor_stream(managed)
        if record_spec:
            options = record_spec if isinstance(record_spec, dict) else {}
            managed.debugger.record(
                stride=options.get("stride"),
                max_keyframes=options.get("maxKeyframes"),
                max_trace=options.get("maxTrace"))
        return {"sessionId": managed.id,
                "strategy": strategy,
                "recording": managed.debugger.recording,
                "quota": self.config.quota_instructions}

    def _wire_monitor_stream(self, managed: ManagedSession) -> None:
        """Stream every §2 notification as a ``monitorHit`` event,
        annotated with the watchpoint that covers the address."""
        debugger = managed.debugger

        def on_hit(addr: int, size: int, is_read: bool) -> None:
            body: Dict[str, Any] = {"address": addr, "size": size,
                                    "isRead": is_read,
                                    "pc": debugger.cpu.pc}
            for data_id, watchpoint in managed.breakpoints.items():
                region = watchpoint.region
                if addr < region.end and region.start < addr + size:
                    body["dataId"] = data_id
                    body["symbol"] = watchpoint.name
                    # the write has landed by notification time: read
                    # the fresh word, not the last condition-recorded hit
                    body["value"] = to_signed(
                        debugger.cpu.mem.read_word(addr & ~3))
                    break
            managed.emit("monitorHit", body)

        debugger.mrs.add_callback(on_hit)

    def _data_breakpoint_info(self, arguments: Dict[str, Any], emit
                              ) -> Dict[str, Any]:
        session_id = _require_arg(arguments, "sessionId")
        name = _require_arg(arguments, "name")
        func = arguments.get("func")

        def fn(managed: ManagedSession) -> Dict[str, Any]:
            try:
                entry, addr, size = managed.debugger.resolve(name, func)
            except DebuggerError as exc:
                # DAP: a null dataId means "not watchable", with a
                # human-readable description — not a request failure
                return {"dataId": None, "description": str(exc)}
            strategy = managed.debugger.session.inst.strategy
            # DAP accessTypes: a read-monitoring session serves all
            # three kinds; without read monitoring only writes are
            # observable, so only "write" is offered
            access = (["read", "write", "readWrite"]
                      if getattr(strategy, "monitor_reads", False)
                      else ["write"])
            return {"dataId": _data_id(name, func),
                    "description": "%s (%s, %d bytes at 0x%x)"
                                   % (name, entry.kind, size, addr),
                    "accessTypes": access,
                    "address": addr, "size": size,
                    "canPersist": False}

        return self.manager.with_session(session_id, fn)

    def _set_data_breakpoints(self, arguments: Dict[str, Any], emit
                              ) -> Dict[str, Any]:
        session_id = _require_arg(arguments, "sessionId")
        specs = _require_arg(arguments, "breakpoints")
        if not isinstance(specs, list):
            raise ProtocolError("breakpoints must be a list",
                                field="breakpoints", reason="type")

        def fn(managed: ManagedSession) -> Dict[str, Any]:
            debugger = managed.debugger
            # DAP replace semantics: clear the previous set first
            for watchpoint in list(managed.breakpoints.values()):
                debugger.unwatch(watchpoint)
            managed.breakpoints.clear()
            managed.breakpoint_specs.clear()
            results: List[Dict[str, Any]] = []
            for spec in specs:
                data_id = spec.get("dataId")
                try:
                    if not data_id:
                        raise ProtocolError("breakpoint without dataId",
                                            field="dataId",
                                            reason="missing")
                    name, func = _split_data_id(data_id)
                    access = spec.get("accessType")
                    if access is not None:
                        allowed = supported_access_types(debugger)
                        if access not in allowed:
                            # DAP: an accessType the session cannot
                            # serve is a structured rejection, never
                            # silently downgraded to a write watch
                            raise ProtocolError(
                                "unsupported accessType %r (this "
                                "session supports: %s)"
                                % (access, ", ".join(allowed)),
                                field="accessType",
                                reason="access_type",
                                accessType=access, supported=allowed)
                    when = spec.get("when")
                    expr = None
                    if spec.get("condition"):
                        # both dialects land here: legacy "OP INT"
                        # desugars to "$value OP INT", anything else is
                        # predicate source — compiled (and rejected)
                        # now, at set time
                        expr = condition_to_expr(spec["condition"])
                    action = "stop" if spec.get("stop", True) else "log"
                    try:
                        watchpoint = debugger.watch(name, func=func,
                                                    action=action,
                                                    expr=expr, when=when,
                                                    access=access)
                    except PredicateCompileError as exc:
                        raise invalid_condition(spec["condition"], exc)
                    managed.breakpoints[data_id] = watchpoint
                    # the wire-level spec is what hibernation freezes:
                    # conditions recompile from text on thaw
                    managed.breakpoint_specs[data_id] = {
                        "dataId": data_id, "name": name, "func": func,
                        "condition": spec.get("condition"),
                        "when": when, "accessType": access,
                        "stop": bool(spec.get("stop", True))}
                    results.append({
                        "verified": True, "dataId": data_id,
                        "kind": watchpoint.kind,
                        "region": [watchpoint.region.start,
                                   watchpoint.region.size]})
                except (ReproError, DebuggerError) as exc:
                    results.append({"verified": False,
                                    "dataId": data_id,
                                    "error": error_payload(exc)})
            return {"breakpoints": results}

        return self.manager.with_session(session_id, fn)

    # -- execution ---------------------------------------------------------

    def _run_body(self, managed: ManagedSession, reason: str
                  ) -> Dict[str, Any]:
        debugger = managed.debugger
        cpu = debugger.cpu
        body: Dict[str, Any] = {"reason": reason, "pc": cpu.pc,
                                "instructions": cpu.instructions,
                                "cycles": cpu.cycles,
                                "exited": reason == "exited"}
        if reason == "exited":
            body["exitCode"] = cpu.exit_code
        if reason == "watch" and debugger.stopped_watch is not None:
            watchpoint = debugger.stopped_watch
            for data_id, candidate in managed.breakpoints.items():
                if candidate is watchpoint:
                    body["hitBreakpointIds"] = [data_id]
                    break
            body["symbol"] = watchpoint.name
            body["value"] = watchpoint.last_value()
        return body

    def _flush_output(self, managed: ManagedSession) -> None:
        output = managed.debugger.output
        if len(output) > managed.output_sent:
            text = "".join(output[managed.output_sent:])
            managed.output_sent = len(output)
            managed.emit("output", {"output": text})

    def _execute(self, session_id: str,
                 runner: Callable[[ManagedSession], str]) -> Dict[str, Any]:
        def fn(managed: ManagedSession) -> Dict[str, Any]:
            before = managed.debugger.cpu.instructions
            try:
                reason = runner(managed)
            except SimulationLimit as exc:
                # quota exhausted: resumable, reported not raised
                reason = "quota"
                managed.debugger.stop_reason = "quota"
                body = self._run_body(managed, reason)
                body["quota"] = self.config.quota_instructions
                body["resumable"] = True
                body["budget"] = exc.budget
                return self._finish(managed, before, body)
            return self._finish(managed, before,
                                self._run_body(managed, reason))

        return self.manager.execute(session_id, fn)

    def _finish(self, managed: ManagedSession, before: int,
                body: Dict[str, Any]) -> Dict[str, Any]:
        # reverse travel lands at a lower instruction index than it
        # started from; it consumes quota, never refunds it
        managed.instructions_spent += \
            max(0, managed.debugger.cpu.instructions - before)
        body["instructionsSpent"] = managed.instructions_spent
        self._flush_output(managed)
        managed.emit("stopped", {"reason": body["reason"],
                                 "pc": body["pc"],
                                 "exited": body["exited"]})
        return body

    def _continue(self, arguments: Dict[str, Any], emit) -> Dict[str, Any]:
        session_id = _require_arg(arguments, "sessionId")
        quota = min(int(arguments.get("quota",
                                      self.config.quota_instructions)),
                    self.config.quota_instructions)
        return self._execute(
            session_id,
            lambda managed: managed.debugger.run(max_instructions=quota))

    def _step(self, arguments: Dict[str, Any], emit) -> Dict[str, Any]:
        session_id = _require_arg(arguments, "sessionId")
        count = int(arguments.get("count", 1))
        count = max(1, min(count, self.config.quota_instructions))
        return self._execute(
            session_id, lambda managed: managed.debugger.step(count))

    def _step_back(self, arguments: Dict[str, Any], emit) -> Dict[str, Any]:
        """Reverse-step *count* instructions (keyframe restore +
        verified re-execution; replayed hits stream as ``monitorHit``
        events just like forward execution did)."""
        session_id = _require_arg(arguments, "sessionId")
        count = int(arguments.get("count", 1))
        count = max(1, min(count, self.config.quota_instructions))
        return self._execute(
            session_id,
            lambda managed: managed.debugger.reverse_step(count))

    def _reverse_continue(self, arguments: Dict[str, Any], emit
                          ) -> Dict[str, Any]:
        """Run backwards to the most recent write to a watched region."""
        session_id = _require_arg(arguments, "sessionId")
        return self._execute(
            session_id,
            lambda managed: managed.debugger.reverse_continue())

    def _last_write(self, arguments: Dict[str, Any], emit
                    ) -> Dict[str, Any]:
        """Who last wrote *expression*?  May re-execute (the scan
        path), so it runs on the bounded execution pool."""
        session_id = _require_arg(arguments, "sessionId")
        expression = _require_arg(arguments, "expression")
        func = arguments.get("func")

        def fn(managed: ManagedSession) -> Dict[str, Any]:
            answer = managed.debugger.last_write(expression, func)
            body: Dict[str, Any] = {"expression": expression,
                                    "found": answer is not None}
            if answer is not None:
                body.update({"pc": answer.pc, "instruction": answer.index,
                             "oldValue": to_signed(answer.old),
                             "newValue": to_signed(answer.new),
                             "address": answer.addr, "size": answer.size,
                             "source": answer.source})
            return body

        return self.manager.execute(session_id, fn)

    def _evaluate(self, arguments: Dict[str, Any], emit) -> Dict[str, Any]:
        session_id = _require_arg(arguments, "sessionId")
        expression = _require_arg(arguments, "expression")
        func = arguments.get("func")

        def fn(managed: ManagedSession) -> Dict[str, Any]:
            entry, addr, value = managed.debugger.evaluate(expression,
                                                           func)
            return {"expression": expression, "value": value,
                    "address": addr, "size": entry.size,
                    "kind": entry.kind}

        return self.manager.with_session(session_id, fn)

    def _threads(self, arguments: Dict[str, Any], emit) -> Dict[str, Any]:
        """Session inventory — the DAP `threads` analogue."""
        sessions = []
        for session_id in self.manager.session_ids():
            try:
                managed = self.manager.get(session_id)
            except ServerError:
                continue
            sessions.append({
                "sessionId": session_id,
                "stopReason": managed.debugger.stop_reason
                if managed.debugger is not None else None,
                "instructionsSpent": managed.instructions_spent,
                "breakpoints": len(managed.breakpoints)})
        return {"sessions": sessions,
                "frozen": self.manager.frozen_ids()}

    # -- fault tolerance (protocol v3) -------------------------------------

    def _resume(self, arguments: Dict[str, Any], emit) -> Dict[str, Any]:
        """Re-attach to a session by id, thawing it from disk if a
        previous process (or an idle sweep) hibernated it.

        This is the reconnect path: a client whose connection died
        reconnects, re-initializes, and resumes each of its session
        ids; subsequent requests continue byte-identically to a run
        that was never interrupted.
        """
        session_id = _require_arg(arguments, "sessionId")
        was_frozen = session_id in self.manager.frozen_ids()

        def fn(managed: ManagedSession) -> Dict[str, Any]:
            managed.subscribe(emit)
            managed.emit("sessionResumed",
                         {"reason": "thaw" if was_frozen else "reattach"})
            debugger = managed.debugger
            return {"sessionId": managed.id,
                    "thawed": was_frozen,
                    "stopReason": debugger.stop_reason,
                    "pc": debugger.cpu.pc,
                    "instructions": debugger.cpu.instructions,
                    "recording": debugger.recording,
                    "breakpoints": sorted(managed.breakpoints),
                    "instructionsSpent": managed.instructions_spent}

        return self.manager.with_session(session_id, fn)

    def _hibernate(self, arguments: Dict[str, Any], emit
                   ) -> Dict[str, Any]:
        """Freeze a session to disk on demand (ops/test surface for
        the same path the idle sweeper takes)."""
        session_id = _require_arg(arguments, "sessionId")
        if self.manager.store is None:
            raise ServerError("server has no hibernation store",
                              reason="no_hibernation")
        # raises for a session that is unknown (or surfaces
        # initializing) rather than returning a silent False
        self.manager.get(session_id)
        hibernated = self.manager.hibernate(session_id,
                                            reason="request")
        body: Dict[str, Any] = {"sessionId": session_id,
                                "hibernated": hibernated}
        if hibernated:
            size = self.manager.store.frozen_size(session_id)
            if size is not None:
                body["frozenBytes"] = size
        return body

    def _ping(self, arguments: Dict[str, Any], emit) -> Dict[str, Any]:
        """Client heartbeat; also a cheap liveness/inventory probe."""
        return {"time": time.time(),
                "sessions": self.manager.session_count(),
                "frozen": len(self.manager.frozen_ids()),
                "echo": arguments.get("echo")}

    def _disconnect(self, arguments: Dict[str, Any], emit
                    ) -> Dict[str, Any]:
        session_id = _require_arg(arguments, "sessionId")
        destroyed = self.manager.destroy(session_id, reason="disconnect")
        return {"destroyed": destroyed}
