"""DAP-lite wire protocol: length-prefixed JSON messages.

The debug server speaks a small Debug-Adapter-Protocol-flavoured
protocol over a byte stream.  Every message is one *frame*:

.. code-block:: text

    +----------------+----------------------------------------+
    | 4-byte big-    | UTF-8 JSON body (exactly LENGTH bytes) |
    | endian LENGTH  |                                        |
    +----------------+----------------------------------------+

Three message shapes exist, mirroring DAP:

* **request** — ``{"type": "request", "seq": N, "command": C,
  "arguments": {...}}`` (client -> server);
* **response** — ``{"type": "response", "seq": N, "request_seq": M,
  "command": C, "success": bool, "body": {...}, "error": {...}|null}``
  (server -> client, exactly one per request);
* **event** — ``{"type": "event", "seq": N, "event": E,
  "body": {...}}`` (server -> client, streamed at any time).

Frames larger than :data:`MAX_FRAME_BYTES` and bodies that are not
well-formed messages raise :class:`~repro.errors.ProtocolError` with
structured context.  Failed requests carry a structured error payload
built by :func:`error_payload`, which preserves the
:class:`~repro.errors.ReproError` class name and ``context`` dict —
so an :class:`~repro.errors.MrsTransactionError` rolls all the way to
a remote client without losing the region/symbol/pc it describes.

Protocol versioning: the first request on a connection should be
``initialize`` carrying ``protocolVersion``; the server accepts
versions in :data:`SUPPORTED_VERSIONS` and answers with its
capability set (see :mod:`repro.server.handlers`).
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.errors import ProtocolError, ReproError

#: current protocol version, sent by servers in ``initialize``
#: responses (v2 added time travel: ``supportsStepBack`` plus the
#: ``stepBack`` / ``reverseContinue`` / ``lastWrite`` requests; v3
#: added fault tolerance: ``supportsHibernation`` with the ``resume``
#: / ``hibernate`` / ``ping`` requests, the ``sessionHibernated`` /
#: ``sessionResumed`` events, and ``retryAfter`` backpressure hints
#: on retryable errors; v4 added predicate watchpoints: the standard
#: DAP ``condition`` field now takes full predicate expressions over
#: ``$value`` / ``$old`` / ``$addr`` / ``$size`` and debuggee
#: globals, ``when`` selects transition-edge firing, ``accessType``
#: filters hit kinds, and bad predicates are rejected at
#: ``setDataBreakpoints`` time with ``reason="invalid_condition"``)
PROTOCOL_VERSION = 4
#: versions this implementation can serve
SUPPORTED_VERSIONS = (1, 2, 3, 4)
#: default cap on one frame's JSON body (bytes)
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")

__all__ = ["PROTOCOL_VERSION", "SUPPORTED_VERSIONS", "MAX_FRAME_BYTES",
           "Request", "Response", "Event", "Message",
           "encode", "decode", "read_frame", "write_frame",
           "read_message", "write_message", "error_payload"]


# -- message types ------------------------------------------------------------

@dataclass
class Request:
    """A client request: run *command* with *arguments*."""

    seq: int
    command: str
    arguments: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "request", "seq": self.seq,
                "command": self.command, "arguments": self.arguments}


@dataclass
class Response:
    """The server's answer to the request with seq *request_seq*."""

    seq: int
    request_seq: int
    command: str
    success: bool
    body: Dict[str, Any] = field(default_factory=dict)
    error: Optional[Dict[str, Any]] = None

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "response", "seq": self.seq,
                "request_seq": self.request_seq, "command": self.command,
                "success": self.success, "body": self.body,
                "error": self.error}


@dataclass
class Event:
    """A server-initiated notification (monitorHit, stopped, ...)."""

    seq: int
    event: str
    body: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "event", "seq": self.seq, "event": self.event,
                "body": self.body}


Message = Union[Request, Response, Event]


# -- encode / decode ----------------------------------------------------------

def encode(message: Message) -> bytes:
    """Serialise *message* to one framed byte string (header + body)."""
    body = json.dumps(message.to_wire(),
                      separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def _require(obj: Dict[str, Any], name: str, kinds, where: str) -> Any:
    if name not in obj:
        raise ProtocolError("%s missing required field %r" % (where, name),
                            field=name, reason="missing")
    value = obj[name]
    if not isinstance(value, kinds) or isinstance(value, bool) and \
            kinds is int:
        raise ProtocolError(
            "%s field %r has wrong type %s" % (where, name,
                                               type(value).__name__),
            field=name, reason="type")
    return value


def decode(payload: bytes) -> Message:
    """Parse one frame body into a typed message.

    Raises :class:`ProtocolError` on undecodable JSON, non-object
    bodies, unknown ``type`` tags and missing/mistyped fields.
    """
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("frame body is not valid JSON: %s" % exc,
                            reason="json") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object, got %s"
                            % type(obj).__name__, reason="shape")
    kind = obj.get("type")
    if kind == "request":
        return Request(seq=_require(obj, "seq", int, "request"),
                       command=_require(obj, "command", str, "request"),
                       arguments=obj.get("arguments") or {})
    if kind == "response":
        return Response(seq=_require(obj, "seq", int, "response"),
                        request_seq=_require(obj, "request_seq", int,
                                             "response"),
                        command=_require(obj, "command", str, "response"),
                        success=_require(obj, "success", bool, "response"),
                        body=obj.get("body") or {},
                        error=obj.get("error"))
    if kind == "event":
        return Event(seq=_require(obj, "seq", int, "event"),
                     event=_require(obj, "event", str, "event"),
                     body=obj.get("body") or {})
    raise ProtocolError("unknown message type %r" % (kind,),
                        field="type", reason="unknown")


# -- framing over a socket ----------------------------------------------------

def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; None on clean EOF at a frame
    boundary; raises :class:`ProtocolError` on EOF mid-frame."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                "connection closed mid-frame (%d of %d bytes)"
                % (count - remaining, count), reason="truncated")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket,
               max_bytes: int = MAX_FRAME_BYTES) -> Optional[bytes]:
    """Read one frame body from *sock*; None on clean EOF.

    A frame announcing more than *max_bytes* raises
    :class:`ProtocolError` — and the caller must drop the connection,
    since the stream can no longer be resynchronised.
    """
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d byte limit"
            % (length, max_bytes), frame_size=length,
            limit=max_bytes, reason="oversized")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed before frame body",
                            reason="truncated")
    return body


def write_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def read_message(sock: socket.socket,
                 max_bytes: int = MAX_FRAME_BYTES) -> Optional[Message]:
    payload = read_frame(sock, max_bytes)
    return None if payload is None else decode(payload)


def write_message(sock: socket.socket, message: Message) -> None:
    sock.sendall(encode(message))


# -- structured error payloads ------------------------------------------------

def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Map an exception to the protocol's structured error shape.

    ``{"error": <class name>, "message": <str(exc)>, "context": {...}}``
    — ``context`` is present only for :class:`ReproError` subclasses
    that carry one, with values coerced to JSON-safe types.
    """
    payload: Dict[str, Any] = {"error": type(exc).__name__,
                               "message": str(exc) or type(exc).__name__}
    if isinstance(exc, ReproError) and exc.context:
        payload["context"] = {key: _jsonable(value)
                              for key, value in exc.context.items()}
    if exc.__cause__ is not None:
        payload["cause"] = {"error": type(exc.__cause__).__name__,
                            "message": str(exc.__cause__)}
    return payload
