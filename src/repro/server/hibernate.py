"""Crash-safe session hibernation: frozen sessions on disk.

ROADMAP item 1's path from a handful of live sessions to millions runs
through checkpoint hibernation — an idle session is *frozen* (its
digest-verified :class:`~repro.machine.checkpoint.Checkpoint` plus the
server-side bookkeeping the wire protocol needs) to a file, destroyed
in memory, and *thawed* on the next request that names its id.  The
invariant this module enforces is the paper's soundness guarantee
carried across the freeze/thaw boundary: a resumed session either
continues **byte-identically** to a never-hibernated run, or resuming
fails with a structured error — it never silently diverges.

On-disk format (version :data:`FORMAT_VERSION`), one file per session,
``<session-id>.frozen``:

.. code-block:: text

    +--------+---------+------------+----------+-------------+--------+
    | magic  | version | header len | header   | payload len | ...    |
    | 8 B    | u32 BE  | u32 BE     | JSON     | u64 BE      |        |
    +--------+---------+------------+----------+-------------+--------+
    | payload (pickled machine+MRS Checkpoint) | sha256 of all above  |
    +------------------------------------------+----------------------+

The JSON header carries everything needed to rebuild the session
*around* the checkpoint: program identity (source, language, strategy,
optimization mode), the breakpoint table as wire-level specs (so
conditions are recompiled, not pickled), debugger bookkeeping (hit
lists, output, stop reason), replay-recorder metadata, and the
:func:`~repro.replay.recorder.state_digest` of the CPU at freeze time
— re-verified after restore, so a frozen file that restores to the
wrong machine state is rejected instead of resumed.

Write path: serialize fully, write to ``<name>.tmp``, flush + fsync,
atomically ``os.replace`` over the final name, fsync the directory.  A
crash (or injected ``hibernate.write`` fault) mid-write leaves at most
a torn temp file; the previous intact frozen file survives.  Load
path: any torn, truncated or digest-mismatched file is moved into a
``quarantine/`` subdirectory and reported as a structured
:class:`~repro.errors.HibernationError` — a corrupt checkpoint is
never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import time
from typing import Any, Dict, List, Optional

from repro.errors import HibernationError, InjectedFault
from repro.faults import HIBERNATE_LOAD, HIBERNATE_WRITE, FaultPlan

__all__ = ["FORMAT_VERSION", "FrozenSession", "HibernationStore",
           "freeze_managed", "rebuild_managed"]

MAGIC = b"RPRHIB1\n"
FORMAT_VERSION = 1
#: refuse to parse headers larger than this (a torn length field must
#: not make us allocate gigabytes)
MAX_HEADER_BYTES = 1 << 24
MAX_PAYLOAD_BYTES = 1 << 30

_FIXED = struct.Struct(">II")       # version, header length
_PAYLOAD_LEN = struct.Struct(">Q")  # payload length
_DIGEST_BYTES = hashlib.sha256().digest_size


class FrozenSession:
    """One hibernated session: header metadata + pickled checkpoint."""

    def __init__(self, session_id: str, program: Dict[str, Any],
                 breakpoints: List[Dict[str, Any]],
                 debugger_state: Dict[str, Any],
                 record: Optional[Dict[str, Any]],
                 checkpoint_payload: bytes,
                 state_digest: int,
                 frozen_at: Optional[float] = None):
        self.session_id = session_id
        #: how to rebuild the debuggee: source/lang/strategy/optimize/...
        self.program = program
        #: wire-level breakpoint specs (dataId, condition text, stop)
        self.breakpoints = breakpoints
        #: hit lists, output, stop reason, counters
        self.debugger_state = debugger_state
        #: replay-recorder settings, or None if not recording
        self.record = record
        #: pickled machine+MRS Checkpoint
        self.checkpoint_payload = checkpoint_payload
        #: CRC-32 control-state digest at freeze time (re-verified)
        self.state_digest = state_digest
        self.frozen_at = time.time() if frozen_at is None else frozen_at

    def header(self) -> Dict[str, Any]:
        return {"sessionId": self.session_id,
                "program": self.program,
                "breakpoints": self.breakpoints,
                "debugger": self.debugger_state,
                "record": self.record,
                "stateDigest": self.state_digest,
                "frozenAt": self.frozen_at}

    @classmethod
    def from_header(cls, header: Dict[str, Any],
                    payload: bytes) -> "FrozenSession":
        return cls(session_id=header["sessionId"],
                   program=header["program"],
                   breakpoints=header["breakpoints"],
                   debugger_state=header["debugger"],
                   record=header.get("record"),
                   checkpoint_payload=payload,
                   state_digest=header["stateDigest"],
                   frozen_at=header.get("frozenAt"))


def _encode(frozen: FrozenSession) -> bytes:
    header = json.dumps(frozen.header(),
                        separators=(",", ":")).encode("utf-8")
    body = (MAGIC + _FIXED.pack(FORMAT_VERSION, len(header)) + header
            + _PAYLOAD_LEN.pack(len(frozen.checkpoint_payload))
            + frozen.checkpoint_payload)
    return body + hashlib.sha256(body).digest()


def _decode(data: bytes, path: str) -> FrozenSession:
    def torn(what: str) -> HibernationError:
        return HibernationError(
            "frozen file %s is torn (%s)" % (path, what),
            reason="torn", path=path)

    if len(data) < len(MAGIC) + _FIXED.size + _DIGEST_BYTES:
        raise torn("truncated before header")
    if data[:len(MAGIC)] != MAGIC:
        raise HibernationError("frozen file %s has bad magic" % path,
                               reason="format", path=path)
    version, header_len = _FIXED.unpack_from(data, len(MAGIC))
    if version != FORMAT_VERSION:
        raise HibernationError(
            "frozen file %s has unsupported format version %d" % (path,
                                                                  version),
            reason="format", path=path, version=version,
            supported=FORMAT_VERSION)
    if header_len > MAX_HEADER_BYTES:
        raise torn("implausible header length %d" % header_len)
    offset = len(MAGIC) + _FIXED.size
    if len(data) < offset + header_len + _PAYLOAD_LEN.size + _DIGEST_BYTES:
        raise torn("truncated inside header")
    header_bytes = data[offset:offset + header_len]
    offset += header_len
    (payload_len,) = _PAYLOAD_LEN.unpack_from(data, offset)
    offset += _PAYLOAD_LEN.size
    if payload_len > MAX_PAYLOAD_BYTES:
        raise torn("implausible payload length %d" % payload_len)
    if len(data) != offset + payload_len + _DIGEST_BYTES:
        raise torn("payload length mismatch")
    digest = data[-_DIGEST_BYTES:]
    if hashlib.sha256(data[:-_DIGEST_BYTES]).digest() != digest:
        raise HibernationError(
            "frozen file %s failed its digest check" % path,
            reason="digest", path=path)
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise HibernationError(
            "frozen file %s has an undecodable header: %s" % (path, exc),
            reason="format", path=path) from exc
    payload = data[offset:offset + payload_len]
    return FrozenSession.from_header(header, payload)


class HibernationStore:
    """Directory of frozen sessions with atomic, verified writes."""

    SUFFIX = ".frozen"
    QUARANTINE_DIR = "quarantine"

    def __init__(self, directory: str,
                 faults: Optional[FaultPlan] = None):
        self.directory = os.path.abspath(directory)
        self.faults = faults
        os.makedirs(self.directory, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def path_for(self, session_id: str) -> str:
        if os.sep in session_id or session_id in ("", ".", ".."):
            raise HibernationError("invalid session id %r" % session_id,
                                   reason="format", session=session_id)
        return os.path.join(self.directory, session_id + self.SUFFIX)

    def session_ids(self) -> List[str]:
        ids = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            if name.endswith(self.SUFFIX):
                ids.append(name[:-len(self.SUFFIX)])
        return sorted(ids)

    def contains(self, session_id: str) -> bool:
        return os.path.exists(self.path_for(session_id))

    # -- save --------------------------------------------------------------

    def save(self, frozen: FrozenSession) -> str:
        """Atomically persist *frozen*; returns the final path.

        The encoded bytes are written to a temp file (with the
        ``hibernate.write`` injection point tripped mid-stream, so an
        injected fault leaves a torn temp file — exactly what a crash
        would), fsync'd, then renamed over the final name.  On any
        failure the temp file is removed and the previous intact frozen
        file, if one exists, is untouched.
        """
        final_path = self.path_for(frozen.session_id)
        tmp_path = final_path + ".tmp"
        data = _encode(frozen)
        half = len(data) // 2
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(data[:half])
                if self.faults is not None:
                    self.faults.trip(HIBERNATE_WRITE,
                                     session=frozen.session_id,
                                     path=final_path)
                handle.write(data[half:])
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, final_path)
            self._fsync_dir()
        except InjectedFault as exc:
            self._unlink(tmp_path)
            raise HibernationError(
                "frozen-session write for %s failed mid-stream"
                % frozen.session_id, reason="write_failed",
                session=frozen.session_id, path=final_path) from exc
        except OSError as exc:
            self._unlink(tmp_path)
            raise HibernationError(
                "cannot write frozen session %s: %s"
                % (frozen.session_id, exc), reason="write_failed",
                session=frozen.session_id, path=final_path) from exc
        return final_path

    # -- load --------------------------------------------------------------

    def load(self, session_id: str) -> FrozenSession:
        """Read and verify one frozen session.

        Torn / digest-mismatched / wrong-format files are moved into
        the quarantine directory before the error propagates — a bad
        file is inspected at most once and never half-resumed.
        """
        path = self.path_for(session_id)
        try:
            if self.faults is not None:
                self.faults.trip(HIBERNATE_LOAD, session=session_id,
                                 path=path)
            with open(path, "rb") as handle:
                data = handle.read()
        except InjectedFault as exc:
            # a transient (injected) IO failure: the file itself is not
            # suspect, so it stays in place for a retry
            raise HibernationError(
                "frozen-session read for %s failed" % session_id,
                reason="io", session=session_id, path=path) from exc
        except FileNotFoundError as exc:
            raise HibernationError(
                "no frozen session %s" % session_id,
                reason="missing", session=session_id, path=path) from exc
        except OSError as exc:
            raise HibernationError(
                "cannot read frozen session %s: %s" % (session_id, exc),
                reason="io", session=session_id, path=path) from exc
        try:
            frozen = _decode(data, path)
        except HibernationError as exc:
            quarantined = self._quarantine(path)
            exc.context["session"] = session_id
            if quarantined is not None:
                exc.context["quarantined"] = quarantined
            raise
        if frozen.session_id != session_id:
            quarantined = self._quarantine(path)
            raise HibernationError(
                "frozen file %s names session %r" % (path,
                                                     frozen.session_id),
                reason="format", session=session_id,
                quarantined=quarantined)
        return frozen

    def remove(self, session_id: str) -> bool:
        """Delete a frozen session (after a successful thaw, or on
        explicit disconnect).  Idempotent."""
        try:
            os.unlink(self.path_for(session_id))
        except FileNotFoundError:
            return False
        self._fsync_dir()
        return True

    def frozen_size(self, session_id: str) -> Optional[int]:
        try:
            return os.path.getsize(self.path_for(session_id))
        except OSError:
            return None

    def quarantined(self) -> List[str]:
        directory = os.path.join(self.directory, self.QUARANTINE_DIR)
        try:
            return sorted(os.listdir(directory))
        except OSError:
            return []

    # -- internals ---------------------------------------------------------

    def _quarantine(self, path: str) -> Optional[str]:
        directory = os.path.join(self.directory, self.QUARANTINE_DIR)
        try:
            os.makedirs(directory, exist_ok=True)
            target = os.path.join(
                directory, "%s.%d" % (os.path.basename(path),
                                      int(time.time() * 1000)))
            os.replace(path, target)
            self._fsync_dir()
            return target
        except OSError:
            return None

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    @staticmethod
    def _unlink(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass


# -- freeze / rebuild ---------------------------------------------------------

def freeze_managed(managed) -> FrozenSession:
    """Capture a :class:`~repro.server.manager.ManagedSession` as a
    :class:`FrozenSession`.

    The caller must hold the session lock.  Raises
    :class:`HibernationError` (reason ``"unsupported"``) for sessions
    that cannot be rebuilt deterministically — ones launched without a
    recorded program spec, or with a live fault plan whose occurrence
    counters cannot be carried across the boundary.
    """
    from repro.machine.checkpoint import Checkpoint
    from repro.replay.recorder import state_digest

    debugger = managed.debugger
    program = getattr(managed, "program_spec", None)
    if program is None:
        raise HibernationError(
            "session %s has no program spec; cannot rebuild it"
            % managed.id, reason="unsupported", session=managed.id)
    if program.get("faults"):
        raise HibernationError(
            "session %s runs under a fault plan; mid-flight occurrence "
            "counters cannot hibernate" % managed.id,
            reason="unsupported", session=managed.id)

    checkpoint = Checkpoint(debugger.cpu, output=debugger.session.output,
                            mrs=debugger.mrs)
    payload = pickle.dumps(checkpoint, protocol=4)

    breakpoints = []
    for data_id, watchpoint in managed.breakpoints.items():
        spec = dict(managed.breakpoint_specs.get(data_id) or
                    {"dataId": data_id})
        spec["hits"] = [list(hit) for hit in watchpoint.hits]
        # predicate/transition engine state, frozen by value so a
        # thawed session fires the exact same edges a never-hibernated
        # run would (the predicate itself recompiles from `condition`)
        disarm = watchpoint.disarm_error
        spec["engine"] = {
            "enabled": watchpoint.enabled,
            "truth": watchpoint.truth,
            "recordTruth": watchpoint.record_truth,
            "shadow": {str(word): value
                       for word, value in watchpoint.shadow.items()},
            "stats": list(watchpoint.stats.as_tuple()),
            "disarm": None if disarm is None else {
                "message": str(disarm),
                "reason": disarm.context.get("reason")
                if hasattr(disarm, "context") else None}}
        breakpoints.append(spec)

    stopped_id = None
    if debugger.stopped_watch is not None:
        for data_id, watchpoint in managed.breakpoints.items():
            if watchpoint is debugger.stopped_watch:
                stopped_id = data_id
                break

    state = {"started": debugger._started,
             "stopReason": debugger.stop_reason,
             "stoppedWatch": stopped_id,
             "log": list(debugger.log),
             "output": list(debugger.session.output),
             "outputSent": managed.output_sent,
             "instructionsSpent": managed.instructions_spent}

    record = None
    recorder = debugger.recorder
    if recorder is not None:
        record = {"stride": recorder.stride,
                  "maxKeyframes": recorder.max_keyframes,
                  "maxTrace": recorder.trace.max_records
                  if hasattr(recorder, "trace") else None}

    return FrozenSession(session_id=managed.id, program=program,
                         breakpoints=breakpoints, debugger_state=state,
                         record=record, checkpoint_payload=payload,
                         state_digest=state_digest(debugger.cpu))


def rebuild_managed(frozen: FrozenSession):
    """Thaw *frozen*: rebuild the debuggee and restore its state.

    Returns ``(debugger, breakpoints, specs)`` where *breakpoints* is
    the ``dataId -> Watchpoint`` table and *specs* the wire-level specs
    to re-arm :attr:`ManagedSession.breakpoint_specs` with.  The
    program is recompiled from its recorded identity, the pickled
    checkpoint restored over it, and the CPU control-state digest
    re-verified — any mismatch raises :class:`HibernationError`
    (reason ``"digest"``) instead of resuming a divergent session.
    """
    from repro.debugger.debugger import Debugger, Watchpoint
    from repro.errors import PredicateError
    from repro.replay.recorder import state_digest
    from repro.watchpoints.engine import WatchStats
    from repro.watchpoints.predicate import (compile_predicate,
                                             condition_to_expr)

    program = frozen.program
    try:
        debugger = Debugger.for_source(
            program["source"], lang=program.get("lang", "C"),
            strategy=program.get("strategy", "BitmapInlineRegisters"),
            optimize=program.get("optimize") or None,
            monitor_reads=bool(program.get("monitorReads", False)))
    except Exception as exc:
        raise HibernationError(
            "frozen session %s's program can no longer be rebuilt: %s"
            % (frozen.session_id, exc), reason="rebuild",
            session=frozen.session_id) from exc

    try:
        checkpoint = pickle.loads(frozen.checkpoint_payload)
    except Exception as exc:
        raise HibernationError(
            "frozen session %s carries an undecodable checkpoint"
            % frozen.session_id, reason="format",
            session=frozen.session_id) from exc

    state = frozen.debugger_state
    checkpoint.restore(debugger.cpu, output=debugger.session.output,
                       mrs=debugger.mrs)
    debugger.session.output[:] = list(state.get("output") or [])

    observed = state_digest(debugger.cpu)
    if observed != frozen.state_digest:
        raise HibernationError(
            "frozen session %s restored to a divergent machine state"
            % frozen.session_id, reason="digest",
            session=frozen.session_id,
            expected_digest=frozen.state_digest,
            observed_digest=observed)

    # rebuild the watchpoint table against the *restored* regions: the
    # checkpoint already carries the MRS bookkeeping and patched code,
    # so watch() must not run again — only the host-side objects are
    # reconstructed, with conditions recompiled from their wire text
    regions = {region.key(): region for region in debugger.mrs.regions}
    breakpoints: Dict[str, Any] = {}
    specs: Dict[str, Dict[str, Any]] = {}
    for spec in frozen.breakpoints:
        data_id = spec["dataId"]
        name, func = spec.get("name"), spec.get("func")
        entry, addr, size = debugger.resolve(name, func)
        key = (addr, (size + 3) & ~3)
        region = regions.get(key)
        if region is None:
            raise HibernationError(
                "frozen session %s has no monitored region for %s"
                % (frozen.session_id, data_id), reason="digest",
                session=frozen.session_id, dataId=data_id)
        predicate = None
        if spec.get("condition"):
            predicate = compile_predicate(
                condition_to_expr(spec["condition"]),
                symtab=debugger.symtab, func=func)
        action = "stop" if spec.get("stop", True) else "log"
        watchpoint = Watchpoint(debugger, name, entry, region, action,
                                None, None, func, predicate=predicate,
                                when=spec.get("when"),
                                access=spec.get("accessType"),
                                addr=addr, size=size)
        watchpoint.hits = [tuple(hit) for hit in spec.get("hits") or []]
        engine_state = spec.get("engine")
        if engine_state is not None:
            # restore the predicate/transition state by value: shadow
            # truth, $old words and counters continue exactly where the
            # freeze left them
            watchpoint.enabled = bool(engine_state.get("enabled", True))
            watchpoint.truth = engine_state.get("truth")
            watchpoint.record_truth = engine_state.get("recordTruth")
            watchpoint.shadow = {
                int(word): value for word, value in
                (engine_state.get("shadow") or {}).items()}
            stats = engine_state.get("stats")
            if stats:
                watchpoint.stats = WatchStats.from_tuple(stats)
            disarm = engine_state.get("disarm")
            if disarm is not None:
                watchpoint.disarm_error = PredicateError(
                    disarm.get("message") or "disarmed before freeze",
                    reason=disarm.get("reason"))
        else:
            # a pre-v4 frozen file: seed from the restored memory (it
            # is at the freeze point, so the seeded shadow matches)
            debugger.engine.seed(watchpoint)
        debugger.watchpoints.append(watchpoint)
        ref = debugger._region_refs.setdefault(key, [region, 0])
        ref[1] += 1
        breakpoints[data_id] = watchpoint
        specs[data_id] = {key_: value for key_, value in spec.items()
                          if key_ != "hits"}

    debugger._started = bool(state.get("started"))
    debugger.log = list(state.get("log") or [])
    debugger.stop_reason = state.get("stopReason")
    if state.get("stoppedWatch") in breakpoints:
        debugger.stopped_watch = breakpoints[state["stoppedWatch"]]

    record = frozen.record
    if record is not None:
        # recording restarts at the thaw point: keyframe history does
        # not survive hibernation (keyframes hold live host objects),
        # but the recording *contract* — time travel from here on —
        # does, anchored by a fresh keyframe of the restored state
        debugger.record(stride=record.get("stride"),
                        max_keyframes=record.get("maxKeyframes"),
                        max_trace=record.get("maxTrace"))
    return debugger, breakpoints, specs
