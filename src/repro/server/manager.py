"""Session hosting: many concurrent debuggees behind one server.

A :class:`SessionManager` owns a table of :class:`ManagedSession`
objects — each one a :class:`repro.debugger.Debugger` plus the
bookkeeping the wire protocol needs (per-session lock, last-use stamp,
event subscribers, the current data-breakpoint set).  The manager
enforces the server's resource policy:

* **capacity** — at most ``max_sessions`` live sessions; creating one
  past the limit fails with a structured
  :class:`~repro.errors.ServerError` instead of unbounded growth;
* **bounded execution** — debuggee execution (launch / continue /
  step) runs through :meth:`execute`, which takes one of ``workers``
  slots, so a flood of long-running ``continue`` requests queues
  rather than spawning unbounded simulator work;
* **per-session serialisation** — :meth:`execute` and
  :meth:`with_session` hold the session's reentrant lock, so two
  connections driving one session cannot interleave mutations of the
  debugger or its :class:`~repro.core.service.MonitoredRegionService`;
* **idle eviction** — :meth:`evict_idle` destroys sessions unused for
  ``idle_timeout`` seconds, emitting a ``sessionEvicted`` event to
  their subscribers first;
* **graceful shutdown** — :meth:`shutdown` flips the manager into a
  draining state (new sessions and new executions are refused with
  ``ServerError``), waits for in-flight executions to finish, then
  destroys every session.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.debugger.debugger import Debugger
from repro.errors import ServerError

__all__ = ["ManagedSession", "SessionManager"]

#: subscriber signature: (event_name, body_dict)
EventEmitter = Callable[[str, Dict[str, Any]], None]


class ManagedSession:
    """One hosted debuggee plus its server-side bookkeeping."""

    def __init__(self, session_id: str, debugger: Debugger):
        self.id = session_id
        self.debugger = debugger
        #: reentrant: a handler holding the lock may call back in
        self.lock = threading.RLock()
        self.last_used = time.monotonic()
        self.closed = False
        #: per-connection event sinks subscribed to this session
        self.emitters: List[EventEmitter] = []
        #: dataId -> live Watchpoint, as set by setDataBreakpoints
        self.breakpoints: Dict[str, Any] = {}
        #: chars of debuggee output already streamed as `output` events
        self.output_sent = 0
        #: cumulative instructions spent on this session's requests
        self.instructions_spent = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def emit(self, event: str, body: Dict[str, Any]) -> None:
        """Send *event* to every subscriber; a dead sink is dropped
        rather than poisoning the others."""
        payload = dict(body)
        payload.setdefault("sessionId", self.id)
        for emitter in list(self.emitters):
            try:
                emitter(event, payload)
            except Exception:
                try:
                    self.emitters.remove(emitter)
                except ValueError:
                    pass

    def idle_for(self, now: Optional[float] = None) -> float:
        return (time.monotonic() if now is None else now) - self.last_used


class SessionManager:
    def __init__(self, max_sessions: int = 16,
                 idle_timeout: Optional[float] = None,
                 workers: int = 8):
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self.workers = workers
        self._sessions: Dict[str, ManagedSession] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self._exec_slots = threading.BoundedSemaphore(workers)
        self._inflight = 0
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    def create(self, factory: Callable[[], Debugger]) -> ManagedSession:
        """Build a debugger via *factory* and register it.

        The factory runs outside the manager lock (compiling and
        instrumenting a program is the expensive part), but the
        capacity check and the table insert are atomic.
        """
        with self._lock:
            if self._draining:
                raise ServerError("server is draining; no new sessions",
                                  reason="draining")
            if len(self._sessions) >= self.max_sessions:
                raise ServerError(
                    "session capacity exhausted (%d live)"
                    % len(self._sessions), reason="capacity",
                    max_sessions=self.max_sessions)
            session_id = "s%d" % next(self._ids)
            # reserve the slot so a concurrent create cannot overshoot
            placeholder = ManagedSession(session_id, None)  # type: ignore
            self._sessions[session_id] = placeholder
        try:
            debugger = factory()
        except BaseException:
            with self._lock:
                self._sessions.pop(session_id, None)
            raise
        placeholder.debugger = debugger
        placeholder.touch()
        return placeholder

    def get(self, session_id: str) -> ManagedSession:
        with self._lock:
            managed = self._sessions.get(session_id)
        if managed is None or managed.closed or managed.debugger is None:
            raise ServerError("unknown session %r" % (session_id,),
                              reason="unknown_session",
                              session=session_id)
        return managed

    def destroy(self, session_id: str, reason: str = "disconnect") -> bool:
        """Tear a session down, notifying subscribers.  Idempotent."""
        with self._lock:
            managed = self._sessions.pop(session_id, None)
        if managed is None or managed.closed:
            return False
        managed.closed = True
        managed.emit("sessionEvicted", {"reason": reason})
        managed.emitters = []
        return True

    def session_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- execution ---------------------------------------------------------

    def with_session(self, session_id: str, fn: Callable[[ManagedSession],
                                                         Any]) -> Any:
        """Run *fn* holding the session lock (cheap, unbounded ops)."""
        managed = self.get(session_id)
        with managed.lock:
            managed.touch()
            result = fn(managed)
        managed.touch()
        return result

    def execute(self, session_id: str, fn: Callable[[ManagedSession],
                                                    Any]) -> Any:
        """Run *fn* under a bounded worker slot + the session lock.

        This is the path for debuggee execution; the semaphore caps how
        many simulations run concurrently across all sessions, and the
        in-flight count lets :meth:`shutdown` drain cleanly.
        """
        with self._lock:
            if self._draining:
                raise ServerError("server is draining; request refused",
                                  reason="draining")
            self._inflight += 1
        try:
            with self._exec_slots:
                managed = self.get(session_id)
                with managed.lock:
                    managed.touch()
                    result = fn(managed)
                managed.touch()
                return result
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    # -- eviction / shutdown -----------------------------------------------

    def evict_idle(self, timeout: Optional[float] = None) -> List[str]:
        """Destroy sessions idle longer than *timeout* (defaults to the
        manager's ``idle_timeout``); returns the evicted ids."""
        timeout = self.idle_timeout if timeout is None else timeout
        if timeout is None:
            return []
        now = time.monotonic()
        with self._lock:
            stale = [(sid, managed)
                     for sid, managed in self._sessions.items()
                     if managed.idle_for(now) > timeout]
        evicted = []
        for session_id, managed in stale:
            # skip sessions mid-request: a held lock means live traffic
            if not managed.lock.acquire(blocking=False):
                continue
            managed.lock.release()
            if self.destroy(session_id, reason="idle"):
                evicted.append(session_id)
        return evicted

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = 30.0) -> None:
        """Refuse new work, optionally wait for in-flight executions,
        then destroy every session (reason ``"shutdown"``)."""
        with self._idle:
            self._draining = True
            if drain:
                deadline = (None if timeout is None
                            else time.monotonic() + timeout)
                while self._inflight > 0:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        break
                    self._idle.wait(remaining)
        for session_id in self.session_ids():
            self.destroy(session_id, reason="shutdown")
