"""Session hosting: many concurrent debuggees behind one server.

A :class:`SessionManager` owns a table of :class:`ManagedSession`
objects — each one a :class:`repro.debugger.Debugger` plus the
bookkeeping the wire protocol needs (per-session lock, last-use stamp,
event subscribers, the current data-breakpoint set).  The manager
enforces the server's resource policy:

* **capacity** — at most ``max_sessions`` live sessions; creating one
  past the limit fails with a structured
  :class:`~repro.errors.ServerError` carrying a ``retryAfter`` hint
  instead of unbounded growth;
* **bounded execution** — debuggee execution (launch / continue /
  step) runs through :meth:`execute`, which takes one of ``workers``
  slots, so a flood of long-running ``continue`` requests queues
  rather than spawning unbounded simulator work;
* **per-session serialisation** — :meth:`execute` and
  :meth:`with_session` hold the session's reentrant lock, so two
  connections driving one session cannot interleave mutations of the
  debugger or its :class:`~repro.core.service.MonitoredRegionService`;
* **idle eviction** — :meth:`evict_idle` reclaims sessions unused for
  ``idle_timeout`` seconds.  With a
  :class:`~repro.server.hibernate.HibernationStore` attached, an idle
  session is *hibernated* — frozen to disk with a
  ``sessionHibernated`` event, thawed transparently by the next
  :meth:`get` that names its id — so eviction bounds RAM, not the
  nominal session count.  Without a store (or for sessions that cannot
  hibernate) it is destroyed, as before;
* **crash recovery** — :meth:`adopt_frozen` scans the store at server
  startup, so sessions frozen by a previous process (including one
  that died with ``kill -9``) resume under the same ids;
* **graceful shutdown** — :meth:`shutdown` flips the manager into a
  draining state (new sessions and new executions are refused with
  ``ServerError``), waits for in-flight executions to finish, then
  destroys every session.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Set

from repro.debugger.debugger import Debugger
from repro.errors import HibernationError, ServerError

__all__ = ["ManagedSession", "SessionManager"]

#: subscriber signature: (event_name, body_dict)
EventEmitter = Callable[[str, Dict[str, Any]], None]

#: default client backoff hints (seconds) per retryable failure
RETRY_AFTER_CAPACITY = 0.5
RETRY_AFTER_DRAINING = 1.0
RETRY_AFTER_INITIALIZING = 0.05


class ManagedSession:
    """One hosted debuggee plus its server-side bookkeeping."""

    def __init__(self, session_id: str, debugger: Debugger):
        self.id = session_id
        self.debugger = debugger
        #: reentrant: a handler holding the lock may call back in
        self.lock = threading.RLock()
        self.last_used = time.monotonic()
        self.closed = False
        #: per-connection event sinks subscribed to this session
        #: (snapshot/mutate only under :attr:`lock` — see :meth:`emit`)
        self.emitters: List[EventEmitter] = []
        #: dataId -> live Watchpoint, as set by setDataBreakpoints
        self.breakpoints: Dict[str, Any] = {}
        #: dataId -> the wire spec that created it (what hibernation
        #: freezes so conditions are recompiled, never pickled)
        self.breakpoint_specs: Dict[str, Dict[str, Any]] = {}
        #: how to rebuild the debuggee (source, lang, strategy, ...);
        #: None for sessions the server cannot hibernate
        self.program_spec: Optional[Dict[str, Any]] = None
        #: chars of debuggee output already streamed as `output` events
        self.output_sent = 0
        #: cumulative instructions spent on this session's requests
        self.instructions_spent = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def subscribe(self, emitter: EventEmitter) -> None:
        """Add an event sink (idempotent), under the session lock."""
        with self.lock:
            if not self.closed and emitter not in self.emitters:
                self.emitters.append(emitter)

    def emit(self, event: str, body: Dict[str, Any]) -> None:
        """Send *event* to every subscriber; a dead sink is dropped
        rather than poisoning the others.

        The subscriber list is snapshotted — and mutated on failure —
        under the session lock, so a sink removed concurrently with an
        emit cannot be notified twice, and a late emit against a closed
        session cannot resurrect its (cleared) sink list.
        """
        payload = dict(body)
        payload.setdefault("sessionId", self.id)
        with self.lock:
            if self.closed:
                return
            subscribers = list(self.emitters)
        for emitter in subscribers:
            try:
                emitter(event, payload)
            except Exception:
                with self.lock:
                    try:
                        self.emitters.remove(emitter)
                    except ValueError:
                        pass

    def idle_for(self, now: Optional[float] = None) -> float:
        return (time.monotonic() if now is None else now) - self.last_used


class SessionManager:
    def __init__(self, max_sessions: int = 16,
                 idle_timeout: Optional[float] = None,
                 workers: int = 8,
                 store=None, trace_store=None):
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self.workers = workers
        #: optional :class:`~repro.server.hibernate.HibernationStore`
        self.store = store
        #: optional :class:`~repro.store.TraceStore`; active recordings
        #: are archived there when a session hibernates or is destroyed
        self.trace_store = trace_store
        #: hook run on every thawed session before it goes live —
        #: the router uses it to re-wire the monitorHit event stream
        self.on_thaw: Optional[Callable[[ManagedSession], None]] = None
        self._sessions: Dict[str, ManagedSession] = {}
        self._frozen: Set[str] = set()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._thaw_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._exec_slots = threading.BoundedSemaphore(workers)
        self._inflight = 0
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    def create(self, factory: Callable[[], Debugger]) -> ManagedSession:
        """Build a debugger via *factory* and register it.

        The factory runs outside the manager lock (compiling and
        instrumenting a program is the expensive part), but the
        capacity check and the table insert are atomic.
        """
        with self._lock:
            if self._draining:
                raise ServerError("server is draining; no new sessions",
                                  reason="draining",
                                  retryAfter=RETRY_AFTER_DRAINING)
            if len(self._sessions) >= self.max_sessions:
                raise ServerError(
                    "session capacity exhausted (%d live)"
                    % len(self._sessions), reason="capacity",
                    max_sessions=self.max_sessions,
                    retryAfter=RETRY_AFTER_CAPACITY)
            session_id = "s%d" % next(self._ids)
            # reserve the slot so a concurrent create cannot overshoot
            placeholder = ManagedSession(session_id, None)  # type: ignore
            self._sessions[session_id] = placeholder
        try:
            debugger = factory()
        except BaseException:
            self.destroy(session_id, reason="launch_failed")
            raise
        placeholder.debugger = debugger
        placeholder.touch()
        return placeholder

    def get(self, session_id: str) -> ManagedSession:
        with self._lock:
            managed = self._sessions.get(session_id)
            frozen = session_id in self._frozen
        if managed is None and frozen and self.store is not None:
            return self._thaw(session_id)
        if managed is not None and not managed.closed and \
                managed.debugger is None:
            # the id is allocated but its factory is still compiling:
            # not "unknown", just not ready — tell the client to retry
            raise ServerError(
                "session %s is still initializing" % session_id,
                reason="initializing", session=session_id,
                retryAfter=RETRY_AFTER_INITIALIZING)
        if managed is None or managed.closed:
            raise ServerError("unknown session %r" % (session_id,),
                              reason="unknown_session",
                              session=session_id)
        return managed

    def destroy(self, session_id: str, reason: str = "disconnect") -> bool:
        """Tear a session down, notifying subscribers.  Idempotent.
        Also discards the session's frozen file, if any — an explicit
        disconnect ends a hibernated session's life too."""
        with self._lock:
            managed = self._sessions.pop(session_id, None)
            frozen = session_id in self._frozen
            self._frozen.discard(session_id)
        if frozen and self.store is not None:
            self.store.remove(session_id)
        if managed is None or managed.closed:
            return frozen
        with managed.lock:
            if managed.debugger is not None:
                self.archive_recording(managed)
                # a placeholder has no subscribers and no debuggee; do
                # not emit events against a half-built session
                managed.emit("sessionEvicted", {"reason": reason})
            managed.closed = True
            managed.emitters = []
        return True

    def session_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def frozen_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._frozen)

    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- hibernation -------------------------------------------------------

    def adopt_frozen(self) -> List[str]:
        """Scan the store for sessions frozen by a previous process and
        make their ids resumable; advances the id counter past them so
        a new ``launch`` can never collide with a frozen id."""
        if self.store is None:
            return []
        adopted = self.store.session_ids()
        highest = 0
        for session_id in adopted:
            if session_id.startswith("s") and session_id[1:].isdigit():
                highest = max(highest, int(session_id[1:]))
        with self._lock:
            self._frozen.update(adopted)
            if highest:
                self._ids = itertools.count(highest + 1)
        return adopted

    def hibernate(self, session_id: str,
                  reason: str = "idle") -> bool:
        """Freeze a live session to the store and drop it from memory.

        Emits ``sessionHibernated`` to subscribers first.  Returns
        False when the session is busy (lock held by a live request),
        unknown, or not hibernatable; raises
        :class:`~repro.errors.HibernationError` when the write itself
        fails — in which case the session stays live and intact.
        """
        if self.store is None:
            return False
        with self._lock:
            managed = self._sessions.get(session_id)
        if managed is None or managed.closed or managed.debugger is None:
            return False
        if not managed.lock.acquire(blocking=False):
            return False  # mid-request: live traffic wins
        try:
            from repro.server.hibernate import freeze_managed
            try:
                frozen = freeze_managed(managed)
            except HibernationError:
                return False  # not hibernatable (no spec / fault plan)
            self.store.save(frozen)  # HibernationError propagates
            self.archive_recording(managed)
            managed.emit("sessionHibernated",
                         {"reason": reason,
                          "resumable": True})
            with self._lock:
                self._sessions.pop(session_id, None)
                self._frozen.add(session_id)
            managed.closed = True
            managed.emitters = []
            return True
        finally:
            managed.lock.release()

    def _thaw(self, session_id: str) -> ManagedSession:
        """Resume a frozen session: load, verify, rebuild, go live."""
        with self._thaw_lock:
            # someone may have thawed (or destroyed) it while we waited
            with self._lock:
                managed = self._sessions.get(session_id)
                if managed is not None:
                    if managed.closed:
                        raise ServerError(
                            "unknown session %r" % (session_id,),
                            reason="unknown_session", session=session_id)
                    return managed
                if session_id not in self._frozen:
                    raise ServerError("unknown session %r" % (session_id,),
                                      reason="unknown_session",
                                      session=session_id)
                if self._draining:
                    raise ServerError(
                        "server is draining; no session resume",
                        reason="draining",
                        retryAfter=RETRY_AFTER_DRAINING)
                if len(self._sessions) >= self.max_sessions:
                    raise ServerError(
                        "session capacity exhausted (%d live); "
                        "cannot thaw %s" % (len(self._sessions),
                                            session_id),
                        reason="capacity", session=session_id,
                        max_sessions=self.max_sessions,
                        retryAfter=RETRY_AFTER_CAPACITY)
            from repro.server.hibernate import rebuild_managed
            try:
                frozen = self.store.load(session_id)
                debugger, breakpoints, specs = rebuild_managed(frozen)
            except HibernationError as exc:
                if exc.reason in ("torn", "digest", "format"):
                    # the file was quarantined: the id no longer resolves
                    with self._lock:
                        self._frozen.discard(session_id)
                error = ServerError(
                    "cannot resume session %s: %s" % (session_id, exc),
                    reason="resume_failed", session=session_id,
                    cause=exc.reason)
                if exc.quarantined:
                    error.context["quarantined"] = exc.quarantined
                raise error from exc
            managed = ManagedSession(session_id, debugger)
            managed.breakpoints = breakpoints
            managed.breakpoint_specs = specs
            managed.program_spec = dict(frozen.program)
            state = frozen.debugger_state
            managed.output_sent = int(state.get("outputSent") or 0)
            managed.instructions_spent = \
                int(state.get("instructionsSpent") or 0)
            if self.on_thaw is not None:
                self.on_thaw(managed)
            with self._lock:
                self._frozen.discard(session_id)
                self._sessions[session_id] = managed
            # the thawed state is live and authoritative now; a stale
            # frozen file must never be resumed a second time
            self.store.remove(session_id)
            return managed

    # -- trace archiving ---------------------------------------------------

    def archive_recording(self, managed: ManagedSession) -> None:
        """Best-effort: persist *managed*'s active recording into the
        trace store (caller holds the session lock).

        Runs at end-of-life transitions — hibernate and destroy — so a
        recorded server session leaves an analyzable artefact behind.
        Archiving is strictly secondary to the lifecycle operation: a
        full disk or locked store must never turn a disconnect into an
        error, so failures surface as a ``storeError`` event, nothing
        more.
        """
        if self.trace_store is None or managed.debugger is None:
            return
        recorder = getattr(managed.debugger, "recorder", None)
        if recorder is None or len(recorder.trace) == 0 \
                and not recorder.keyframes:
            return
        spec = managed.program_spec or {}
        workload = spec.get("workload")
        if not workload:
            import hashlib
            source = spec.get("source") or ""
            workload = "adhoc-%s" % hashlib.sha256(
                source.encode("utf-8")).hexdigest()[:8]
        try:
            result = self.trace_store.ingest_recorder(
                recorder, workload=workload, session=managed.id)
            managed.emit("recordingArchived",
                         {"runId": result.run_id,
                          "runKey": result.run_key,
                          "duplicate": result.duplicate,
                          "workload": workload})
        except Exception as exc:
            managed.emit("storeError", {"error": str(exc),
                                        "workload": workload})

    # -- execution ---------------------------------------------------------

    def with_session(self, session_id: str, fn: Callable[[ManagedSession],
                                                         Any]) -> Any:
        """Run *fn* holding the session lock (cheap, unbounded ops)."""
        managed = self.get(session_id)
        with managed.lock:
            managed.touch()
            result = fn(managed)
        managed.touch()
        return result

    def execute(self, session_id: str, fn: Callable[[ManagedSession],
                                                    Any]) -> Any:
        """Run *fn* under a bounded worker slot + the session lock.

        This is the path for debuggee execution; the semaphore caps how
        many simulations run concurrently across all sessions, and the
        in-flight count lets :meth:`shutdown` drain cleanly.
        """
        with self._lock:
            if self._draining:
                raise ServerError("server is draining; request refused",
                                  reason="draining",
                                  retryAfter=RETRY_AFTER_DRAINING)
            self._inflight += 1
        try:
            with self._exec_slots:
                managed = self.get(session_id)
                with managed.lock:
                    managed.touch()
                    result = fn(managed)
                managed.touch()
                return result
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    # -- eviction / shutdown -----------------------------------------------

    def evict_idle(self, timeout: Optional[float] = None) -> List[str]:
        """Reclaim sessions idle longer than *timeout* (defaults to the
        manager's ``idle_timeout``); returns the reclaimed ids.

        With a hibernation store, an idle session freezes to disk and
        stays resumable; sessions that cannot hibernate (no program
        spec, live fault plan, or a failing store) are destroyed, as
        before.
        """
        timeout = self.idle_timeout if timeout is None else timeout
        if timeout is None:
            return []
        now = time.monotonic()
        with self._lock:
            stale = [(sid, managed)
                     for sid, managed in self._sessions.items()
                     if managed.idle_for(now) > timeout]
        evicted = []
        for session_id, managed in stale:
            # skip sessions mid-request: a held lock means live traffic
            if not managed.lock.acquire(blocking=False):
                continue
            managed.lock.release()
            if self.store is not None and \
                    managed.program_spec is not None:
                try:
                    if self.hibernate(session_id, reason="idle"):
                        evicted.append(session_id)
                        continue
                except HibernationError:
                    # the write failed; the session is still intact —
                    # leave it live and let the next sweep retry
                    continue
            if self.destroy(session_id, reason="idle"):
                evicted.append(session_id)
        return evicted

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = 30.0) -> None:
        """Refuse new work, optionally wait for in-flight executions,
        then destroy every session (reason ``"shutdown"``)."""
        with self._idle:
            self._draining = True
            if drain:
                deadline = (None if timeout is None
                            else time.monotonic() + timeout)
                while self._inflight > 0:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        break
                    self._idle.wait(remaining)
        for session_id in self.session_ids():
            self.destroy(session_id, reason="shutdown")
