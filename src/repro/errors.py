"""Common exception hierarchy for the reproduction.

Every exception the repro packages raise derives from :class:`ReproError`
so callers can catch "anything this system signalled" with one clause
while narrower handlers keep working — each concrete class (``MrsError``,
``RegionError``, ``MemoryFault``, ``SimulationError``, ...) keeps its
historical name and import path in the module that owns its subsystem.

``ReproError`` also standardises *structured context*: keyword arguments
passed at raise time are stored on ``exc.context`` (and rendered in the
message), so the robustness machinery can report which region, segment,
patch site or pc an operation was touching when it failed, without
callers having to parse message strings.
"""

from __future__ import annotations

from typing import Any, Dict


def _format_value(value: Any) -> str:
    if isinstance(value, int) and not isinstance(value, bool):
        return "0x%x" % value if value > 256 else str(value)
    return repr(value)


class ReproError(Exception):
    """Base class for every exception raised by the repro packages.

    Positional arguments behave exactly like :class:`Exception`;
    keyword arguments become structured context on :attr:`context`.
    """

    def __init__(self, *args: Any, **context: Any):
        super().__init__(*args)
        self.context: Dict[str, Any] = context

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        detail = ", ".join("%s=%s" % (key, _format_value(value))
                           for key, value in sorted(self.context.items()))
        return "%s [%s]" % (base, detail) if base else "[%s]" % detail


class InjectedFault(ReproError):
    """A fault deliberately raised by a :class:`repro.faults.FaultPlan`.

    Carries the injection *point* name and the zero-based *occurrence*
    index at which the plan fired, plus whatever context the injection
    site supplied (region, segment, site, pc, ...).
    """

    def __init__(self, point: str, occurrence: int, **context: Any):
        super().__init__("injected fault at %s" % point,
                         point=point, occurrence=occurrence, **context)
        self.point = point
        self.occurrence = occurrence


# -- monitored region service --------------------------------------------------

class MrsError(ReproError):
    """Raised for invalid MRS operations.

    Defined here (rather than in :mod:`repro.core.service`) so the
    dynamic-patching layer can subclass it without importing the
    service; ``repro.core.service`` re-exports it, so existing
    ``from repro.core.service import MrsError`` imports and ``except``
    clauses keep working.
    """


class MrsTransactionError(MrsError):
    """An MRS operation failed and was rolled back to its pre-call state.

    The original failure (injected or real) is chained as ``__cause__``;
    :attr:`context` names the operation's target (region, symbol, patch
    site) and the debuggee pc at the time of the call.
    """

    @property
    def region(self):
        return self.context.get("region")

    @property
    def segment(self):
        return self.context.get("segment")

    @property
    def site(self):
        return self.context.get("site")

    @property
    def pc(self):
        return self.context.get("pc")


class ProtocolError(ReproError):
    """A malformed, oversized or out-of-protocol wire message.

    Raised by :mod:`repro.server.protocol` on framing violations
    (truncated length prefix, frame larger than the negotiated maximum),
    undecodable JSON, and messages missing required fields.  The
    :attr:`context` names what was wrong (``frame_size``, ``field``,
    ``reason``) so servers can report it in a structured error payload
    without parsing message strings.
    """


class ServerError(ReproError):
    """A debug-server request failed server-side.

    Covers session-level failures that are not MRS transactions:
    unknown session ids, session-capacity exhaustion, draining servers
    rejecting new work, and unsupported protocol versions.  Retryable
    failures (``capacity``, ``draining``, ``initializing``) carry a
    ``retryAfter`` context hint — seconds the client should back off
    before retrying — so overload degrades gracefully.
    """

    @property
    def retry_after(self):
        return self.context.get("retryAfter")


class HibernationError(ReproError):
    """A frozen-session file could not be written, read or trusted.

    Raised by :mod:`repro.server.hibernate` when a checkpoint write
    fails mid-stream (the previous intact frozen file is left in
    place), and on load when a file is torn, truncated, carries a bad
    magic/version, or fails its digest check — in which case the file
    is quarantined, never trusted.  :attr:`context` carries ``reason``
    (``"write_failed"``, ``"torn"``, ``"digest"``, ``"format"``,
    ``"io"``), the ``session`` id and, for quarantined files, the
    ``quarantined`` path.
    """

    @property
    def reason(self):
        return self.context.get("reason")

    @property
    def quarantined(self):
        return self.context.get("quarantined")


class StoreError(ReproError):
    """The persistent trace store could not serve a request.

    Raised by :mod:`repro.store` when the SQLite database stays locked
    past the bounded retry budget, a transaction is rolled back (an
    injected ``store.commit`` fault counts — the previous committed
    generation survives intact), an ingested payload fails validation,
    or a query names an unknown run or workload.  :attr:`context`
    carries ``reason`` (``"locked"``, ``"commit_failed"``,
    ``"corrupt"``, ``"unknown_run"``, ``"unresolvable"``, ...) plus
    whatever identifies the run or path involved.
    """

    @property
    def reason(self):
        return self.context.get("reason")


class ReplayError(ReproError):
    """An invalid record/replay request (e.g. time travel without an
    active recording), or a recording that can no longer serve one."""


class DivergenceError(ReplayError):
    """Deterministic re-execution drifted from the recorded trace.

    Replay is only correct if re-execution reproduces the recorded run
    exactly; any mismatch — a monitor hit that differs from the
    recorded one, or a keyframe whose state digest no longer matches —
    raises this instead of silently returning a wrong answer.
    :attr:`context` carries the expected and observed values
    (``expected_pc``/``observed_pc``, ``expected_digest``/
    ``observed_digest``, ``index``).
    """

    @property
    def expected(self):
        return {key[len("expected_"):]: value
                for key, value in self.context.items()
                if key.startswith("expected_")}

    @property
    def observed(self):
        return {key[len("observed_"):]: value
                for key, value in self.context.items()
                if key.startswith("observed_")}


class PredicateCompileError(ReproError):
    """A watchpoint predicate failed to compile.

    Raised at *arm time* — ``watch()``, ``setDataBreakpoints`` — never
    at first hit: bad syntax, an undefined symbol, an unsupported
    construct (calls, frame-locals), or a constant subexpression that
    already faults (``1 / 0``).  :attr:`context` carries the offending
    ``token`` and the predicate ``source`` so protocol layers can
    surface a structured ``invalid_condition`` error.
    """

    @property
    def token(self):
        return self.context.get("token")


class PredicateError(ReproError):
    """A watchpoint predicate failed while evaluating a hit.

    Division by zero, a dereference of an unmapped or misaligned
    address, an out-of-range index.  The evaluation engine catches
    this, *disarms* the watchpoint (recording the error on it) and
    keeps the session alive — a broken predicate must not crash the
    debuggee.  :attr:`context` names the ``reason`` (``div_zero``,
    ``bad_deref``, ``bad_index``) and the fault operands.
    """

    @property
    def reason(self):
        return self.context.get("reason")


class OptimizeModeError(ReproError, ValueError):
    """An unknown optimization mode was requested from ``build_plan``.

    Raised instead of a bare ``ValueError`` so the CLI (and the debug
    server's ``launch`` request) can report a structured, catchable
    error; still a ``ValueError`` subclass so historical ``except``
    clauses keep working.  :attr:`context` carries the offending
    ``mode`` and the ``valid`` tuple of accepted mode names.
    """

    @property
    def mode(self):
        return self.context.get("mode")

    @property
    def valid(self):
        return self.context.get("valid")


class AuditError(ReproError):
    """A soundness audit could not certify a run.

    Raised by :mod:`repro.analysis.audit` for divergences that are not
    a missed monitor hit: extra or reordered hits, output or exit-code
    mismatches between the instrumented run and the uninstrumented
    ground truth.  :attr:`context` names the ``reason`` and the
    expected/observed values.
    """

    @property
    def reason(self):
        return self.context.get("reason")


class UnsoundEliminationError(AuditError):
    """The auditor proved an eliminated check swallowed a monitor hit.

    The trace-backed audit replays a recording's canonical WriteTrace
    against the uninstrumented ground truth; a write that lands in a
    monitored region with no corresponding notification means some
    pass eliminated a check it had no right to remove.  :attr:`context`
    names the write ``site``, the eliminating ``elim_pass``, the
    ``provenance`` chain the pass recorded when it made the decision,
    and the offending ``addr``.
    """

    @property
    def site(self):
        return self.context.get("site")

    @property
    def elim_pass(self):
        return self.context.get("elim_pass")

    @property
    def provenance(self):
        return self.context.get("provenance")

    @property
    def addr(self):
        return self.context.get("addr")


class RegionCreateError(MrsTransactionError):
    """``CreateMonitoredRegion`` failed; all state was rolled back."""


class RegionDeleteError(MrsTransactionError):
    """``DeleteMonitoredRegion`` failed; all state was rolled back."""


class MonitorPatchError(MrsTransactionError):
    """``PreMonitor``/``PostMonitor`` failed; patches were rolled back."""


class PatchError(MrsTransactionError):
    """Installing or removing a single Kessler patch failed."""
