"""Experiment E7: bitmap space overhead (§3).

"a segmented bitmap consumes more space than a hash table — roughly 3%
of the total memory used by the program" (one bit per word = 1/32 =
3.125%, plus the lazily touched segment table).

We populate the bitmap over each workload's entire data segment (the
worst case: everything monitored) and report allocated bitmap bytes as
a fraction of program memory.

Run as ``python -m repro.eval.space``.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, List

from repro.core.bitmap import SegmentedBitmap
from repro.core.layout import MonitorLayout
from repro.core.regions import MonitoredRegion
from repro.machine.memory import Memory
from repro.minic.codegen import compile_source
from repro.asm.assembler import assemble
from repro.workloads import WORKLOAD_ORDER, WORKLOADS, workload_source


def measure_workload(name: str, scale: float = 1.0) -> Dict[str, float]:
    spec = WORKLOADS[name]
    asm = compile_source(workload_source(name, scale), lang=spec.lang)
    program = assemble(asm)
    # run once to learn how much heap the workload allocates
    from repro.session import run_uninstrumented
    from repro.asm.loader import DEFAULT_HEAP_BASE
    _code, loaded = run_uninstrumented(asm)
    heap_bytes = loaded.cpu.mem.brk - DEFAULT_HEAP_BASE

    memory = Memory()
    layout = MonitorLayout()
    bitmap = SegmentedBitmap(memory, layout)
    data_bytes = program.data_size()
    if data_bytes:
        bitmap.set_region(MonitoredRegion(program.data_base,
                                          (data_bytes + 3) & ~3))
    if heap_bytes:
        bitmap.set_region(MonitoredRegion(DEFAULT_HEAP_BASE,
                                          (heap_bytes + 3) & ~3))
    bitmap_bytes = bitmap.bitmap_bytes_allocated()
    allocated = data_bytes + heap_bytes
    program_bytes = program.text_size() + allocated
    return {
        "program_bytes": program_bytes,
        "data_bytes": allocated,
        "bitmap_bytes": bitmap_bytes,
        "fraction": bitmap_bytes / allocated if allocated else 0.0,
    }


def main(scale: float = 1.0,
         workloads: Optional[List[str]] = None) -> Dict[str, Dict]:
    workloads = workloads or WORKLOAD_ORDER
    results = {name: measure_workload(name, scale) for name in workloads}
    print("Bitmap space overhead (worst case: entire data segment "
          "monitored); paper: ~3%%")
    print("%-18s %10s %10s %10s %9s" % ("Program", "total",
                                        "data+heap", "bitmap",
                                        "bitmap/data"))
    for name, row in results.items():
        print("%-18s %10d %10d %10d %8.2f%%"
              % (name, row["program_bytes"], row["data_bytes"],
                 row["bitmap_bytes"], 100.0 * row["fraction"]))
    return results


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
