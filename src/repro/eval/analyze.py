"""Experiment: interprocedural analysis — checks eliminated per mode.

For every §6 workload we report the **"checks eliminated %"** column —
the percentage of *dynamic* write checks removed — under the three
elimination modes (``sym``, ``full``, ``ipa``), plus the static site
counts and the ``ipa`` pass statistics (sites seen / eliminated /
guarded, i.e. refused for soundness).  ``ipa`` must be at least as
strong as ``full`` everywhere and strictly stronger on some workloads;
the heap-heavy ones (gcc's sbrk-backed obstacks) are where it refuses —
the adversarial-aliasing showcase.

Run as ``python -m repro.eval.analyze [scale]``.
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Dict, List, Optional

from repro.eval.overhead import WorkloadBench
from repro.optimizer.pipeline import build_plan
from repro.workloads import WORKLOAD_ORDER, WORKLOADS

#: strategy used for the remaining (uneliminated) checks
CHECK_STRATEGY = "BitmapInlineRegisters"

MODES = ("sym", "full", "ipa")

COLUMNS = ["sym", "full", "ipa", "ipa_sites", "ipa_guarded"]


def measure_workload(name: str, scale: float = 1.0) -> Dict[str, float]:
    bench = WorkloadBench(name, scale=scale)

    # one counting run per workload: the dynamic write trace does not
    # depend on the plan (checks never change program semantics)
    _stmts, count_plan = build_plan(bench.asm, mode="sym")
    counted = bench.run_instrumented(CHECK_STRATEGY, enabled=True,
                                     plan=count_plan, record_writes=True)
    trace = counted.session.cpu.write_trace
    total = len(trace)
    by_site = Counter(site for site, _addr, _width in trace
                      if site is not None)

    result: Dict[str, float] = {}
    for mode in MODES:
        _stmts, plan = build_plan(bench.asm, mode=mode)
        dynamic = sum(count for site, count in by_site.items()
                      if site in plan.eliminate)
        result[mode] = 100.0 * dynamic / total if total else 0.0
        result[mode + "_static"] = len(plan.eliminate)
        if mode == "ipa":
            stats = plan.pass_stats.get("ipa")
            result["ipa_sites"] = stats.eliminated if stats else 0
            result["ipa_guarded"] = stats.guarded if stats else 0
    return result


def measure_analyze(scale: float = 1.0,
                    workloads: Optional[List[str]] = None
                    ) -> Dict[str, Dict[str, float]]:
    workloads = workloads or WORKLOAD_ORDER
    return {name: measure_workload(name, scale) for name in workloads}


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    header = ("%-18s" % "Program") \
        + "".join("%12s" % ("%s elim" % m) for m in MODES) \
        + "%11s%13s" % ("ipa sites", "ipa guarded")
    lines = [header, "-" * len(header)]
    for name, row in results.items():
        lang = WORKLOADS[name].lang
        cells = "(%s) %-14s" % (lang, name)
        cells += "".join("%11.1f%%" % row[m] for m in MODES)
        cells += "%11d%13d" % (row["ipa_sites"], row["ipa_guarded"])
        if row["ipa_static"] > row["full_static"]:
            cells += "   < ipa wins"
        lines.append(cells)
    return "\n".join(lines)


def main(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    results = measure_analyze(scale)
    print("Interprocedural write-check elimination (measured, "
          "scale=%.2g)" % scale)
    print(format_table(results))
    wins = [name for name, row in results.items()
            if row["ipa_static"] > row["full_static"]]
    print("ipa eliminates strictly more checks than full on %d "
          "workload(s): %s" % (len(wins), ", ".join(wins) or "none"))
    return results


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
