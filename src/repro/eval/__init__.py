"""Evaluation harness: one module per table/figure (see DESIGN.md §4)."""
