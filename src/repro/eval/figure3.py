"""Experiment E3: reproduce Figure 3 — segment cache locality as a
function of segment size (§3.1).

For each segment size we run the ``Cache`` strategy (no monitored
regions, MRS enabled) and measure the per-write-type segment-cache hit
rate: ``1 - cache_misses / checked_writes``.  The paper picked 128-word
segments because "segment sizes greater than 128 words did not offer
enough gain in cache locality to justify the possible increase in full
lookups" (and segment-table size).

Run as ``python -m repro.eval.figure3 [scale]``.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.core.layout import MonitorLayout
from repro.eval.overhead import WorkloadBench, average
from repro.workloads import WORKLOAD_ORDER

#: segment sizes (in words) swept; the paper's x-axis starts at 128
SEGMENT_SIZES = [32, 64, 128, 256, 512, 1024, 2048]


def measure_hit_rate(name: str, segment_words: int,
                     scale: float = 1.0) -> float:
    """Segment-cache hit rate of one workload at one segment size."""
    bench = WorkloadBench(name, scale=scale)
    layout = MonitorLayout(segment_words)
    run = bench.run_instrumented("Cache", enabled=True, layout=layout,
                                 record_writes=True)
    checks = run.session.cpu.write_trace
    misses = run.tag_counts.get("miss_entry", 0)
    total = len(checks)
    if total == 0:
        return 1.0
    return 1.0 - misses / total


def measure_figure3(scale: float = 1.0,
                    workloads: Optional[List[str]] = None,
                    sizes: Optional[List[int]] = None
                    ) -> Dict[int, Dict[str, float]]:
    workloads = workloads or WORKLOAD_ORDER
    sizes = sizes or SEGMENT_SIZES
    results: Dict[int, Dict[str, float]] = {}
    for size in sizes:
        results[size] = {name: measure_hit_rate(name, size, scale)
                         for name in workloads}
    return results


def format_series(results: Dict[int, Dict[str, float]]) -> str:
    lines = ["%-10s %-18s %s" % ("seg words", "avg hit rate", "bar")]
    for size, per_workload in sorted(results.items()):
        rate = average(list(per_workload.values()))
        bar = "#" * int(round(rate * 50))
        lines.append("%-10d %-18.3f %s" % (size, rate, bar))
    return "\n".join(lines)


def main(scale: float = 1.0,
         workloads: Optional[List[str]] = None
         ) -> Dict[int, Dict[str, float]]:
    results = measure_figure3(scale, workloads)
    print("Figure 3: segment cache locality vs segment size "
          "(measured, scale=%.2g)" % scale)
    print(format_series(results))
    rates = {size: average(list(r.values()))
             for size, r in results.items()}
    if 128 in rates and max(rates) > 128:
        big = max(rates)
        print("\n128-word hit rate %.3f vs %d-word %.3f: the paper's "
              "observation that larger segments buy little locality"
              % (rates[128], big, rates[big]))
    return results


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
