"""Experiment E6: the §1/§3 baseline comparison.

Reproduces the headline comparisons against prior implementation
strategies:

* dbx-style trap-per-instruction: "a factor of 85,000, independent of
  the program being debugged";
* Wahbe '92 hash-table procedure-call checks: "209% to 642%";
* hardware watchpoints: free but capacity-limited (SPARC: one word);
* VAX DEBUG page protection: per-fault costs plus false faults from
  unmonitored data sharing pages.

Run as ``python -m repro.eval.baselines [scale]``.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.baselines.hardware import (HardwareWatchpoints,
                                      WatchpointCapacityError)
from repro.baselines.hashtable import HashTableStrategy
from repro.baselines.trap import TrapBasedDebugger
from repro.baselines.vmprotect import PageProtectionDebugger
from repro.eval.overhead import WorkloadBench
from repro.eval.paper_data import (DBX_OVERHEAD_FACTOR,
                                   HASHTABLE_OVERHEAD_RANGE)
from repro.minic.codegen import compile_source
from repro.session import run_uninstrumented
from repro.workloads import WORKLOAD_ORDER, WORKLOADS, workload_source

#: small program for the (very slow to simulate) trap baseline
_TRAP_PROGRAM = """
int buf[16];
int main() {
    int i;
    int s;
    s = 0;
    for (i = 0; i < 16; i = i + 1) {
        buf[i] = i * 5;
        s = s + buf[i];
    }
    print(s);
    return 0;
}
"""


def measure_trap_factor() -> float:
    """Slowdown factor of the dbx trap-per-instruction model."""
    asm = compile_source(_TRAP_PROGRAM)
    _code, base = run_uninstrumented(asm)
    debugger = TrapBasedDebugger(asm)
    debugger.run()
    return debugger.overhead_factor(base.cpu.cycles)


def measure_hashtable_overheads(scale: float = 1.0,
                                workloads: Optional[List[str]] = None
                                ) -> Dict[str, float]:
    """Hash-table write-check overhead per workload (no regions)."""
    workloads = workloads or WORKLOAD_ORDER
    results = {}
    for name in workloads:
        bench = WorkloadBench(name, scale=scale)
        run = bench.run_instrumented(HashTableStrategy(), enabled=True)
        base = bench.baseline()
        results[name] = 100.0 * (run.cycles / base.cycles - 1.0)
    return results


def demonstrate_hardware_limit() -> str:
    """Show the SPARC single-word watchpoint failing a two-word watch."""
    asm = compile_source(_TRAP_PROGRAM)
    from repro.asm.assembler import assemble
    from repro.asm.loader import load_program
    loaded = load_program(assemble(asm))
    hardware = HardwareWatchpoints(loaded, processor="SPARC")
    buf = loaded.program.symtab.lookup("buf")
    hardware.watch(buf.address, 4)
    try:
        hardware.watch(buf.address + 4, 4)
    except WatchpointCapacityError as exc:
        return str(exc)
    raise AssertionError("capacity limit did not trigger")


def measure_vmprotect(scale: float = 0.5,
                      workload: str = "042.fpppp") -> Dict[str, float]:
    """Page-protection overhead when one global is watched."""
    spec = WORKLOADS[workload]
    asm = compile_source(workload_source(workload, scale), lang=spec.lang)
    _code, base = run_uninstrumented(asm)
    debugger = PageProtectionDebugger(asm)
    target = debugger.loaded.program.symtab.lookup("gout")
    debugger.watch(target.address, 4)
    debugger.run()
    overhead = 100.0 * (debugger.loaded.cpu.cycles / base.cpu.cycles - 1.0)
    return {"overhead": overhead, "hits": len(debugger.hits),
            "false_faults": debugger.false_faults}


def main(scale: float = 0.5) -> Dict[str, object]:
    results: Dict[str, object] = {}

    factor = measure_trap_factor()
    results["trap_factor"] = factor
    print("dbx trap-per-instruction slowdown: %.0fx "
          "(paper: ~%dx)" % (factor, DBX_OVERHEAD_FACTOR))

    hashes = measure_hashtable_overheads(scale)
    results["hashtable"] = hashes
    low, high = min(hashes.values()), max(hashes.values())
    print("hash-table write checks: %.0f%% .. %.0f%% across workloads "
          "(paper: %.0f%% .. %.0f%%)"
          % (low, high, *HASHTABLE_OVERHEAD_RANGE))
    for name, value in hashes.items():
        print("   %-16s %7.1f%%" % (name, value))

    message = demonstrate_hardware_limit()
    results["hardware_limit"] = message
    print("hardware watchpoints: %s" % message)

    vm = measure_vmprotect(scale)
    results["vmprotect"] = vm
    print("VAX DEBUG page protection on 042.fpppp: %.0f%% overhead, "
          "%d hits, %d false faults from page sharing"
          % (vm["overhead"], vm["hits"], vm["false_faults"]))
    return results


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
