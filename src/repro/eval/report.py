"""Run the entire evaluation and write a markdown report.

``python -m repro.eval.report [scale] [output.md]`` regenerates every
table and figure (E1-E9) and writes a single self-contained report —
the artifact a reviewer would diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time
from typing import List


def generate(scale: float = 0.5) -> str:
    from repro.eval import (ablations, baselines, breakeven, figure3,
                            nop_experiment, space, table1, table2)
    from repro.eval.figure3 import format_series
    from repro.eval.nop_experiment import format_table as format_nop
    from repro.eval.table1 import format_table as format_t1
    from repro.eval.table2 import format_table as format_t2

    sections: List[str] = []
    sections.append("# Practical Data Breakpoints — evaluation report")
    sections.append("Workload scale: %.2g.  Regenerate: "
                    "`python -m repro.eval.report %.2g`." % (scale, scale))

    start = time.time()
    sections.append("## E1 — Table 1: write-check overhead\n```")
    sections.append(format_t1(table1.measure_table1(scale)))
    sections.append("```")

    sections.append("## E4/E5 — Table 2: write-check elimination\n```")
    sections.append(format_t2(table2.measure_table2(scale)))
    sections.append("```")

    sections.append("## E3 — Figure 3: segment cache locality\n```")
    sections.append(format_series(figure3.measure_figure3(scale)))
    sections.append("```")

    sections.append("## E2 — nop-insertion σ (8 KB cache)\n```")
    sections.append(format_nop(nop_experiment.measure_sigma(scale)))
    sections.append("```")

    sections.append("## E6 — baselines\n```")
    trap = baselines.measure_trap_factor()
    sections.append("dbx trap factor: %.0fx" % trap)
    hashes = baselines.measure_hashtable_overheads(scale)
    sections.append("hash-table checks: %.0f%% .. %.0f%%"
                    % (min(hashes.values()), max(hashes.values())))
    sections.append(baselines.demonstrate_hardware_limit())
    vm = baselines.measure_vmprotect(scale)
    sections.append("VAX DEBUG model: %.0f%% overhead, %d false faults"
                    % (vm["overhead"], vm["false_faults"]))
    sections.append("```")

    sections.append("## E7 — bitmap space\n```")
    space_rows = {name: space.measure_workload(name, scale)
                  for name in ("022.li", "030.matrix300")}
    for name, row in space_rows.items():
        sections.append("%-16s %.2f%%" % (name, 100 * row["fraction"]))
    sections.append("```")

    sections.append("## E8 — break-even\n```")
    ranges = breakeven.compute_breakeven()
    sections.append("C: %.1f%%..%.1f%%   F: %.1f%%..%.1f%%"
                    % (*ranges["C"], *ranges["F"]))
    sections.append("```")

    sections.append("## E9 — ablations\n```")
    cache = ablations.sweep_cache_size(scale=scale)
    sections.append("cache size (gcc, Bitmap): " + ", ".join(
        "%dKB=%.0f%%" % (k // 1024, v) for k, v in cache.items()))
    safety = ablations.sweep_loop_safety(scale=scale)
    for label, row in safety.items():
        sections.append("%-18s %s" % (label, row))
    sections.append("```")

    sections.append("_Generated in %.0f seconds._" % (time.time() - start))
    return "\n\n".join(sections) + "\n"


def main(scale: float = 0.5, path: str = "evaluation_report.md") -> str:
    report = generate(scale)
    with open(path, "w") as handle:
        handle.write(report)
    print("wrote %s (%d bytes)" % (path, len(report)))
    return report


if __name__ == "__main__":
    scale_arg = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    path_arg = sys.argv[2] if len(sys.argv) > 2 else "evaluation_report.md"
    main(scale_arg, path_arg)
