"""Ablation studies for the reproduction's design choices.

Three knobs DESIGN.md calls out, each swept here:

* **cache size** — the §3.3.1 cache effects depend on how much of the
  instrumented program fits in the direct-mapped cache;
* **window-trap bulk** — procedure-call checks push a register window;
  whether steady-depth call chains thrash the window file depends on
  how many windows the overflow trap moves at once;
* **loop-optimization safety** — the paper measured the optimistic
  configuration (no alias/overflow guards, §4.6.2); `guard_aliases`
  trades eliminated checks for static soundness.

Run as ``python -m repro.eval.ablations [scale]``.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.optimizer.pipeline import build_plan

CACHE_SIZES = [16 * 1024, 64 * 1024, 256 * 1024]
BULKS = [1, 4]


def sweep_cache_size(workload: str = "001.gcc1.35",
                     scale: float = 0.5) -> Dict[int, float]:
    """Bitmap overhead vs cache size: smaller caches amplify the code
    growth that checks cause (§3.3.1)."""
    from repro.minic.codegen import compile_source
    from repro.session import DebugSession, run_uninstrumented
    from repro.workloads import WORKLOADS, workload_source

    spec = WORKLOADS[workload]
    asm = compile_source(workload_source(workload, scale), lang=spec.lang)
    results = {}
    for size in CACHE_SIZES:
        _code, base = run_uninstrumented(asm, cache_bytes=size)
        session = DebugSession.from_asm(asm, strategy="Bitmap",
                                        cache_bytes=size)
        session.mrs.enable()
        session.run()
        results[size] = 100.0 * (session.cpu.cycles /
                                 base.cpu.cycles - 1.0)
    return results


#: deep steady recursion with per-call stores — the worst case for
#: procedure-call checks pushing a register window at full depth
_DEEP_RECURSION = """
int depths[40];
int walk(int d, int acc) {
    int local;
    local = acc + d;
    depths[d % 40] = local;
    if (d == 0) return local;
    return walk(d - 1, local % 10007);
}
int main() {
    register int round;
    int total;
    total = 0;
    for (round = 0; round < 120; round = round + 1) {
        total = (total + walk(30, round)) % 100003;
    }
    print(total);
    return 0;
}
"""


def sweep_window_bulk(scale: float = 0.5) -> Dict[int, float]:
    """Bitmap overhead with single-window vs bulk spill traps.

    Procedure-call checks at steady deep recursion trap on *every*
    save/restore pair when the overflow handler moves one window, and
    only on depth changes when it moves several.
    """
    import repro.isa.registers as registers
    from repro.minic.codegen import compile_source
    from repro.session import DebugSession, run_uninstrumented

    asm = compile_source(_DEEP_RECURSION)
    results = {}
    original = registers.WINDOW_TRAP_BULK
    try:
        for bulk in BULKS:
            registers.WINDOW_TRAP_BULK = bulk
            _code, base = run_uninstrumented(asm)
            session = DebugSession.from_asm(asm, strategy="Bitmap")
            session.mrs.enable()
            session.run()
            results[bulk] = {
                "baseline_cycles": base.cpu.cycles,
                "checked_cycles": session.cpu.cycles,
                "overhead_pct": 100.0 * (session.cpu.cycles /
                                         base.cpu.cycles - 1.0),
            }
    finally:
        registers.WINDOW_TRAP_BULK = original
    return results


def sweep_loop_safety(workload: str = "030.matrix300",
                      scale: float = 0.5) -> Dict[str, Dict[str, float]]:
    """Elimination under optimistic vs alias-guarded loop optimization."""
    from repro.minic.codegen import compile_source
    from repro.workloads import WORKLOADS, workload_source

    spec = WORKLOADS[workload]
    asm = compile_source(workload_source(workload, scale), lang=spec.lang)
    results = {}
    for label, kwargs in (
            ("optimistic", {}),
            ("alias-guarded", {"guard_aliases": True}),
            ("overflow-guarded", {"guard_overflow": True})):
        _stmts, plan = build_plan(asm, mode="full", **kwargs)
        summary = plan.summary()
        summary["preheaders"] = len(plan.preheaders)
        results[label] = summary
    return results


def main(scale: float = 0.5) -> Dict[str, object]:
    results: Dict[str, object] = {}

    cache = sweep_cache_size(scale=scale)
    results["cache_size"] = cache
    print("Bitmap overhead on 001.gcc1.35 vs cache size:")
    for size, overhead in cache.items():
        print("  %4d KB: %6.1f%%" % (size // 1024, overhead))

    bulk = sweep_window_bulk(scale=scale)
    results["window_bulk"] = bulk
    print("Deep recursion vs window-trap bulk (note: single-window "
          "traps slow the *baseline* too, shrinking relative overhead):")
    for count, row in bulk.items():
        print("  spill %d/trap: base %8d cy, checked %8d cy, "
              "overhead %6.1f%%" % (count, row["baseline_cycles"],
                                    row["checked_cycles"],
                                    row["overhead_pct"]))

    safety = sweep_loop_safety(scale=scale)
    results["loop_safety"] = safety
    print("matrix300 static eliminations per loop-safety mode:")
    for label, row in safety.items():
        print("  %-18s %s" % (label, row))
    return results


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
