"""Experiment E8: the §3.3.3 segment-caching break-even analysis.

"To address this issue, we compared the cycle counts for
BitmapInlineRegisters and Cache.  BitmapInlineRegisters executes 12
register instructions and 2 loads.  Cache executes 6 register
instructions and no loads if there is a segment cache hit, 13 register
instructions and 1 load if there is a cache miss, and 26 register
instructions and 2 loads if there is a full lookup.  Assuming that
loads take between 2-8 cycles, the break-even point for C programs
occurs when the percentage of write instructions requiring a full
lookup is 24.3-44.0%.  For FORTRAN programs, the break-even point is
16.4-36.7%."

We redo the analysis with *our* implementations' instruction counts
(derived from the generated check code) and measured cache-hit rates.

Run as ``python -m repro.eval.breakeven``.
"""

from __future__ import annotations

import sys
from typing import Dict, Tuple

#: instruction counts of our generated code paths (checks enabled,
#: segment unmonitored), counted from repro.instrument.strategies:
#: common prefix (tst/bne/nop/addr) = 4 register instructions.
REGISTERS_REG_INSNS = 4 + 5        # + srl,sll,tst,be,nop
REGISTERS_LOADS = 1                # segment-table entry
REGISTERS_FULL_EXTRA_REG = 10      # full bit test registers
REGISTERS_FULL_EXTRA_LOADS = 1

CACHE_HIT_REG_INSNS = 4 + 4        # srl,cmp,be,nop
CACHE_MISS_EXTRA_REG = 2 + 12      # call,nop + miss routine registers
CACHE_MISS_EXTRA_LOADS = 1
CACHE_FULL_EXTRA_REG = 10
CACHE_FULL_EXTRA_LOADS = 1


def cost_registers(full_fraction: float, load_cost: float) -> float:
    base = REGISTERS_REG_INSNS + REGISTERS_LOADS * load_cost
    extra = full_fraction * (REGISTERS_FULL_EXTRA_REG
                             + REGISTERS_FULL_EXTRA_LOADS * load_cost)
    return base + extra


def cost_cache(full_fraction: float, miss_fraction: float,
               load_cost: float) -> float:
    """Expected cycles per check for the Cache strategy.

    ``miss_fraction`` — segment-cache misses that find an unmonitored
    segment (update the cache); ``full_fraction`` — checks that need
    the full bitmap lookup (monitored segment).
    """
    cost = CACHE_HIT_REG_INSNS
    cost += miss_fraction * (CACHE_MISS_EXTRA_REG
                             + CACHE_MISS_EXTRA_LOADS * load_cost)
    cost += full_fraction * (CACHE_MISS_EXTRA_REG + CACHE_FULL_EXTRA_REG
                             + (CACHE_MISS_EXTRA_LOADS
                                + CACHE_FULL_EXTRA_LOADS) * load_cost)
    return cost


def breakeven_full_fraction(miss_fraction: float,
                            load_cost: float) -> float:
    """Full-lookup fraction at which Cache stops beating Registers."""
    low, high = 0.0, 1.0
    for _ in range(60):
        mid = (low + high) / 2
        if cost_cache(mid, miss_fraction, load_cost) < \
                cost_registers(mid, load_cost):
            low = mid
        else:
            high = mid
    return (low + high) / 2


def compute_breakeven(miss_fraction_c: float = 0.05,
                      miss_fraction_f: float = 0.10
                      ) -> Dict[str, Tuple[float, float]]:
    """Break-even full-lookup percentages for load costs 2..8."""
    results = {}
    for label, miss in (("C", miss_fraction_c), ("F", miss_fraction_f)):
        fast = breakeven_full_fraction(miss, 2.0)
        slow = breakeven_full_fraction(miss, 8.0)
        results[label] = (100.0 * min(fast, slow),
                          100.0 * max(fast, slow))
    return results


def main() -> Dict[str, Tuple[float, float]]:
    results = compute_breakeven()
    print("Segment-caching break-even full-lookup rate "
          "(load cost swept 2..8 cycles)")
    print("  C programs:       %.1f%% .. %.1f%%   (paper: 24.3%% .. "
          "44.0%%)" % results["C"])
    print("  FORTRAN programs: %.1f%% .. %.1f%%   (paper: 16.4%% .. "
          "36.7%%)" % results["F"])
    print("Below the break-even rate, segment caching wins; above it, "
          "the extra cache-check instructions cancel its benefit "
          "(§3.3.3).")
    return results


if __name__ == "__main__":
    sys.exit(0 if main() else 1)
