"""Experiment E4/E5: reproduce Table 2 — write-check elimination.

For each workload we report, as percentages of dynamic write checks:

* checks **eliminated** by symbol matching / loop-invariant motion /
  monotonic range conversion (and their total);
* pre-header checks **generated** (LI and range), per §4.6.1;
* the runtime **overhead** of the ``Full`` (symbol + loop) and ``Sym``
  (symbol only) configurations, per §4.6.2 — both include the
  supporting %fp-definition and indirect-jump verification costs.

Run as ``python -m repro.eval.table2 [scale]``.
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Dict, List, Optional

from repro.eval.overhead import WorkloadBench, average
from repro.eval.paper_data import TABLE2_AVERAGES
from repro.instrument.plan import (ELIM_LOOP_INVARIANT, ELIM_RANGE,
                                   ELIM_SYMBOL)
from repro.optimizer.pipeline import build_plan
from repro.workloads import C_WORKLOADS, F_WORKLOADS, WORKLOAD_ORDER, \
    WORKLOADS

#: strategy used for the remaining (uneliminated) checks; the paper's
#: recommended implementation (§5)
CHECK_STRATEGY = "BitmapInlineRegisters"

COLUMNS = ["sym", "li", "range", "total", "gen_li", "gen_range", "full",
           "sym_overhead"]


def measure_workload(name: str, scale: float = 1.0) -> Dict[str, float]:
    bench = WorkloadBench(name, scale=scale)
    base = bench.baseline()

    # counting run (Full plan, writes recorded)
    _stmts, full_plan = build_plan(bench.asm, mode="full")
    counted = bench.run_instrumented(CHECK_STRATEGY, enabled=True,
                                     plan=full_plan, record_writes=True)
    trace = counted.session.cpu.write_trace
    total_writes = len(trace)
    by_site = Counter(site for site, _addr, _width in trace
                      if site is not None)
    eliminated = Counter()
    for site, count in by_site.items():
        kind = full_plan.eliminate.get(site)
        if kind is not None:
            eliminated[kind] += count

    def pct(value: float) -> float:
        return 100.0 * value / total_writes if total_writes else 0.0

    result = {
        "sym": pct(eliminated[ELIM_SYMBOL]),
        "li": pct(eliminated[ELIM_LOOP_INVARIANT]),
        "range": pct(eliminated[ELIM_RANGE]),
        "gen_li": pct(counted.tag_counts.get("phead_li", 0)),
        "gen_range": pct(counted.tag_counts.get("phead_range", 0)),
    }
    result["total"] = result["sym"] + result["li"] + result["range"]

    # overhead runs (no write recording)
    _stmts, full_plan2 = build_plan(bench.asm, mode="full")
    full_run = bench.run_instrumented(CHECK_STRATEGY, enabled=True,
                                      plan=full_plan2)
    result["full"] = 100.0 * (full_run.cycles / base.cycles - 1.0)

    _stmts, sym_plan = build_plan(bench.asm, mode="sym")
    sym_run = bench.run_instrumented(CHECK_STRATEGY, enabled=True,
                                     plan=sym_plan)
    result["sym_overhead"] = 100.0 * (sym_run.cycles / base.cycles - 1.0)
    return result


def measure_table2(scale: float = 1.0,
                   workloads: Optional[List[str]] = None
                   ) -> Dict[str, Dict[str, float]]:
    workloads = workloads or WORKLOAD_ORDER
    return {name: measure_workload(name, scale) for name in workloads}


def summarize(results: Dict[str, Dict[str, float]]
              ) -> Dict[str, Dict[str, float]]:
    summary = {}
    for group, names in (("C", C_WORKLOADS), ("F", F_WORKLOADS),
                         ("overall", list(results))):
        rows = [results[n] for n in names if n in results]
        if rows:
            summary[group] = {col: average([r[col] for r in rows])
                              for col in COLUMNS}
    return summary


def format_table(results: Dict[str, Dict[str, float]],
                 with_paper: bool = True) -> str:
    header = ("%-18s" % "Program") + "".join("%11s" % c for c in COLUMNS)
    lines = [header, "-" * len(header)]
    for name, row in results.items():
        lang = WORKLOADS[name].lang
        cells = "(%s) %-14s" % (lang, name)
        cells += "".join("%10.1f%%" % row[c] for c in COLUMNS)
        lines.append(cells)
    lines.append("-" * len(header))
    labels = {"C": "C AVERAGE", "F": "FORTRAN AVERAGE",
              "overall": "OVERALL AVERAGE"}
    for group, row in summarize(results).items():
        cells = "%-18s" % labels[group]
        cells += "".join("%10.1f%%" % row[c] for c in COLUMNS)
        lines.append(cells)
        if with_paper and group in TABLE2_AVERAGES:
            cells = "%-18s" % "  (paper)"
            cells += "".join("%10.1f%%" % TABLE2_AVERAGES[group][c]
                             for c in COLUMNS)
            lines.append(cells)
    return "\n".join(lines)


def main(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    results = measure_table2(scale)
    print("Table 2: write-check elimination (measured, scale=%.2g)"
          % scale)
    print(format_table(results))
    return results


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
