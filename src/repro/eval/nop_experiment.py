"""Experiment E2: the §3.3.1 cache-effect experiment (Table 1's σ).

"We inserted 2, 4, 8, 16, or 32 nop instructions before each write
instruction.  In the absence of cache effects, the overhead should be
linearly dependent on the number of instructions inserted. ... For each
program we performed a simple linear regression on the measured
overhead ... any deviation from the expected linear behavior must be
caused by cache alignment effects.  The last column of Table 1 shows
the standard deviation of the differences between expected and
observed overhead."

Run as ``python -m repro.eval.nop_experiment [scale]``.
"""

from __future__ import annotations

import math
import sys
from typing import Dict, List, Optional, Tuple

from repro.eval.overhead import WorkloadBench
from repro.instrument.strategies import CheckStrategy
from repro.instrument.writes import WriteSite
from repro.workloads import WORKLOAD_ORDER

NOP_COUNTS = [2, 4, 8, 16, 32]

#: The cache must be comparable to the instrumented working set for
#: alignment effects to exist at all; the paper's SS2-class machine had
#: a 64 KB cache against megabyte programs, our mimics are ~10-60 KB of
#: code+data, so the experiment runs against an 8 KB cache.
NOP_CACHE_BYTES = 8 * 1024


class NopStrategy(CheckStrategy):
    """Inserts *count* nops after each write instead of a check."""

    name = "Nops"

    def __init__(self, count: int, layout=None):
        super().__init__(layout)
        self.count = count

    def site_check(self, site: WriteSite, is_read: bool = False
                   ) -> List[str]:
        return ["nop"] * self.count

    def library(self) -> str:
        return "\t.text\n"


def linear_regression(xs: List[float], ys: List[float]
                      ) -> Tuple[float, float]:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx if sxx else 0.0
    intercept = mean_y - slope * mean_x
    return slope, intercept


def measure_workload(name: str, scale: float = 1.0
                     ) -> Dict[str, float]:
    """Overheads per nop count plus the regression residual σ."""
    bench = WorkloadBench(name, scale=scale,
                          cache_bytes=NOP_CACHE_BYTES)
    overheads = []
    for count in NOP_COUNTS:
        run = bench.run_instrumented(NopStrategy(count), enabled=False)
        base = bench.baseline()
        overheads.append(100.0 * (run.cycles / base.cycles - 1.0))
    slope, intercept = linear_regression(
        [float(c) for c in NOP_COUNTS], overheads)
    residuals = [y - (slope * c + intercept)
                 for c, y in zip(NOP_COUNTS, overheads)]
    sigma = math.sqrt(sum(r * r for r in residuals) / len(residuals))
    result = {"nop%d" % c: o for c, o in zip(NOP_COUNTS, overheads)}
    result.update({"slope": slope, "intercept": intercept,
                   "sigma": sigma})
    return result


def measure_sigma(scale: float = 1.0,
                  workloads: Optional[List[str]] = None
                  ) -> Dict[str, Dict[str, float]]:
    workloads = workloads or WORKLOAD_ORDER
    return {name: measure_workload(name, scale) for name in workloads}


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    header = "%-18s" % "Program"
    header += "".join("%9s" % ("nop%d" % c) for c in NOP_COUNTS)
    header += "%9s%9s" % ("slope", "sigma")
    lines = [header, "-" * len(header)]
    for name, row in results.items():
        cells = "%-18s" % name
        cells += "".join("%8.1f%%" % row["nop%d" % c] for c in NOP_COUNTS)
        cells += "%9.2f%8.1f%%" % (row["slope"], row["sigma"])
        lines.append(cells)
    return "\n".join(lines)


def main(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    results = measure_sigma(scale)
    print("Nop-insertion cache-effect experiment (σ column of Table 1)")
    print(format_table(results))
    return results


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
