"""Experiment E8: Table-1-style overhead per *watchpoint kind*.

Table 1 prices the write-check fast path; this table prices the layer
above it — what one armed watchpoint costs per kind once the predicate
engine sits between MRS notifications and the debugger:

* **Unconditional** — plain data breakpoint, every hit fires;
* **Conditional** — ``$value == <sentinel>`` predicate chosen to
  reject >99% of hits, so the row measures pure evaluation cost;
* **Transition** — the same predicate armed on the ``rise`` edge, so
  the row adds shadow-truth tracking on top of evaluation.

Predicate evaluation happens in the host-level engine, not in
simulated instructions, so the honest metric is wall-clock time of the
driven debugger loop (the same chunked-stepping protocol
``scripts/bench_replay.py`` uses), as overhead over a run with no
watchpoint armed.  Simulated cycles would show all three kinds as
identical.

Run as ``python -m repro.eval.watchkinds [scale]``.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.debugger import Debugger
from repro.workloads import WORKLOADS, workload_source

#: (workload, watched expression) — same idiom as bench_replay:
#: globals each workload is known to write throughout its run.
TARGETS: List[Tuple[str, str]] = [
    ("023.eqntott", "__seed"),
    ("030.matrix300", "c[0]"),
]

#: table columns, in print order
KINDS = ["Unconditional", "Conditional", "Transition"]

#: a value no workload ever stores, so the conditional predicate
#: rejects (practically) every hit and the row isolates eval cost
SENTINEL = 123456789

#: instructions per step chunk when driving the debugger loop
STRIDE = 4096


def _make_debugger(name: str, scale: float, expr: str,
                   kind: Optional[str]) -> Debugger:
    workload = WORKLOADS[name]
    debugger = Debugger.for_source(workload_source(name, scale),
                                   lang=workload.lang)
    predicate = "$value == %d" % SENTINEL
    if kind == "Unconditional":
        debugger.watch(expr, action="log")
    elif kind == "Conditional":
        debugger.watch(expr, action="log", expr=predicate)
    elif kind == "Transition":
        debugger.watch(expr, action="log", expr=predicate, when="rise")
    elif kind is not None:
        raise ValueError("unknown watchpoint kind %r" % kind)
    return debugger


def _timed_run(debugger: Debugger) -> float:
    """Drive the debugger to exit in STRIDE-sized chunks; wall time."""
    begin = time.perf_counter()
    reason = "step"
    while reason == "step":
        reason = debugger.step(STRIDE)
    elapsed = time.perf_counter() - begin
    if reason != "exited":
        raise SystemExit("workload did not run to exit: %r" % reason)
    return elapsed


def measure_workload(name: str, expr: str, scale: float = 0.5,
                     repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Per-kind overhead (%) of one armed watchpoint on *name*.

    Returns ``{kind: {"overhead": %, "hits": n, "evals": n,
    "suppressed": n, "fired": n}}`` plus a ``"None"`` row holding the
    baseline wall time.  Plain/armed repeats are interleaved (best-of)
    so machine-load drift biases both sides equally.
    """
    _timed_run(_make_debugger(name, scale, expr, None))  # warm-up
    samples: Dict[Optional[str], List[float]] = \
        {kind: [] for kind in [None] + KINDS}
    stats: Dict[str, Dict[str, int]] = {}
    for _ in range(max(1, repeats)):
        for kind in [None] + KINDS:
            debugger = _make_debugger(name, scale, expr, kind)
            samples[kind].append(_timed_run(debugger))
            if kind is not None:
                watchpoint = debugger.watchpoints[0]
                stats[kind] = {"hits": watchpoint.stats.hits,
                               "evals": watchpoint.stats.evals,
                               "suppressed": watchpoint.stats.suppressed,
                               "fired": watchpoint.stats.fired}
    base = min(samples[None])
    results: Dict[str, Dict[str, float]] = {
        "None": {"seconds": base}}
    for kind in KINDS:
        row = dict(stats[kind])
        row["overhead"] = 100.0 * (min(samples[kind]) / base - 1.0)
        results[kind] = row
    return results


def measure_watchkinds(scale: float = 0.5, repeats: int = 3,
                       targets: Optional[List[Tuple[str, str]]] = None
                       ) -> Dict[str, Dict[str, Dict[str, float]]]:
    targets = targets or TARGETS
    return {name: measure_workload(name, expr, scale, repeats)
            for name, expr in targets}


def format_table(results: Dict[str, Dict[str, Dict[str, float]]]
                 ) -> str:
    header = ["%-18s" % "Program"] + ["%14s" % kind for kind in KINDS]
    lines = ["".join(header), "-" * (18 + 14 * len(KINDS))]
    for name, rows in results.items():
        cells = ["%-18s" % name]
        cells += ["%13.1f%%" % rows[kind]["overhead"] for kind in KINDS]
        lines.append("".join(cells))
        detail = rows["Conditional"]
        lines.append("    %d hits, %d evals, %d suppressed, %d fired "
                     "(conditional)"
                     % (detail["hits"], detail["evals"],
                        detail["suppressed"], detail["fired"]))
    return "\n".join(lines)


def main(scale: float = 0.5) -> Dict[str, Dict[str, Dict[str, float]]]:
    results = measure_watchkinds(scale)
    print("Watchpoint-kind overhead (wall-clock, one armed watchpoint, "
          "scale=%.2g)" % scale)
    print(format_table(results))
    return results


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
