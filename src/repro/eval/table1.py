"""Experiment E1: reproduce Table 1 — MRS overhead per write-check
implementation, on the ten SPEC-mimic workloads.

Run as ``python -m repro.eval.table1 [scale]``.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.eval.overhead import WorkloadBench, average, truncated
from repro.eval.paper_data import TABLE1, TABLE1_AVERAGES, TABLE1_COLUMNS
from repro.workloads import C_WORKLOADS, F_WORKLOADS, WORKLOAD_ORDER, \
    WORKLOADS


def measure_workload(name: str, scale: float = 1.0,
                     columns: Optional[List[str]] = None,
                     max_instructions: Optional[int] = None,
                     faults=None) -> Dict[str, float]:
    """Overhead (%) of each Table 1 column for one workload.

    *max_instructions* / *faults* (a :class:`~repro.faults.FaultPlan`,
    possibly carrying cycle budgets) bound each run; cells whose runs
    were cut short come back as truncated :class:`Partial` values.
    """
    columns = columns or TABLE1_COLUMNS
    bench = WorkloadBench(name, scale=scale,
                          max_instructions=max_instructions, faults=faults)
    results: Dict[str, float] = {}
    for column in columns:
        if column == "Disabled":
            results[column] = bench.overhead("Bitmap", enabled=False)
        else:
            results[column] = bench.overhead(column, enabled=True)
    return results


def measure_table1(scale: float = 1.0,
                   workloads: Optional[List[str]] = None,
                   max_instructions: Optional[int] = None,
                   faults=None) -> Dict[str, Dict[str, float]]:
    workloads = workloads or WORKLOAD_ORDER
    return {name: measure_workload(name, scale,
                                   max_instructions=max_instructions,
                                   faults=faults)
            for name in workloads}


def summarize(results: Dict[str, Dict[str, float]]
              ) -> Dict[str, Dict[str, float]]:
    """C / FORTRAN / overall averages, as in the bottom of Table 1."""
    summary = {}
    for group, names in (("C", C_WORKLOADS), ("F", F_WORKLOADS),
                         ("overall", list(results))):
        rows = [results[n] for n in names if n in results]
        if not rows:
            continue
        summary[group] = {col: average([r[col] for r in rows])
                          for col in rows[0]}
    return summary


def _cell(value: float) -> str:
    """One 14-wide table cell; truncated measurements get a ``*``."""
    if truncated(value):
        return "%12.1f%%*" % value
    return "%13.1f%%" % value


def format_table(results: Dict[str, Dict[str, float]],
                 with_paper: bool = True) -> str:
    columns = TABLE1_COLUMNS
    header = ["%-18s" % "Program"] + ["%14s" % c[:14] for c in columns]
    lines = ["".join(header), "-" * (18 + 14 * len(columns))]
    any_truncated = False
    for name in results:
        lang = WORKLOADS[name].lang
        row = ["(%s) %-14s" % (lang, name)]
        row += [_cell(results[name][c]) for c in columns]
        any_truncated = any_truncated or \
            any(truncated(results[name][c]) for c in columns)
        lines.append("".join(row))
    lines.append("-" * (18 + 14 * len(columns)))
    for group, row in summarize(results).items():
        label = {"C": "C AVERAGE", "F": "FORTRAN AVERAGE",
                 "overall": "OVERALL AVERAGE"}[group]
        cells = ["%-18s" % label]
        cells += [_cell(row[c]) for c in columns]
        lines.append("".join(cells))
        if with_paper and group in TABLE1_AVERAGES:
            cells = ["%-18s" % ("  (paper)")]
            cells += ["%13.1f%%" % TABLE1_AVERAGES[group][c]
                      for c in columns]
            lines.append("".join(cells))
    if any_truncated:
        lines.append("* = run truncated by a watchdog budget; "
                     "overhead covers only the executed prefix")
    return "\n".join(lines)


def main(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    results = measure_table1(scale)
    print("Table 1: monitored region service overhead "
          "(measured, scale=%.2g)" % scale)
    print(format_table(results))
    if scale == 1.0:
        print("\nPer-program paper values (for shape comparison):")
        for name in results:
            paper = TABLE1.get(name)
            if paper:
                print("  %-15s paper Bitmap=%6.1f%%  Cache=%6.1f%%  "
                      "measured Bitmap=%6.1f%%  Cache=%6.1f%%"
                      % (name, paper["Bitmap"], paper["Cache"],
                         results[name]["Bitmap"], results[name]["Cache"]))
    return results


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
