"""Numbers reported in the paper, for paper-vs-measured reports.

Table 1: monitored region service overhead (percent) per write-check
implementation.  Table 2: write-check elimination results (percent of
dynamic write checks).  Headline constants from the running text.
"""

from __future__ import annotations

#: Table 1 columns, in paper order
TABLE1_COLUMNS = ["Disabled", "Bitmap", "BitmapInline",
                  "BitmapInlineRegisters", "Cache", "CacheInline"]

#: Table 1 rows: program -> overhead % per column (sigma omitted)
TABLE1 = {
    "023.eqntott":   {"Disabled": -3.2, "Bitmap": 0.2,
                      "BitmapInline": -0.5, "BitmapInlineRegisters": -1.7,
                      "Cache": -3.7, "CacheInline": -4.4},
    "008.espresso":  {"Disabled": 22.2, "Bitmap": 70.4,
                      "BitmapInline": 66.2, "BitmapInlineRegisters": 40.4,
                      "Cache": 29.6, "CacheInline": 22.2},
    "001.gcc1.35":   {"Disabled": 28.1, "Bitmap": 75.4,
                      "BitmapInline": 83.6, "BitmapInlineRegisters": 63.1,
                      "Cache": 49.7, "CacheInline": 53.3},
    "022.li":        {"Disabled": 60.2, "Bitmap": 128.5,
                      "BitmapInline": 124.2, "BitmapInlineRegisters": 94.8,
                      "Cache": 77.2, "CacheInline": 62.3},
    "015.doduc":     {"Disabled": 19.3, "Bitmap": 58.6,
                      "BitmapInline": 73.3, "BitmapInlineRegisters": 45.2,
                      "Cache": 21.1, "CacheInline": 37.8},
    "042.fpppp":     {"Disabled": 33.8, "Bitmap": 55.4,
                      "BitmapInline": 68.7, "BitmapInlineRegisters": 56.1,
                      "Cache": 41.2, "CacheInline": 53.8},
    "030.matrix300": {"Disabled": 7.5, "Bitmap": 39.1,
                      "BitmapInline": 31.8, "BitmapInlineRegisters": 25.3,
                      "Cache": 15.4, "CacheInline": 13.8},
    "020.nasker":    {"Disabled": 9.2, "Bitmap": 44.5,
                      "BitmapInline": 40.0, "BitmapInlineRegisters": 37.2,
                      "Cache": 17.2, "CacheInline": 19.6},
    "013.spice2g6":  {"Disabled": 7.1, "Bitmap": 30.9,
                      "BitmapInline": 29.1, "BitmapInlineRegisters": 25.1,
                      "Cache": 15.9, "CacheInline": 15.7},
    "047.tomcatv":   {"Disabled": 13.6, "Bitmap": 44.7,
                      "BitmapInline": 36.6, "BitmapInlineRegisters": 32.5,
                      "Cache": 19.2, "CacheInline": 27.8},
}

TABLE1_AVERAGES = {
    "C":       {"Disabled": 26.8, "Bitmap": 68.6, "BitmapInline": 68.4,
                "BitmapInlineRegisters": 49.2, "Cache": 38.2,
                "CacheInline": 33.3},
    "F":       {"Disabled": 15.1, "Bitmap": 45.5, "BitmapInline": 46.6,
                "BitmapInlineRegisters": 36.9, "Cache": 21.7,
                "CacheInline": 28.1},
    "overall": {"Disabled": 19.8, "Bitmap": 54.8, "BitmapInline": 55.3,
                "BitmapInlineRegisters": 41.8, "Cache": 28.3,
                "CacheInline": 30.2},
}

#: Table 2: checks eliminated / generated (% of dynamic write checks)
#: and runtime overhead of Full / Sym optimization (%)
TABLE2 = {
    "023.eqntott":   {"sym": 71.9, "li": 0.0, "range": 0.6, "total": 72.5,
                      "gen_li": 0.0, "gen_range": 0.0,
                      "full": 0.5, "sym_overhead": 4.0},
    "008.espresso":  {"sym": 23.1, "li": 19.5, "range": 15.4,
                      "total": 58.0, "gen_li": 0.9, "gen_range": 7.4,
                      "full": 27.8, "sym_overhead": 39.9},
    "001.gcc1.35":   {"sym": 49.0, "li": 1.3, "range": 1.8, "total": 52.1,
                      "gen_li": 0.0, "gen_range": 0.8,
                      "full": 80.4, "sym_overhead": 109.2},
    "022.li":        {"sym": 75.9, "li": 0.0, "range": 0.0, "total": 75.9,
                      "gen_li": 0.0, "gen_range": 0.0,
                      "full": 89.2, "sym_overhead": 156.4},
    "015.doduc":     {"sym": 84.7, "li": 0.1, "range": 10.6,
                      "total": 95.4, "gen_li": 0.1, "gen_range": 4.6,
                      "full": 3.1, "sym_overhead": 80.8},
    "042.fpppp":     {"sym": 70.4, "li": 0.0, "range": 10.8,
                      "total": 81.2, "gen_li": 0.0, "gen_range": 0.0,
                      "full": 11.9, "sym_overhead": 39.5},
    "030.matrix300": {"sym": 51.7, "li": 0.0, "range": 48.3,
                      "total": 100.0, "gen_li": 0.2, "gen_range": 0.2,
                      "full": 0.4, "sym_overhead": 18.8},
    "020.nasker":    {"sym": 42.6, "li": 17.3, "range": 34.5,
                      "total": 94.4, "gen_li": 0.1, "gen_range": 0.2,
                      "full": 13.9, "sym_overhead": 26.9},
    "013.spice2g6":  {"sym": 77.7, "li": 0.2, "range": 1.0, "total": 78.9,
                      "gen_li": 0.0, "gen_range": 0.4,
                      "full": 11.4, "sym_overhead": 34.4},
    "047.tomcatv":   {"sym": 70.4, "li": 0.0, "range": 10.8,
                      "total": 81.2, "gen_li": 0.0, "gen_range": 0.0,
                      "full": 8.2, "sym_overhead": 40.6},
}

TABLE2_AVERAGES = {
    "C":       {"sym": 55.0, "li": 5.2, "range": 4.5, "total": 64.6,
                "gen_li": 0.2, "gen_range": 2.1,
                "full": 49.5, "sym_overhead": 77.4},
    "F":       {"sym": 66.3, "li": 2.9, "range": 19.3, "total": 88.5,
                "gen_li": 0.1, "gen_range": 0.9,
                "full": 8.1, "sym_overhead": 40.2},
    "overall": {"sym": 61.7, "li": 3.8, "range": 13.4, "total": 79.0,
                "gen_li": 0.1, "gen_range": 1.4,
                "full": 24.7, "sym_overhead": 55.1},
}

#: §1 / §3 headline numbers
DBX_OVERHEAD_FACTOR = 85000
HASHTABLE_OVERHEAD_RANGE = (209.0, 642.0)
BITMAP_SPACE_FRACTION = 0.03
HEADLINE_BITMAP_OVERHEAD = 42.0   # "average overhead of 42%"
HEADLINE_OPTIMIZED_OVERHEAD = 25.0
HEADLINE_CHECKS_ELIMINATED = 79.0
#: §3.3.3 break-even full-lookup rates for load costs 2..8 cycles
BREAKEVEN_C = (24.3, 44.0)
BREAKEVEN_F = (16.4, 36.7)
#: hardware watchpoint capacities (§1)
HW_WATCHPOINTS = {"i386": 4, "R4000": 1, "SPARC": 1}
