"""Overhead measurement: instrumented vs. uninstrumented cycle counts.

The protocol follows §3.3: the monitored region service is attached and
*enabled* but no monitored regions exist (Table 1 overheads are
"independent of the number of breakpoints in use"); the "Disabled" row
runs the same binary with the global disabled flag set.

Graceful degradation: a bench may be given a cycle/instruction/trap
budget (directly or via a :class:`~repro.faults.FaultPlan`).  When the
watchdog trips, runs return partial counts instead of raising, and the
derived overheads are :class:`Partial` floats marked ``truncated`` so
they stay distinguishable through averaging and formatting.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.layout import MonitorLayout
from repro.faults import FaultPlan
from repro.instrument.plan import OptimizationPlan
from repro.machine.costs import CostModel, DEFAULT_COSTS
from repro.minic.codegen import compile_source
from repro.session import DebugSession, run_uninstrumented
from repro.workloads import WORKLOADS, workload_source


class Partial(float):
    """A measurement cut short by a watchdog budget.

    Behaves as a plain float in arithmetic and formatting, but carries
    ``truncated = True`` so tables can flag it and averages can
    propagate the mark.
    """

    truncated = True


def truncated(value) -> bool:
    """True if *value* (a float or RunResult) was cut short."""
    return bool(getattr(value, "truncated", False))


class RunResult:
    """Cycle/instruction counts of one simulated run.

    ``truncated`` is True when the run was stopped by a watchdog budget
    rather than running to completion; the counts then cover only the
    executed prefix.
    """

    __slots__ = ("cycles", "instructions", "stores", "tag_cycles",
                 "tag_counts", "output", "hits", "session", "truncated")

    def __init__(self, cycles: int, instructions: int, stores: int,
                 tag_cycles: Dict[str, int], tag_counts: Dict[str, int],
                 output: List[str], hits: int = 0, session=None,
                 truncated: bool = False):
        self.cycles = cycles
        self.instructions = instructions
        self.stores = stores
        self.tag_cycles = tag_cycles
        self.tag_counts = tag_counts
        self.output = output
        self.hits = hits
        self.session = session
        self.truncated = truncated


class WorkloadBench:
    """One workload, compiled once, runnable under many configurations.

    *max_instructions* and/or *faults* (a :class:`FaultPlan` with
    budgets) bound every run; exhausting a budget yields a truncated
    :class:`RunResult` instead of an exception.
    """

    def __init__(self, name: str, scale: float = 1.0,
                 costs: CostModel = DEFAULT_COSTS,
                 cache_bytes: Optional[int] = None,
                 max_instructions: Optional[int] = None,
                 faults: Optional[FaultPlan] = None):
        self.name = name
        self.spec = WORKLOADS[name]
        self.scale = scale
        self.costs = costs
        self.max_instructions = max_instructions
        self.faults = faults
        from repro.machine.cache import DEFAULT_CACHE_BYTES
        self.cache_bytes = cache_bytes if cache_bytes is not None \
            else DEFAULT_CACHE_BYTES
        self.asm = compile_source(workload_source(name, scale),
                                  lang=self.spec.lang)
        self._baseline: Optional[RunResult] = None

    def _budget_watchdog(self, mrs=None, output=None):
        """Watchdog for one run, or None when the bench is unbounded."""
        if self.faults is not None:
            watchdog = self.faults.watchdog(mrs=mrs, output=output)
            if watchdog is not None:
                return watchdog
        if self.max_instructions is not None:
            from repro.machine.cpu import Watchdog
            return Watchdog(max_instructions=self.max_instructions,
                            snapshot=False, mrs=mrs, output=output)
        return None

    def baseline(self, record_writes: bool = False) -> RunResult:
        if self._baseline is None or record_writes:
            code, loaded = run_uninstrumented(
                self.asm, costs=self.costs, record_writes=record_writes,
                cache_bytes=self.cache_bytes,
                watchdog=self._budget_watchdog(), on_limit="partial")
            was_cut = code is None
            if not was_cut and code != 0:
                raise RuntimeError("%s exited with %d" % (self.name, code))
            cpu = loaded.cpu
            result = RunResult(cpu.cycles, cpu.instructions, cpu.stores,
                               dict(cpu.tag_cycles), dict(cpu.tag_counts),
                               list(loaded.output), session=loaded,
                               truncated=was_cut)
            if not record_writes:
                self._baseline = result
            return result
        return self._baseline

    def run_instrumented(self, strategy: str,
                         enabled: bool = True,
                         plan: Optional[OptimizationPlan] = None,
                         layout: Optional[MonitorLayout] = None,
                         record_writes: bool = False,
                         regions: Optional[List] = None) -> RunResult:
        from repro.machine.cpu import SimulationLimit

        session = DebugSession.from_asm(
            self.asm, strategy=strategy, plan=plan, layout=layout,
            costs=self.costs, record_writes=record_writes,
            cache_bytes=self.cache_bytes, faults=self.faults)
        if enabled:
            session.mrs.enable()
        for start, size in regions or ():
            session.mrs.create_region(start, size)
        watchdog = self._budget_watchdog(mrs=session.mrs,
                                         output=session.output)
        was_cut = False
        try:
            code = session.run(watchdog=watchdog)
        except SimulationLimit:
            was_cut = True
            code = None
        if not was_cut and code != 0:
            raise RuntimeError("%s/%s exited with %d"
                               % (self.name, strategy, code))
        base = self.baseline()
        # a truncated run stops mid-stream, so its output is a prefix at
        # best — only a complete pair must match exactly
        if not was_cut and not base.truncated \
                and session.output != base.output:
            raise RuntimeError("%s/%s changed program output"
                               % (self.name, strategy))
        cpu = session.cpu
        return RunResult(cpu.cycles, cpu.instructions, cpu.stores,
                         dict(cpu.tag_cycles), dict(cpu.tag_counts),
                         list(session.output),
                         hits=session.mrs.hit_count(), session=session,
                         truncated=was_cut)

    def overhead(self, strategy: str, **kwargs) -> float:
        """Percent overhead of *strategy* relative to the baseline.

        Returns a :class:`Partial` when either run was truncated by a
        watchdog budget.
        """
        instrumented = self.run_instrumented(strategy, **kwargs)
        base = self.baseline()
        value = 100.0 * (instrumented.cycles / base.cycles - 1.0)
        if instrumented.truncated or base.truncated:
            return Partial(value)
        return value


def average(values: List[float]) -> float:
    """Mean of *values*; :class:`Partial` if any input was truncated."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if any(truncated(v) for v in values):
        return Partial(mean)
    return mean
