"""Overhead measurement: instrumented vs. uninstrumented cycle counts.

The protocol follows §3.3: the monitored region service is attached and
*enabled* but no monitored regions exist (Table 1 overheads are
"independent of the number of breakpoints in use"); the "Disabled" row
runs the same binary with the global disabled flag set.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.layout import MonitorLayout
from repro.instrument.plan import OptimizationPlan
from repro.machine.costs import CostModel, DEFAULT_COSTS
from repro.minic.codegen import compile_source
from repro.session import DebugSession, run_uninstrumented
from repro.workloads import WORKLOADS, workload_source


class RunResult:
    """Cycle/instruction counts of one simulated run."""

    __slots__ = ("cycles", "instructions", "stores", "tag_cycles",
                 "tag_counts", "output", "hits", "session")

    def __init__(self, cycles: int, instructions: int, stores: int,
                 tag_cycles: Dict[str, int], tag_counts: Dict[str, int],
                 output: List[str], hits: int = 0, session=None):
        self.cycles = cycles
        self.instructions = instructions
        self.stores = stores
        self.tag_cycles = tag_cycles
        self.tag_counts = tag_counts
        self.output = output
        self.hits = hits
        self.session = session


class WorkloadBench:
    """One workload, compiled once, runnable under many configurations."""

    def __init__(self, name: str, scale: float = 1.0,
                 costs: CostModel = DEFAULT_COSTS,
                 cache_bytes: Optional[int] = None):
        self.name = name
        self.spec = WORKLOADS[name]
        self.scale = scale
        self.costs = costs
        from repro.machine.cache import DEFAULT_CACHE_BYTES
        self.cache_bytes = cache_bytes if cache_bytes is not None \
            else DEFAULT_CACHE_BYTES
        self.asm = compile_source(workload_source(name, scale),
                                  lang=self.spec.lang)
        self._baseline: Optional[RunResult] = None

    def baseline(self, record_writes: bool = False) -> RunResult:
        if self._baseline is None or record_writes:
            code, loaded = run_uninstrumented(
                self.asm, costs=self.costs, record_writes=record_writes,
                cache_bytes=self.cache_bytes)
            if code != 0:
                raise RuntimeError("%s exited with %d" % (self.name, code))
            cpu = loaded.cpu
            result = RunResult(cpu.cycles, cpu.instructions, cpu.stores,
                               dict(cpu.tag_cycles), dict(cpu.tag_counts),
                               list(loaded.output), session=loaded)
            if not record_writes:
                self._baseline = result
            return result
        return self._baseline

    def run_instrumented(self, strategy: str,
                         enabled: bool = True,
                         plan: Optional[OptimizationPlan] = None,
                         layout: Optional[MonitorLayout] = None,
                         record_writes: bool = False,
                         regions: Optional[List] = None) -> RunResult:
        session = DebugSession.from_asm(
            self.asm, strategy=strategy, plan=plan, layout=layout,
            costs=self.costs, record_writes=record_writes,
            cache_bytes=self.cache_bytes)
        if enabled:
            session.mrs.enable()
        for start, size in regions or ():
            session.mrs.create_region(start, size)
        code = session.run()
        if code != 0:
            raise RuntimeError("%s/%s exited with %d"
                               % (self.name, strategy, code))
        base = self.baseline()
        if session.output != base.output:
            raise RuntimeError("%s/%s changed program output"
                               % (self.name, strategy))
        cpu = session.cpu
        return RunResult(cpu.cycles, cpu.instructions, cpu.stores,
                         dict(cpu.tag_cycles), dict(cpu.tag_counts),
                         list(session.output),
                         hits=session.mrs.hit_count(), session=session)

    def overhead(self, strategy: str, **kwargs) -> float:
        """Percent overhead of *strategy* relative to the baseline."""
        instrumented = self.run_instrumented(strategy, **kwargs)
        base = self.baseline()
        return 100.0 * (instrumented.cycles / base.cycles - 1.0)


def average(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0
