"""Ingest: package a live recording and write it to the store.

:func:`export_recording` turns a :class:`~repro.replay.recorder.Recorder`
into a self-contained :class:`RecordingExport`: the canonical trace
bytes (with the run-metadata header completed — monitor-set digest and
stride filled in if the caller did not set them), every keyframe's
*machine* checkpoint pickled (host-side watchpoint objects are not
exported; the store serves analytics, not resumption), and the run
statistics for the run header.

:func:`ingest` writes one export inside the caller's transaction:

* the run is **content-addressed** by the sha-256 of its trace bytes
  (which embed the metadata), so re-ingesting an identical recording
  bumps ``ingest_count`` on the existing row and changes nothing else
  — an idempotent, counted no-op;
* keyframe payloads are **deduplicated** by digest: a payload already
  present (from this run or any other) is stored zero more times, and
  only the per-run reference row is added.  Two runs of the same
  deterministic program share every keyframe byte.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from typing import Any, Dict, List, NamedTuple, Optional

from repro.errors import StoreError

__all__ = ["KeyframeExport", "RecordingExport", "IngestResult",
           "export_recording", "ingest"]


class KeyframeExport(NamedTuple):
    """One keyframe, detached from its recorder."""

    index: int          #: cpu.instructions at capture
    trace_pos: int      #: trace.total at capture
    state_digest: int   #: CRC-32 control-state digest at capture
    payload: bytes      #: pickled machine Checkpoint
    digest: str         #: sha-256 hex of payload (content address)


class RecordingExport(NamedTuple):
    """A recording packaged for :func:`ingest`."""

    meta: Dict[str, Any]          #: the trace's run-metadata header
    trace_bytes: bytes            #: canonical WriteTrace serialisation
    trace_digest: str             #: sha-256 hex of trace_bytes
    keyframes: List[KeyframeExport]
    stats: Dict[str, Any]         #: instructions, stores, wall time, ...


class IngestResult(NamedTuple):
    """What one :func:`ingest` call did."""

    run_id: int
    run_key: str
    duplicate: bool          #: True: counted no-op on an existing run
    keyframes_new: int       #: payloads actually stored
    keyframes_shared: int    #: references resolved to existing payloads


def export_recording(recorder,
                     wall_time_s: Optional[float] = None
                     ) -> RecordingExport:
    """Package *recorder*'s current recording (see module docstring)."""
    from repro.replay.recorder import monitor_set_digest

    trace = recorder.trace
    trace.meta.setdefault("monitors",
                          monitor_set_digest(recorder.debugger.mrs))
    trace.meta.setdefault("stride", recorder.base_stride)
    trace.meta.setdefault("workload", "unknown")
    trace_bytes = trace.to_bytes()
    keyframes = []
    for keyframe in recorder.keyframes:
        # checkpoint is the (machine snapshot, host extras) pair the
        # debugger builds; only the snapshot is exportable — and only
        # it is needed to anchor analytics in execution time
        snapshot = keyframe.checkpoint[0] \
            if isinstance(keyframe.checkpoint, tuple) \
            else keyframe.checkpoint
        payload = pickle.dumps(snapshot, protocol=4)
        keyframes.append(KeyframeExport(
            keyframe.index, keyframe.trace_pos, keyframe.digest,
            payload, hashlib.sha256(payload).hexdigest()))
    cpu = recorder.cpu
    stats = {
        "instructions": cpu.instructions,
        "stores": cpu.stores,
        "wall_time_s": wall_time_s,
        "start_index": recorder.start_index,
        "end_index": recorder.end_index,
        "trace_records": len(trace),
        "trace_dropped": trace.dropped,
    }
    return RecordingExport(
        meta=dict(trace.meta), trace_bytes=trace_bytes,
        trace_digest=hashlib.sha256(trace_bytes).hexdigest(),
        keyframes=keyframes, stats=stats)


def ingest(conn, export: RecordingExport) -> IngestResult:
    """Write *export* through *conn* (an open transaction's
    connection); see the module docstring for the dedup semantics."""
    meta = export.meta
    workload = meta.get("workload")
    if not workload:
        raise StoreError("export carries no workload name",
                         reason="unresolvable")
    now = time.time()
    run_key = export.trace_digest
    row = conn.execute("SELECT id FROM runs WHERE run_key = ?",
                       (run_key,)).fetchone()
    if row is not None:
        conn.execute(
            "UPDATE runs SET ingest_count = ingest_count + 1, "
            "last_access = ? WHERE id = ?", (now, row[0]))
        return IngestResult(row[0], run_key, True, 0, 0)

    new = shared = 0
    for keyframe in export.keyframes:
        cursor = conn.execute(
            "INSERT OR IGNORE INTO keyframes "
            "(digest, payload, size, created_at) VALUES (?, ?, ?, ?)",
            (keyframe.digest, keyframe.payload, len(keyframe.payload),
             now))
        if cursor.rowcount:
            new += 1
        else:
            shared += 1
    stats = export.stats
    cursor = conn.execute(
        "INSERT INTO runs (run_key, workload, scale, seed, monitors, "
        "stride, lang, strategy, optimize, instructions, stores, "
        "wall_time_s, start_index, end_index, trace_digest, trace, "
        "trace_records, trace_dropped, created_at, last_access) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
        "?, ?, ?)",
        (run_key, workload, meta.get("scale"), meta.get("seed"),
         meta.get("monitors"), meta.get("stride"), meta.get("lang"),
         meta.get("strategy"), meta.get("optimize"),
         stats.get("instructions", 0), stats.get("stores", 0),
         stats.get("wall_time_s"), stats.get("start_index", 0),
         stats.get("end_index", 0), export.trace_digest,
         export.trace_bytes, stats.get("trace_records", 0),
         stats.get("trace_dropped", 0), now, now))
    run_id = cursor.lastrowid
    conn.executemany(
        "INSERT INTO run_keyframes "
        "(run_id, keyframe_digest, idx, trace_pos, state_digest) "
        "VALUES (?, ?, ?, ?, ?)",
        [(run_id, keyframe.digest, keyframe.index, keyframe.trace_pos,
          keyframe.state_digest) for keyframe in export.keyframes])
    return IngestResult(run_id, run_key, False, new, shared)
