"""SQLite connection management: WAL mode, bounded retry, fault point.

One :class:`StoreConnection` wraps one ``sqlite3`` connection with the
durability policy the store promises:

* **WAL journal** — readers never block the (single) writer, and a
  process killed mid-commit leaves a journal SQLite rolls back on the
  next open: the previous committed generation survives intact;
* **transactions** — every mutation runs inside
  :meth:`StoreConnection.transaction`, which takes ``BEGIN IMMEDIATE``
  (so lock conflicts surface at entry, not at commit), trips the
  ``store.commit`` fault point after the writes but *before* COMMIT,
  and rolls back on any failure.  An injected fault therefore proves
  the crash-consistency contract end-to-end;
* **bounded retry-on-locked** — a concurrently-held write lock is
  retried with a deterministic linear backoff, a fixed number of
  times; past the budget a structured :class:`~repro.errors.StoreError`
  (reason ``"locked"``) propagates instead of wedging the caller.

The connection is shared across threads (the debug server archives
recordings from handler threads) behind a reentrant lock, so SQLite's
same-thread check is disabled — serialisation is ours, not SQLite's.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from contextlib import contextmanager
from typing import Optional

from repro.errors import InjectedFault, StoreError
from repro.faults import STORE_COMMIT, FaultPlan
from repro.store.schema import ensure_schema

__all__ = ["StoreConnection", "DEFAULT_RETRIES", "DEFAULT_RETRY_WAIT_S"]

#: bounded retry budget for a locked database
DEFAULT_RETRIES = 8
#: base wait between retries (linear backoff: wait * attempt)
DEFAULT_RETRY_WAIT_S = 0.025


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


class StoreConnection:
    """One store database: schema-checked, WAL-mode, retry-wrapped."""

    def __init__(self, path: str, faults: Optional[FaultPlan] = None,
                 retries: int = DEFAULT_RETRIES,
                 retry_wait_s: float = DEFAULT_RETRY_WAIT_S):
        self.path = path
        self.faults = faults
        self.retries = max(0, retries)
        self.retry_wait_s = retry_wait_s
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(path, timeout=0.0,
                                         check_same_thread=False)
        except sqlite3.Error as exc:
            raise StoreError("cannot open store %s: %s" % (path, exc),
                             reason="io", path=path) from exc
        self._conn.execute("PRAGMA foreign_keys = ON")
        # WAL is a property of the database file; on :memory: (tests)
        # SQLite reports "memory" and we proceed without it
        self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute("PRAGMA synchronous = NORMAL")
        ensure_schema(self._conn)
        self.closed = False

    # -- transactions ------------------------------------------------------

    @contextmanager
    def transaction(self):
        """Run a write transaction with retry, fault point, rollback.

        Yields the raw connection.  COMMIT happens on clean exit —
        after the ``store.commit`` injection point, so a scheduled
        fault (or a crash at that instant) rolls the whole transaction
        back and the previously committed generation stays readable.
        """
        with self._lock:
            self._require_open()
            self._retry(lambda: self._conn.execute("BEGIN IMMEDIATE"),
                        "begin")
            try:
                yield self._conn
                if self.faults is not None:
                    self.faults.trip(STORE_COMMIT, path=self.path)
                self._retry(self._conn.commit, "commit")
            except InjectedFault as exc:
                self._rollback()
                raise StoreError(
                    "store transaction aborted mid-commit",
                    reason="commit_failed", path=self.path) from exc
            except BaseException:
                self._rollback()
                raise

    def query(self, sql: str, parameters=()):
        """Read-only helper: execute and fetch all rows."""
        with self._lock:
            self._require_open()
            return self._retry(
                lambda: self._conn.execute(sql, parameters).fetchall(),
                "query")

    def execute_commit(self, sql: str, parameters=()) -> None:
        """One autocommitted bookkeeping write (LRU stamps and the
        like) — does NOT pass the ``store.commit`` fault point, which
        guards generation-changing transactions only."""
        with self._lock:
            self._require_open()
            self._retry(lambda: self._conn.execute(sql, parameters),
                        "execute")
            self._retry(self._conn.commit, "commit")

    def close(self) -> None:
        with self._lock:
            if not self.closed:
                self.closed = True
                self._conn.close()

    def __enter__(self) -> "StoreConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _require_open(self) -> None:
        if self.closed:
            raise StoreError("store %s is closed" % self.path,
                             reason="closed", path=self.path)

    def _rollback(self) -> None:
        try:
            self._conn.rollback()
        except sqlite3.Error:
            pass

    def _retry(self, operation, what: str):
        """Run *operation*, retrying a bounded number of times while
        the database is locked by another writer."""
        attempt = 0
        while True:
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc) or attempt >= self.retries:
                    raise StoreError(
                        "store %s failed at %s: %s"
                        % (self.path, what, exc),
                        reason="locked" if _is_locked(exc) else "io",
                        path=self.path, attempts=attempt + 1) from exc
                attempt += 1
                time.sleep(self.retry_wait_s * attempt)
            except sqlite3.DatabaseError as exc:
                raise StoreError(
                    "store %s is corrupt at %s: %s"
                    % (self.path, what, exc), reason="corrupt",
                    path=self.path) from exc
