"""Persistent trace store with cross-run write analytics.

Recordings made by :class:`repro.replay.Recorder` are packaged into
content-addressed exports (run key = digest of the canonical trace
bytes; keyframes deduplicated by snapshot digest) and kept in a
WAL-mode SQLite database that survives crashes mid-commit.  The
``repro analyze`` CLI answers cross-run questions — hottest written
regions, write-density statistics, overhead regressions, and
"who last wrote this address" provenance — straight from the store.
"""

from repro.store.connection import (DEFAULT_RETRIES,
                                    DEFAULT_RETRY_WAIT_S,
                                    StoreConnection)
from repro.store.ingest import (IngestResult, KeyframeExport,
                                RecordingExport, export_recording,
                                ingest)
from repro.store.queries import StoredRun
from repro.store.retention import (EvictionReport, RetentionPolicy,
                                   apply_retention, stored_bytes)
from repro.store.schema import SCHEMA_VERSION
from repro.store.store import DEFAULT_STORE_PATH, TraceStore

__all__ = [
    "DEFAULT_RETRIES",
    "DEFAULT_RETRY_WAIT_S",
    "DEFAULT_STORE_PATH",
    "EvictionReport",
    "IngestResult",
    "KeyframeExport",
    "RecordingExport",
    "RetentionPolicy",
    "SCHEMA_VERSION",
    "StoreConnection",
    "StoredRun",
    "TraceStore",
    "apply_retention",
    "export_recording",
    "ingest",
    "stored_bytes",
]
