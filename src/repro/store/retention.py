"""Retention: bound the store without orphaning shared state.

A :class:`RetentionPolicy` caps the store two ways, both enforced by
LRU eviction over ``runs.last_access``:

* ``max_runs_per_workload`` — at most N stored runs per workload name
  (the cross-run queries rarely need deep history);
* ``max_bytes`` — total payload budget, counting each deduplicated
  keyframe payload **once** plus every run's trace blob.

Eviction deletes whole runs, oldest-accessed first, but never the most
recently ingested run of a workload — a store under pressure degrades
to "latest generation only", it does not empty itself.  After the run
rows (and, via ``ON DELETE CASCADE``, their keyframe references) are
gone, keyframe payloads with **zero remaining references** are
garbage-collected; a keyframe still referenced by any surviving run is
never deleted, no matter which run originally inserted it.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

__all__ = ["RetentionPolicy", "EvictionReport", "apply_retention",
           "stored_bytes"]


class RetentionPolicy(NamedTuple):
    """Bounds applied after every ingest (and on demand)."""

    max_runs_per_workload: Optional[int] = None
    max_bytes: Optional[int] = None


class EvictionReport(NamedTuple):
    """What one retention sweep removed."""

    runs_evicted: List[int]
    keyframes_deleted: int
    bytes_after: int


def stored_bytes(conn) -> int:
    """Current payload footprint: deduplicated keyframe payloads (each
    digest once) plus every run's trace blob."""
    (keyframe_bytes,) = conn.execute(
        "SELECT COALESCE(SUM(size), 0) FROM keyframes").fetchone()
    (trace_bytes,) = conn.execute(
        "SELECT COALESCE(SUM(LENGTH(trace)), 0) FROM runs").fetchone()
    return keyframe_bytes + trace_bytes


def _protected_runs(conn) -> set:
    """The newest run of each workload — never evicted.  Ties on
    ``last_access`` (coarse clocks, bulk ingest) break on id, so the
    protected set is deterministic."""
    rows = conn.execute(
        "SELECT id FROM runs AS r WHERE id = "
        "(SELECT id FROM runs WHERE workload = r.workload "
        " ORDER BY last_access DESC, id DESC LIMIT 1)").fetchall()
    return {row[0] for row in rows}


def _evict(conn, run_ids: List[int]) -> None:
    conn.executemany("DELETE FROM runs WHERE id = ?",
                     [(run_id,) for run_id in run_ids])


def _collect_garbage(conn) -> int:
    """Delete keyframe payloads no surviving run references."""
    cursor = conn.execute(
        "DELETE FROM keyframes WHERE digest NOT IN "
        "(SELECT DISTINCT keyframe_digest FROM run_keyframes)")
    return cursor.rowcount


def apply_retention(conn, policy: RetentionPolicy) -> EvictionReport:
    """Enforce *policy* inside the caller's transaction."""
    evicted: List[int] = []
    deleted = 0
    if policy.max_runs_per_workload is not None:
        keep = max(1, policy.max_runs_per_workload)
        for (workload,) in conn.execute(
                "SELECT DISTINCT workload FROM runs").fetchall():
            stale = conn.execute(
                "SELECT id FROM runs WHERE workload = ? "
                "ORDER BY last_access DESC, id DESC LIMIT -1 OFFSET ?",
                (workload, keep)).fetchall()
            evicted.extend(row[0] for row in stale)
        _evict(conn, evicted)
    if policy.max_bytes is not None:
        protected = _protected_runs(conn)
        candidates = conn.execute(
            "SELECT id FROM runs ORDER BY last_access ASC, id ASC"
        ).fetchall()
        for (run_id,) in candidates:
            if stored_bytes(conn) <= policy.max_bytes:
                break
            if run_id in protected:
                continue
            _evict(conn, [run_id])
            deleted += _collect_garbage(conn)
            evicted.append(run_id)
    deleted += _collect_garbage(conn)
    return EvictionReport(evicted, deleted, stored_bytes(conn))
