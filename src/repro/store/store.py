"""The store facade: one object tying connection, ingest, retention
and queries together.

.. code-block:: python

    from repro.store import RetentionPolicy, TraceStore

    store = TraceStore("repro_store.sqlite",
                       retention=RetentionPolicy(max_runs_per_workload=8))
    recorder.set_meta(workload="023.eqntott", scale=0.5, seed=1)
    result = store.ingest_recorder(recorder)     # dedup + retention
    store.hot(workload="023.eqntott")            # hottest regions
    store.provenance(addr, size)                 # who wrote this last
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.faults import FaultPlan
from repro.store.connection import StoreConnection
from repro.store.ingest import IngestResult, RecordingExport, ingest
from repro.store.queries import (StoredRun, get_run, hot_regions,
                                 list_runs, load_trace, provenance,
                                 regress, store_stats, write_stats)
from repro.store.retention import (EvictionReport, RetentionPolicy,
                                   apply_retention)

__all__ = ["DEFAULT_STORE_PATH", "TraceStore"]

#: where the CLI puts the store when ``--store`` is given bare
DEFAULT_STORE_PATH = "repro_store.sqlite"


class TraceStore:
    """Content-addressed persistent store of recordings + analytics."""

    def __init__(self, path: str = DEFAULT_STORE_PATH,
                 retention: Optional[RetentionPolicy] = None,
                 faults: Optional[FaultPlan] = None):
        self.connection = StoreConnection(path, faults=faults)
        self.retention = retention

    @property
    def path(self) -> str:
        return self.connection.path

    # -- write side --------------------------------------------------------

    def ingest(self, export: RecordingExport) -> IngestResult:
        """Store one packaged recording transactionally: content-
        addressed run upsert, keyframe dedup, then retention — all or
        nothing across the ``store.commit`` fault point."""
        with self.connection.transaction() as conn:
            result = ingest(conn, export)
            if self.retention is not None:
                apply_retention(conn, self.retention)
        return result

    def ingest_recorder(self, recorder,
                        wall_time_s: Optional[float] = None,
                        **meta: Any) -> IngestResult:
        """Convenience: stamp *meta* onto the recording, export, and
        ingest in one call."""
        if meta:
            recorder.set_meta(**meta)
        return self.ingest(recorder.export(wall_time_s=wall_time_s))

    def apply_retention(self,
                        policy: Optional[RetentionPolicy] = None
                        ) -> EvictionReport:
        policy = policy if policy is not None else self.retention
        if policy is None:
            policy = RetentionPolicy()
        with self.connection.transaction() as conn:
            return apply_retention(conn, policy)

    # -- read side ---------------------------------------------------------

    def runs(self, workload: Optional[str] = None) -> List[StoredRun]:
        return list_runs(self.connection._conn, workload=workload)

    def run(self, run_id: int) -> StoredRun:
        return get_run(self.connection._conn, run_id)

    def trace(self, run_id: int):
        """Decode one stored trace; stamps the run's LRU clock."""
        trace = load_trace(self.connection._conn, run_id)
        self._touch([run_id])
        return trace

    def hot(self, workload: Optional[str] = None,
            top: int = 10) -> List[Dict[str, Any]]:
        result = hot_regions(self.connection._conn, workload=workload,
                             top=top)
        self._touch([run.id for run in self.runs(workload=workload)])
        return result

    def write_stats(self,
                    workload: Optional[str] = None
                    ) -> List[Dict[str, Any]]:
        result = write_stats(self.connection._conn, workload=workload)
        self._touch([entry["run"] for entry in result])
        return result

    def regress(self, workload: str, run_a: Optional[int] = None,
                run_b: Optional[int] = None,
                threshold_pct: float = 10.0) -> Dict[str, Any]:
        return regress(self.connection._conn, workload, run_a=run_a,
                       run_b=run_b, threshold_pct=threshold_pct)

    def provenance(self, addr: int, size: int,
                   workload: Optional[str] = None,
                   run_id: Optional[int] = None,
                   before_index: Optional[int] = None
                   ) -> List[Dict[str, Any]]:
        result = provenance(self.connection._conn, addr, size,
                            workload=workload, run_id=run_id,
                            before_index=before_index)
        self._touch([entry["run"] for entry in result])
        return result

    def stats(self) -> Dict[str, Any]:
        return store_stats(self.connection._conn)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _touch(self, run_ids: List[int]) -> None:
        if not run_ids:
            return
        import time
        marks = ",".join("?" for _ in run_ids)
        self.connection.execute_commit(
            "UPDATE runs SET last_access = ? WHERE id IN (%s)" % marks,
            [time.time()] + list(run_ids))
