"""Relational schema of the persistent trace store.

Three tables:

* ``keyframes`` — content-addressed machine checkpoints.  The digest
  (sha-256 of the pickled :class:`~repro.machine.checkpoint.Checkpoint`)
  is the primary key, so N runs of the same deterministic program
  store each keyframe payload exactly once; ``run_keyframes`` rows
  carry the per-run references.
* ``runs`` — one row per ingested recording: the run-identity header
  (workload, scale, seed, monitor-set digest, stride), the execution
  statistics (instructions, stores, wall time), and the canonical
  write-trace bytes.  ``run_key`` is the content address — the sha-256
  of the trace bytes, which embed the metadata header — so re-ingesting
  an identical recording is an idempotent, counted no-op
  (``ingest_count`` increments, no duplicate row).
* ``run_keyframes`` — the many-to-many edge between runs and
  keyframes, with the per-run anchor metadata (instruction index,
  trace position, CRC-32 control-state digest).  ``ON DELETE CASCADE``
  keeps the edge table consistent under retention eviction; orphaned
  ``keyframes`` rows are garbage-collected explicitly, never while a
  surviving run still references them.

``user_version`` records the schema generation; :func:`ensure_schema`
creates the tables on a fresh database and refuses to open a database
written by a newer generation instead of silently misreading it.
"""

from __future__ import annotations

from repro.errors import StoreError

#: bump when the schema changes incompatibly
SCHEMA_VERSION = 1

SCHEMA = """
CREATE TABLE IF NOT EXISTS keyframes (
    digest      TEXT PRIMARY KEY,
    payload     BLOB NOT NULL,
    size        INTEGER NOT NULL,
    created_at  REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    run_key       TEXT NOT NULL UNIQUE,
    workload      TEXT NOT NULL,
    scale         REAL,
    seed          INTEGER,
    monitors      TEXT,
    stride        INTEGER,
    lang          TEXT,
    strategy      TEXT,
    optimize      TEXT,
    instructions  INTEGER NOT NULL,
    stores        INTEGER NOT NULL DEFAULT 0,
    wall_time_s   REAL,
    start_index   INTEGER NOT NULL DEFAULT 0,
    end_index     INTEGER NOT NULL DEFAULT 0,
    trace_digest  TEXT NOT NULL,
    trace         BLOB NOT NULL,
    trace_records INTEGER NOT NULL,
    trace_dropped INTEGER NOT NULL DEFAULT 0,
    ingest_count  INTEGER NOT NULL DEFAULT 1,
    created_at    REAL NOT NULL,
    last_access   REAL NOT NULL
);

CREATE INDEX IF NOT EXISTS runs_workload
    ON runs (workload, last_access);

CREATE TABLE IF NOT EXISTS run_keyframes (
    run_id          INTEGER NOT NULL
                    REFERENCES runs (id) ON DELETE CASCADE,
    keyframe_digest TEXT NOT NULL REFERENCES keyframes (digest),
    idx             INTEGER NOT NULL,
    trace_pos       INTEGER NOT NULL,
    state_digest    INTEGER NOT NULL,
    PRIMARY KEY (run_id, idx, keyframe_digest)
);

CREATE INDEX IF NOT EXISTS run_keyframes_digest
    ON run_keyframes (keyframe_digest);
"""


def ensure_schema(conn) -> None:
    """Create the schema on a fresh database; verify the generation on
    an existing one."""
    (version,) = conn.execute("PRAGMA user_version").fetchone()
    if version == 0:
        conn.executescript(SCHEMA)
        conn.execute("PRAGMA user_version = %d" % SCHEMA_VERSION)
        conn.commit()
        return
    if version != SCHEMA_VERSION:
        raise StoreError(
            "store schema generation %d is not supported (have %d)"
            % (version, SCHEMA_VERSION), reason="corrupt",
            found=version, supported=SCHEMA_VERSION)
