"""Cross-run queries: the analytics behind ``repro analyze``.

Every query combines SQL over the run headers with decode of the
canonical trace blobs (:class:`~repro.replay.trace.WriteTrace`), so
questions that span many recordings — hottest written regions, write
densities, overhead regressions, last-write provenance — are answered
from the store alone, with no live debuggee.

``last_write`` provenance intentionally mirrors
:meth:`repro.replay.trace.WriteTrace.last_write_to` record-for-record:
a stored trace answers exactly what the in-memory
:class:`~repro.replay.controller.ReplayController` would have answered
on the live recording (the e2e test in ``tests/test_store.py`` holds
the two byte-for-byte equal).
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.errors import StoreError
from repro.replay.trace import WriteRecord, WriteTrace

__all__ = ["StoredRun", "list_runs", "get_run", "load_trace",
           "hot_regions", "write_stats", "regress", "provenance",
           "store_stats"]

_RUN_COLUMNS = ("id", "workload", "scale", "seed", "monitors", "stride",
                "lang", "strategy", "optimize", "instructions", "stores",
                "wall_time_s", "start_index", "end_index", "trace_digest",
                "trace_records", "trace_dropped", "ingest_count",
                "created_at", "last_access")


class StoredRun(NamedTuple):
    """One run header row (everything but the trace blob)."""

    id: int
    workload: str
    scale: Optional[float]
    seed: Optional[int]
    monitors: Optional[str]
    stride: Optional[int]
    lang: Optional[str]
    strategy: Optional[str]
    optimize: Optional[str]
    instructions: int
    stores: int
    wall_time_s: Optional[float]
    start_index: int
    end_index: int
    trace_digest: str
    trace_records: int
    trace_dropped: int
    ingest_count: int
    created_at: float
    last_access: float

    @property
    def writes_per_kinstr(self) -> float:
        if not self.instructions:
            return 0.0
        return self.trace_records / self.instructions * 1000.0

    @property
    def instr_per_s(self) -> Optional[float]:
        if not self.wall_time_s:
            return None
        return self.instructions / self.wall_time_s

    def as_dict(self) -> Dict[str, Any]:
        row = dict(zip(_RUN_COLUMNS, self))
        row["writes_per_kinstr"] = round(self.writes_per_kinstr, 3)
        rate = self.instr_per_s
        row["instr_per_s"] = None if rate is None else round(rate)
        return row


def _rows(conn, workload: Optional[str] = None,
          run_id: Optional[int] = None) -> List[StoredRun]:
    sql = "SELECT %s FROM runs" % ", ".join(_RUN_COLUMNS)
    clauses, parameters = [], []
    if workload is not None:
        clauses.append("workload = ?")
        parameters.append(workload)
    if run_id is not None:
        clauses.append("id = ?")
        parameters.append(run_id)
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    sql += " ORDER BY id ASC"
    return [StoredRun(*row)
            for row in conn.execute(sql, parameters).fetchall()]


def list_runs(conn, workload: Optional[str] = None) -> List[StoredRun]:
    return _rows(conn, workload=workload)


def get_run(conn, run_id: int) -> StoredRun:
    runs = _rows(conn, run_id=run_id)
    if not runs:
        raise StoreError("no stored run %d" % run_id,
                         reason="unknown_run", run=run_id)
    return runs[0]


def load_trace(conn, run_id: int) -> WriteTrace:
    """Decode one stored trace (raises on an unknown run)."""
    row = conn.execute("SELECT trace FROM runs WHERE id = ?",
                       (run_id,)).fetchone()
    if row is None:
        raise StoreError("no stored run %d" % run_id,
                         reason="unknown_run", run=run_id)
    return WriteTrace.from_bytes(row[0])


# -- hot regions --------------------------------------------------------------


def hot_regions(conn, workload: Optional[str] = None,
                top: int = 10) -> List[Dict[str, Any]]:
    """The hottest written regions across stored runs.

    Writes are bucketed per word, adjacent hot words are merged into
    contiguous regions, and regions rank by total write count.  Each
    region reports which runs (and how many workloads) touched it.
    """
    per_word: Dict[int, int] = {}
    word_runs: Dict[int, set] = {}
    word_workloads: Dict[int, set] = {}
    for run in list_runs(conn, workload=workload):
        trace = load_trace(conn, run.id)
        for record in trace:
            if record.is_read:
                continue
            word = record.addr & ~3
            per_word[word] = per_word.get(word, 0) + 1
            word_runs.setdefault(word, set()).add(run.id)
            word_workloads.setdefault(word, set()).add(run.workload)
    regions: List[Dict[str, Any]] = []
    current: Optional[Dict[str, Any]] = None
    for word in sorted(per_word):
        if current is not None and word == current["_end"]:
            current["size"] += 4
            current["writes"] += per_word[word]
            current["_runs"] |= word_runs[word]
            current["_workloads"] |= word_workloads[word]
            current["_end"] = word + 4
            continue
        current = {"addr": word, "size": 4, "writes": per_word[word],
                   "_runs": set(word_runs[word]),
                   "_workloads": set(word_workloads[word]),
                   "_end": word + 4}
        regions.append(current)
    for region in regions:
        region["runs"] = len(region.pop("_runs"))
        region["workloads"] = sorted(region.pop("_workloads"))
        del region["_end"]
    regions.sort(key=lambda region: (-region["writes"], region["addr"]))
    return regions[:max(0, top)]


# -- write-pattern statistics -------------------------------------------------


def write_stats(conn,
                workload: Optional[str] = None) -> List[Dict[str, Any]]:
    """Per-run write-pattern statistics (monitored-hit ratios, write
    densities), one dict per stored run."""
    out: List[Dict[str, Any]] = []
    for run in list_runs(conn, workload=workload):
        trace = load_trace(conn, run.id)
        writes = reads = 0
        per_word: Dict[int, int] = {}
        for record in trace:
            if record.is_read:
                reads += 1
                continue
            writes += 1
            word = record.addr & ~3
            per_word[word] = per_word.get(word, 0) + 1
        distinct = len(per_word)
        peak = max(per_word.values()) if per_word else 0
        executed = max(1, run.end_index - run.start_index)
        out.append({
            "run": run.id,
            "workload": run.workload,
            "scale": run.scale,
            "seed": run.seed,
            "instructions": run.instructions,
            "writes": writes,
            "reads": reads,
            "dropped": run.trace_dropped,
            "writes_per_kinstr":
                round(writes / executed * 1000.0, 3),
            "monitored_hit_ratio":
                round((writes + reads) / executed, 6),
            "distinct_words": distinct,
            "mean_writes_per_word":
                round(writes / distinct, 2) if distinct else 0.0,
            "peak_word_writes": peak,
        })
    return out


# -- overhead regressions -----------------------------------------------------


def _pct(new: Optional[float], old: Optional[float]) -> Optional[float]:
    if new is None or old is None or not old:
        return None
    return round((new - old) / old * 100.0, 2)


def regress(conn, workload: str,
            run_a: Optional[int] = None,
            run_b: Optional[int] = None,
            threshold_pct: float = 10.0) -> Dict[str, Any]:
    """Compare two stored runs of *workload* (default: the two most
    recent) and flag metric deltas beyond *threshold_pct*.

    The returned dict carries per-metric deltas and a ``regressions``
    list naming the metrics that worsened past the threshold — the CLI
    exits non-zero when it is non-empty, which is the CI gate.
    """
    if run_a is not None and run_b is not None:
        baseline = get_run(conn, run_a)
        candidate = get_run(conn, run_b)
    else:
        runs = list_runs(conn, workload=workload)
        if len(runs) < 2:
            raise StoreError(
                "regress needs two stored runs of %r (have %d)"
                % (workload, len(runs)), reason="unknown_run",
                workload=workload)
        baseline, candidate = runs[-2], runs[-1]
    deltas = {
        "instructions": _pct(candidate.instructions,
                             baseline.instructions),
        "wall_time_s": _pct(candidate.wall_time_s,
                            baseline.wall_time_s),
        "instr_per_s": _pct(candidate.instr_per_s,
                            baseline.instr_per_s),
        "trace_records": _pct(candidate.trace_records,
                              baseline.trace_records),
        "writes_per_kinstr": _pct(candidate.writes_per_kinstr,
                                  baseline.writes_per_kinstr),
    }
    regressions = []
    for metric in ("instructions", "wall_time_s"):
        delta = deltas[metric]
        if delta is not None and delta > threshold_pct:
            regressions.append(metric)
    # throughput falling is a regression too (negative delta)
    rate_delta = deltas["instr_per_s"]
    if rate_delta is not None and rate_delta < -threshold_pct:
        regressions.append("instr_per_s")
    return {
        "workload": workload,
        "baseline": baseline.as_dict(),
        "candidate": candidate.as_dict(),
        "deltas_pct": deltas,
        "threshold_pct": threshold_pct,
        "regressions": regressions,
    }


# -- provenance ---------------------------------------------------------------


def _last_write(trace: WriteTrace, start: int, size: int,
                before_index: Optional[int] = None
                ) -> Optional[Tuple[int, WriteRecord]]:
    """(absolute position, record) of the trace's answer — the same
    newest-first walk as :meth:`WriteTrace.last_write_to`, so a stored
    trace and the live recorder agree record-for-record."""
    position = trace.total
    for record in reversed(list(trace)):
        position -= 1
        if record.is_read or not record.overlaps(start, size):
            continue
        if before_index is not None and \
                record.stop_index > before_index:
            continue
        return position, record
    return None


def provenance(conn, addr: int, size: int,
               workload: Optional[str] = None,
               run_id: Optional[int] = None,
               before_index: Optional[int] = None
               ) -> List[Dict[str, Any]]:
    """Last-write lookup across stored runs.

    For every matching run, the most recent write overlapping
    ``[addr, addr+size)`` — trace position, writing pc (the §2
    notification site), instruction index, old/new word values — or a
    ``never written`` marker when the stored trace holds no such
    write.
    """
    runs = ([get_run(conn, run_id)] if run_id is not None
            else list_runs(conn, workload=workload))
    out: List[Dict[str, Any]] = []
    for run in runs:
        trace = load_trace(conn, run.id)
        answer = _last_write(trace, addr, size,
                             before_index=before_index)
        entry: Dict[str, Any] = {
            "run": run.id, "workload": run.workload,
            "scale": run.scale, "seed": run.seed,
            "trace_dropped": run.trace_dropped,
        }
        if answer is None:
            entry["written"] = False
        else:
            position, record = answer
            entry.update({
                "written": True, "position": position,
                "pc": record.pc, "index": record.index,
                "addr": record.addr, "size": record.size,
                "old": record.old, "new": record.new,
            })
        out.append(entry)
    return out


# -- store-wide statistics ----------------------------------------------------


def store_stats(conn) -> Dict[str, Any]:
    """Totals: runs, workloads, dedup ratio, payload footprint."""
    from repro.store.retention import stored_bytes

    (runs,) = conn.execute("SELECT COUNT(*) FROM runs").fetchone()
    (workloads,) = conn.execute(
        "SELECT COUNT(DISTINCT workload) FROM runs").fetchone()
    (ingests,) = conn.execute(
        "SELECT COALESCE(SUM(ingest_count), 0) FROM runs").fetchone()
    (unique_keyframes,) = conn.execute(
        "SELECT COUNT(*) FROM keyframes").fetchone()
    (keyframe_refs,) = conn.execute(
        "SELECT COUNT(*) FROM run_keyframes").fetchone()
    (keyframe_bytes,) = conn.execute(
        "SELECT COALESCE(SUM(size), 0) FROM keyframes").fetchone()
    (referenced_bytes,) = conn.execute(
        "SELECT COALESCE(SUM(k.size), 0) FROM run_keyframes r "
        "JOIN keyframes k ON k.digest = r.keyframe_digest").fetchone()
    return {
        "runs": runs,
        "workloads": workloads,
        "ingests": ingests,
        "duplicate_ingests": ingests - runs,
        "unique_keyframes": unique_keyframes,
        "keyframe_refs": keyframe_refs,
        "dedup_ratio": (round(referenced_bytes / keyframe_bytes, 3)
                        if keyframe_bytes else 1.0),
        "stored_bytes": stored_bytes(conn),
    }
