"""``repro analyze``: cross-run analytics over the persistent store.

Subverbs (each printable as a table or ``--json``):

* ``runs`` — the stored run headers (id, workload, scale, seed,
  monitor-set digest, instructions, wall time, ingest count);
* ``hot`` — hottest written regions across runs, adjacent hot words
  merged into contiguous regions;
* ``writes`` — write-pattern statistics per run: writes/kinstr,
  monitored-hit ratio, distinct words, per-word densities;
* ``regress`` — overhead deltas between two runs of a workload (or
  the newest stored run against a ``BENCH_*.json`` baseline), with a
  ``--threshold`` beyond which the exit code is 1 — the CI gate;
* ``provenance`` — last-write lookup across stored runs: the watch
  expression resolves through the workload registry (stored traces
  are self-describing, so no source file is needed for §6 workloads)
  or ``--source FILE``, or give ``--addr/--size`` directly;
* ``stats`` — store totals: dedup ratio, payload bytes, duplicates.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

from repro.errors import StoreError
from repro.store.store import DEFAULT_STORE_PATH, TraceStore

__all__ = ["add_analyze_parser", "run_analyze"]


def add_analyze_parser(subparsers) -> None:
    import argparse

    parser = subparsers.add_parser(
        "analyze", help="cross-run analytics over a persistent "
                        "trace store")
    # --db/--json are accepted both before and after the subverb; the
    # subverb copies default to SUPPRESS so an unset post-verb flag
    # cannot clobber a pre-verb value
    parser.add_argument("--db", default=DEFAULT_STORE_PATH,
                        metavar="PATH",
                        help="store database (default %(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--db", default=argparse.SUPPRESS,
                        metavar="PATH")
    common.add_argument("--json", action="store_true",
                        default=argparse.SUPPRESS)
    verbs = parser.add_subparsers(dest="analyze_verb")

    runs = verbs.add_parser("runs", parents=[common],
                            help="list stored runs")
    runs.add_argument("--workload", default=None)

    hot = verbs.add_parser("hot", parents=[common],
                           help="hottest written regions")
    hot.add_argument("--workload", default=None)
    hot.add_argument("--top", type=int, default=10)

    writes = verbs.add_parser("writes", parents=[common],
                              help="write-pattern statistics per run")
    writes.add_argument("--workload", default=None)

    regress = verbs.add_parser(
        "regress", parents=[common],
        help="overhead deltas between runs (exit 1 past --threshold)")
    regress.add_argument("--workload", required=True)
    regress.add_argument("--runs", nargs=2, type=int, default=None,
                         metavar=("BASE", "CAND"),
                         help="compare these run ids (default: the "
                              "two newest)")
    regress.add_argument("--baseline", default=None, metavar="FILE",
                         help="compare the newest run against a "
                              "BENCH_*.json baseline instead")
    regress.add_argument("--threshold", type=float, default=10.0,
                         metavar="PCT")

    provenance = verbs.add_parser(
        "provenance", parents=[common],
        help="last-write lookup across stored runs")
    provenance.add_argument("expression", nargs="?", default=None,
                            help="watch expression (g, a[3], s.f)")
    provenance.add_argument("--workload", default=None)
    provenance.add_argument("--run", type=int, default=None)
    provenance.add_argument("--source", default=None, metavar="FILE",
                            help="resolve the expression against this "
                                 "mini-C file (for non-registry runs)")
    provenance.add_argument("--addr", default=None,
                            help="raw address (decimal or 0x...)")
    provenance.add_argument("--size", type=int, default=4)
    provenance.add_argument("--before", type=int, default=None,
                            metavar="INDEX",
                            help="only writes stopping at or before "
                                 "this instruction index")

    verbs.add_parser("stats", parents=[common],
                     help="store totals and dedup ratio")


def _table(rows: List[Dict[str, Any]], columns: List[str]) -> str:
    if not rows:
        return "(no rows)"
    headers = {column: column for column in columns}
    widths = {column: len(column) for column in columns}
    rendered = []
    for row in [headers] + [
            {column: _cell(row.get(column)) for column in columns}
            for row in rows]:
        for column in columns:
            widths[column] = max(widths[column], len(str(row[column])))
        rendered.append(row)
    lines = []
    for i, row in enumerate(rendered):
        lines.append("  ".join(
            str(row[column]).ljust(widths[column])
            for column in columns).rstrip())
        if i == 0:
            lines.append("  ".join("-" * widths[column]
                                   for column in columns))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%g" % value
    if isinstance(value, list):
        return ",".join(str(item) for item in value)
    return str(value)


def _resolve_region(store: TraceStore, args) -> tuple:
    """(addr, size) for the provenance query."""
    if args.addr is not None:
        return int(args.addr, 0), args.size
    if args.expression is None:
        raise StoreError(
            "provenance needs an expression (with --workload or "
            "--source) or --addr", reason="unresolvable")
    source: Optional[str] = None
    lang = "C"
    if args.source is not None:
        with open(args.source) as handle:
            source = handle.read()
    else:
        # stored traces are self-describing: recover the program from
        # the run header and the workload registry
        runs = (store.runs(workload=args.workload)
                if args.run is None else [store.run(args.run)])
        if not runs:
            raise StoreError(
                "no stored runs%s" % (
                    " for workload %r" % args.workload
                    if args.workload else ""),
                reason="unknown_run", workload=args.workload)
        run = runs[-1]
        from repro.workloads import WORKLOADS, workload_source
        if run.workload not in WORKLOADS:
            raise StoreError(
                "run %d's workload %r is not in the registry; pass "
                "--source FILE or --addr" % (run.id, run.workload),
                reason="unresolvable", workload=run.workload)
        source = workload_source(run.workload, run.scale or 1.0)
        lang = run.lang or WORKLOADS[run.workload].lang
    from repro.debugger import Debugger
    debugger = Debugger.for_source(source, lang=lang, optimize=None)
    _entry, addr, size = debugger.resolve(args.expression)
    return addr, size


def _load_baseline(path: str, workload: str) -> Dict[str, Any]:
    with open(path) as handle:
        bench = json.load(handle)
    for entry in bench.get("workloads", []):
        if entry.get("workload") == workload:
            return entry
    raise StoreError("baseline %s has no workload %r" % (path, workload),
                     reason="unresolvable", workload=workload)


def _regress_baseline(store: TraceStore, args) -> Dict[str, Any]:
    """Newest stored run vs a BENCH_*.json row: throughput deltas."""
    runs = store.runs(workload=args.workload)
    if not runs:
        raise StoreError("no stored runs for workload %r"
                         % args.workload, reason="unknown_run",
                         workload=args.workload)
    candidate = runs[-1]
    entry = _load_baseline(args.baseline, args.workload)
    base_wall = entry.get("recorded_run_s") or entry.get("plain_run_s")
    base_instr = entry.get("instructions")
    base_rate = (base_instr / base_wall
                 if base_wall and base_instr else None)
    rate = candidate.instr_per_s
    rate_delta = (round((rate - base_rate) / base_rate * 100.0, 2)
                  if rate is not None and base_rate else None)
    regressions = []
    if rate_delta is not None and rate_delta < -args.threshold:
        regressions.append("instr_per_s")
    return {
        "workload": args.workload,
        "baseline_file": args.baseline,
        "baseline_instr_per_s":
            None if base_rate is None else round(base_rate),
        "candidate": candidate.as_dict(),
        "deltas_pct": {"instr_per_s": rate_delta},
        "threshold_pct": args.threshold,
        "regressions": regressions,
    }


def run_analyze(args) -> int:
    verb = getattr(args, "analyze_verb", None)
    if verb is None:
        print("error: analyze needs a subverb "
              "(runs, hot, writes, regress, provenance, stats)",
              file=sys.stderr)
        return 2
    with TraceStore(args.db) as store:
        if verb == "runs":
            rows = [run.as_dict()
                    for run in store.runs(workload=args.workload)]
            return _emit(args, rows,
                         ["id", "workload", "scale", "seed", "monitors",
                          "stride", "instructions", "trace_records",
                          "wall_time_s", "ingest_count"])
        if verb == "hot":
            rows = store.hot(workload=args.workload, top=args.top)
            for row in rows:
                row["addr"] = "0x%08x" % row["addr"]
            return _emit(args, rows,
                         ["addr", "size", "writes", "runs", "workloads"])
        if verb == "writes":
            rows = store.write_stats(workload=args.workload)
            return _emit(args, rows,
                         ["run", "workload", "writes", "reads",
                          "writes_per_kinstr", "monitored_hit_ratio",
                          "distinct_words", "mean_writes_per_word",
                          "peak_word_writes"])
        if verb == "regress":
            if args.baseline is not None:
                report = _regress_baseline(store, args)
            else:
                run_a, run_b = args.runs or (None, None)
                report = store.regress(args.workload, run_a=run_a,
                                       run_b=run_b,
                                       threshold_pct=args.threshold)
            if args.json:
                print(json.dumps(report, indent=2))
            else:
                _print_regress(report)
            return 1 if report["regressions"] else 0
        if verb == "provenance":
            addr, size = _resolve_region(store, args)
            rows = store.provenance(addr, size,
                                    workload=args.workload,
                                    run_id=args.run,
                                    before_index=args.before)
            for row in rows:
                if row["written"]:
                    row["pc"] = "0x%08x" % row["pc"]
                    row["addr"] = "0x%08x" % row["addr"]
                    row["change"] = "%d -> %d" % (row.pop("old"),
                                                  row.pop("new"))
                else:
                    row["change"] = "(never written)"
            print("-- provenance of 0x%08x+%d" % (addr, size))
            return _emit(args, rows,
                         ["run", "workload", "seed", "position",
                          "index", "pc", "addr", "size", "change"])
        if verb == "stats":
            stats = store.stats()
            if args.json:
                print(json.dumps(stats, indent=2))
            else:
                for key in sorted(stats):
                    print("%-20s %s" % (key, stats[key]))
            return 0
    print("error: unknown analyze subverb %r" % verb, file=sys.stderr)
    return 2


def _emit(args, rows: List[Dict[str, Any]],
          columns: List[str]) -> int:
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(_table(rows, columns))
    return 0


def _print_regress(report: Dict[str, Any]) -> None:
    candidate = report["candidate"]
    print("-- regress %s: candidate run %d"
          % (report["workload"], candidate["id"]))
    if "baseline_file" in report:
        print("   baseline: %s (%s instr/s)"
              % (report["baseline_file"],
                 report.get("baseline_instr_per_s")))
    else:
        print("   baseline: run %d" % report["baseline"]["id"])
    for metric, delta in sorted(report["deltas_pct"].items()):
        flag = "  <-- REGRESSION" if metric in report["regressions"] \
            else ""
        print("   %-18s %s%%%s"
              % (metric, "-" if delta is None else "%+.2f" % delta,
                 flag))
    if report["regressions"]:
        print("   verdict: REGRESSION past %.1f%% threshold"
              % report["threshold_pct"])
    else:
        print("   verdict: ok (threshold %.1f%%)"
              % report["threshold_pct"])
