"""Reproduction of "Practical Data Breakpoints: Design and
Implementation" (Wahbe, Lucco, Graham; PLDI 1993).

Public entry points:

* :class:`repro.debugger.Debugger` — source-level data breakpoints
  (the five-minute path; see ``examples/quickstart.py``);
* :class:`repro.session.DebugSession` — the mid-level pipeline
  (compile, instrument with a write-check strategy and optional
  optimization plan, attach the monitored region service);
* :class:`repro.core.service.MonitoredRegionService` — the paper's §2
  interface (``CreateMonitoredRegion`` / ``DeleteMonitoredRegion`` /
  ``NotificationCallBack`` / ``PreMonitor`` / ``PostMonitor``);
* :func:`repro.optimizer.pipeline.build_plan` — the §4 write-check
  elimination analysis;
* :mod:`repro.eval` — one module per table/figure of the evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
