"""Deterministic, seedable fault injection for robustness testing.

The paper's headline invariant is soundness, and the place debugger
infrastructure breaks in practice is dynamic patch installation and
monitor-structure maintenance (cf. Transition Watchpoints; Maebe & De
Bosschere on self-modifying code).  This module supplies the harness
that proves those layers recover: a :class:`FaultPlan` is threaded
through the monitored region service and the simulated machine, and
each hardened operation calls :meth:`FaultPlan.trip` at a named
*injection point*.  The plan decides — deterministically — whether that
occurrence raises an :class:`~repro.errors.InjectedFault`.

Two scheduling modes compose:

* **explicit**: ``FaultPlan({PATCH_INSTALL: {1}})`` faults the second
  patch installation and nothing else;
* **seeded**: ``FaultPlan(seed=7, rate=0.2)`` faults each trip with
  probability 0.2 from a private PRNG, so a schedule is reproducible
  from its seed alone.

A plan can also carry simulation *budgets* (cycles / instructions /
traps); :meth:`FaultPlan.watchdog` converts them into a
:class:`repro.machine.cpu.Watchdog`, which is how the evaluation
harness injects cycle-budget exhaustion into a benchmark run.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import InjectedFault

# -- injection point names ----------------------------------------------------

#: bitmap segment allocation from the arena (core.bitmap)
BITMAP_ALLOC = "bitmap.alloc"
#: segment-table pointer publication (core.bitmap)
BITMAP_PUBLISH = "bitmap.publish"
#: Kessler patch installation (core.patches)
PATCH_INSTALL = "patches.install"
#: Kessler patch removal (core.patches)
PATCH_REMOVE = "patches.remove"
#: the four §2/§4.2 MRS entry points (core.service)
SERVICE_CREATE = "service.create_region"
SERVICE_DELETE = "service.delete_region"
SERVICE_PRE_MONITOR = "service.pre_monitor"
SERVICE_POST_MONITOR = "service.post_monitor"
#: any simulated-memory word/byte write (machine.memory)
MEMORY_WRITE = "memory.write"
#: keyframe capture in the record/replay engine (replay.recorder)
REPLAY_KEYFRAME = "replay.keyframe"
#: frozen-session write, fired mid-stream so a fault simulates a crash
#: with a torn temp file on disk (server.hibernate)
HIBERNATE_WRITE = "hibernate.write"
#: frozen-session read/parse (server.hibernate)
HIBERNATE_LOAD = "hibernate.load"
#: client-side request transmission (server.client)
CLIENT_SEND = "client.send"
#: persistent trace-store transaction commit, fired after every write
#: in the transaction has been issued but *before* COMMIT — a fault
#: here simulates a crash mid-commit, which must leave the previous
#: committed generation intact (repro.store.connection)
STORE_COMMIT = "store.commit"
#: interprocedural elimination decision (analysis ipa pass); tripping it
#: makes the pass eliminate a check *without* registering re-insertion
#: sites — deliberately unsound, so the trace-backed auditor has a
#: provable corruption to catch (analysis.audit)
ANALYSIS_UNSOUND = "analysis.unsound"

FAULT_POINTS = (BITMAP_ALLOC, BITMAP_PUBLISH, PATCH_INSTALL, PATCH_REMOVE,
                SERVICE_CREATE, SERVICE_DELETE, SERVICE_PRE_MONITOR,
                SERVICE_POST_MONITOR, MEMORY_WRITE, REPLAY_KEYFRAME,
                HIBERNATE_WRITE, HIBERNATE_LOAD, CLIENT_SEND,
                ANALYSIS_UNSOUND, STORE_COMMIT)


class FaultPlan:
    """A deterministic schedule of injected faults plus run budgets.

    *schedule* maps an injection-point name to the set of zero-based
    occurrence indices that must fault (or ``True`` for "every
    occurrence").  *seed*/*rate* add pseudo-random faults on top,
    restricted to *points* when given.  ``max_faults`` caps the total
    number of faults fired, so a high-rate plan cannot wedge a retry
    loop forever.
    """

    def __init__(self, schedule: Optional[Mapping[str, Any]] = None,
                 seed: Optional[int] = None, rate: float = 0.0,
                 points: Optional[Iterable[str]] = None,
                 max_faults: Optional[int] = None,
                 max_instructions: Optional[int] = None,
                 max_cycles: Optional[int] = None,
                 max_traps: Optional[int] = None):
        self._schedule: Dict[str, Any] = {}
        for point, occurrences in (schedule or {}).items():
            self._schedule[point] = (True if occurrences is True
                                     else set(occurrences))
        self._rate = rate
        self._rng = random.Random(seed)
        self._points: Optional[Set[str]] = (set(points) if points is not None
                                            else None)
        self._max_faults = max_faults
        self._suspended = 0
        #: per-point count of trip() calls (occurrence indices)
        self.counts: Dict[str, int] = {}
        #: every fault fired, as (point, occurrence, context) — the
        #: deterministic record a seeded schedule can be replayed from
        self.fired: List[Tuple[str, int, Dict[str, Any]]] = []
        # simulation budgets (see watchdog())
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles
        self.max_traps = max_traps

    @classmethod
    def nth(cls, point: str, n: int = 0, **kwargs) -> "FaultPlan":
        """Plan that faults only the (n+1)-th occurrence of *point*."""
        return cls(schedule={point: {n}}, **kwargs)

    # -- the injection hook ------------------------------------------------

    def trip(self, point: str, **context: Any) -> None:
        """Called by hardened code at injection point *point*.

        Either returns (no fault scheduled for this occurrence) or
        raises :class:`InjectedFault` carrying *context*.
        """
        if self._suspended:
            return
        occurrence = self.counts.get(point, 0)
        self.counts[point] = occurrence + 1
        if self._max_faults is not None and \
                len(self.fired) >= self._max_faults:
            return
        scheduled = self._schedule.get(point)
        fire = scheduled is True or \
            (scheduled is not None and occurrence in scheduled)
        if not fire and self._rate > 0.0 and \
                (self._points is None or point in self._points):
            fire = self._rng.random() < self._rate
        if fire:
            self.fired.append((point, occurrence, dict(context)))
            raise InjectedFault(point, occurrence, **context)

    @contextmanager
    def suspended(self):
        """No faults fire (and no occurrences count) inside this block.

        Recovery code — rollback, state inspection — runs under this so
        a pathological schedule cannot make the undo path itself fail.
        """
        self._suspended += 1
        try:
            yield self
        finally:
            self._suspended -= 1

    # -- budgets -----------------------------------------------------------

    def watchdog(self, **kwargs):
        """A fresh :class:`~repro.machine.cpu.Watchdog` for this plan's
        budgets, or ``None`` if the plan carries no budget."""
        if (self.max_instructions is None and self.max_cycles is None
                and self.max_traps is None):
            return None
        from repro.machine.cpu import Watchdog
        return Watchdog(max_instructions=self.max_instructions,
                        max_cycles=self.max_cycles,
                        max_traps=self.max_traps, **kwargs)

    def __repr__(self) -> str:
        parts = []
        if self._schedule:
            parts.append("schedule=%r" % self._schedule)
        if self._rate:
            parts.append("rate=%g" % self._rate)
        for name in ("max_instructions", "max_cycles", "max_traps"):
            value = getattr(self, name)
            if value is not None:
                parts.append("%s=%d" % (name, value))
        return "<FaultPlan %s fired=%d>" % (" ".join(parts) or "empty",
                                            len(self.fired))
