"""Trap-per-instruction baseline: the gdb/dbx model (§1).

"Both systems conservatively assume all instructions are unsafe.  The
possible side-effects of each instruction are checked through
dynamically inserted trap instructions.  Due to context switch and trap
costs, this approach incurs very high overhead.  We measured the
overhead of dbx to be a factor of 85,000, independent of the program
being debugged."

The model: every instruction traps into the debugger process (two
context switches plus a ptrace-style register/memory inspection), and
the debugger checks the regions itself.  ``trap_cost`` is the cycles
one such round trip costs; the default reproduces dbx's ~85,000x
slowdown on a CPI~1.5 machine.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.asm.assembler import assemble
from repro.asm.loader import load_program
from repro.core.regions import MonitoredRegion, RegionSet

#: cycles per debugger round trip (context switch out + inspect + back)
DEFAULT_TRAP_COST = 130_000


class TrapBasedDebugger:
    """Single-steps the debuggee, paying a trap per instruction."""

    def __init__(self, asm_source: str, trap_cost: int = DEFAULT_TRAP_COST):
        self.trap_cost = trap_cost
        program = assemble(asm_source)
        self.loaded = load_program(program, record_writes=True)
        self.regions = RegionSet()
        self.hits: List[Tuple[int, int, bool]] = []
        self.callbacks: List[Callable[[int, int, bool], None]] = []

    def watch(self, start: int, size: int) -> MonitoredRegion:
        region = MonitoredRegion(start, size)
        self.regions.add(region)
        return region

    def run(self, max_instructions: int = 10_000_000) -> int:
        """Run to completion, trapping on every instruction."""
        cpu = self.loaded.cpu
        cpu.pc = self.loaded.entry
        cpu.npc = self.loaded.entry + 4
        cpu.running = True
        seen_writes = 0
        budget = max_instructions
        while cpu.running:
            cpu.charge(self.trap_cost)  # stop, inspect, resume
            cpu.step()
            # the debugger inspects any memory effect of the instruction
            while seen_writes < len(cpu.write_trace):
                _site, addr, width = cpu.write_trace[seen_writes]
                seen_writes += 1
                if self.regions.hit(addr, width):
                    self.hits.append((addr, width, False))
                    for callback in self.callbacks:
                        callback(addr, width, False)
            budget -= 1
            if budget <= 0:
                raise RuntimeError("instruction budget exhausted")
        return cpu.exit_code if cpu.exit_code is not None else 0

    def overhead_factor(self, baseline_cycles: int) -> float:
        """Slowdown factor relative to an untraced run."""
        return self.loaded.cpu.cycles / baseline_cycles
