"""Hardware watchpoint baseline (§1).

Commercial processors watch a handful of words with dedicated hardware:
the i386 four, the MIPS R4000 and the SPARC one.  Watching is free at
runtime, but "the hardware approach inherently limits the number of
data words simultaneously monitored" — which is exactly the failure
mode this model exhibits.
"""

from __future__ import annotations

from repro.errors import ReproError

from typing import Callable, List, Optional

from repro.asm.loader import LoadedProgram
from repro.core.regions import MonitoredRegion

#: §1 capacities
CAPACITIES = {"i386": 4, "R4000": 1, "SPARC": 1}


class WatchpointCapacityError(ReproError):
    """The debugging request needs more watched words than the hardware
    provides — the §1 argument against hardware-only data breakpoints."""


class HardwareWatchpoints:
    """Capacity-limited, zero-overhead watchpoints."""

    def __init__(self, loaded: LoadedProgram, processor: str = "SPARC",
                 capacity: Optional[int] = None):
        if capacity is None:
            if processor not in CAPACITIES:
                raise ValueError("unknown processor %r" % processor)
            capacity = CAPACITIES[processor]
        self.processor = processor
        self.capacity = capacity
        self.loaded = loaded
        self.regions: List[MonitoredRegion] = []
        self.hits: List[tuple] = []
        self.callbacks: List[Callable[[int, int, bool], None]] = []
        self._install()

    def _install(self) -> None:
        mem = self.loaded.cpu.mem

        def handler(addr: int, size: int) -> None:
            for region in self.regions:
                if addr < region.end and region.start < addr + size:
                    self.hits.append((addr, size, False))
                    for callback in self.callbacks:
                        callback(addr, size, False)
                    return

        mem.fault_handler = handler

    def words_in_use(self) -> int:
        return sum(region.size // 4 for region in self.regions)

    def watch(self, start: int, size: int) -> MonitoredRegion:
        region = MonitoredRegion(start, size)
        needed = self.words_in_use() + region.size // 4
        if needed > self.capacity:
            raise WatchpointCapacityError(
                "%s hardware watches %d word(s); request needs %d"
                % (self.processor, self.capacity, needed))
        self.regions.append(region)
        # zero-overhead detection: hardware match, no cycle charge
        self.loaded.cpu.mem.protect_range(region.start, region.size)
        return region

    def unwatch(self, region: MonitoredRegion) -> None:
        self.regions.remove(region)
