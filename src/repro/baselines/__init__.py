"""Prior-art data breakpoint implementations the paper compares against (§1, §3)."""
