"""Hash-table write checks: the Wahbe '92 pilot-study baseline (§3).

"The write checks tested in Wahbe's pilot study of data breakpoint
implementations used a hash table for address lookup.  This data
structure uses memory efficiently ... However, it requires several
memory accesses for each address lookup. ... the write check overhead
generally matched the 209% to 642% reported in the previous study."

The model: each write calls a checking procedure that saves scratch
registers to the stack (the pilot study's calling convention), hashes
the target address and walks a bucket *chain* of monitored words.
Empty buckets still cost the register saves plus the bucket load —
several memory accesses more than the segmented bitmap.
"""

from __future__ import annotations

from typing import List

from repro.core.regions import MonitoredRegion
from repro.core.runtime_asm import TRAP_MONITOR_HIT, size_code
from repro.core.service import MonitoredRegionService
from repro.instrument.strategies import CheckStrategy
from repro.instrument.writes import WriteSite
from repro.machine.memory import Memory

HASH_TABLE_BASE = 0xAA000000
HASH_NODE_BASE = 0xAB000000
#: number of buckets (power of two)
HASH_BUCKETS = 1024


class HashTableStrategy(CheckStrategy):
    """Per-write procedure call into the hash-probe routine."""

    name = "HashTable"

    def site_check(self, site: WriteSite, is_read: bool = False
                   ) -> List[str]:
        skip = ".Lmrs_skip_%d" % site.site
        from repro.instrument.strategies import address_computation
        return [
            "tst %g2",
            "bne %s" % skip,
            "nop",
            address_computation(site.stmt.ops[1]),
            "call __mrs_hash_w%d" % site.width,
            "nop",
            "%s:" % skip,
        ]

    def library(self) -> str:
        lines: List[str] = ["\t.text", "\t.tag lib"]
        for width in (4, 1):
            lines += self._routine(width)
        lines.append("\t.tag orig")
        return "\n".join(lines) + "\n"

    def _routine(self, width: int) -> List[str]:
        name = "__mrs_hash_w%d" % width
        loop = name + "_loop"
        done = name + "_done"
        hit = name + "_hit"
        return [
            "%s:" % name,
            "\tsave %sp, -96, %sp",
            "\tmov 1, %g3",
            # the pilot study's convention: spill scratch to the stack
            # and recompute everything from scratch on each check
            "\tst %l0, [%sp-4]",
            "\tst %l1, [%sp-8]",
            "\tst %l2, [%sp-12]",
            "\tst %l3, [%sp-16]",
            "\tst %l4, [%sp-20]",
            "\tset %d, %%l0" % HASH_TABLE_BASE,
            "\tsrl %g4, 2, %l1",
            "\tsrl %g4, 12, %l3",       # multiplicative-style hash mix
            "\txor %l1, %l3, %l1",
            "\tsmul %l1, 13, %l1",
            "\tand %%l1, %d, %%l1" % (HASH_BUCKETS - 1),
            "\tsll %l1, 2, %l1",
            "\tld [%l0+%l1], %l2",      # bucket head pointer
            "%s:" % loop,
            "\ttst %l2",
            "\tbe %s" % done,
            "\tnop",
            "\tld [%l2], %l1",          # node: monitored word address
            "\tcmp %l1, %g4",
            "\tbe %s" % hit,
            "\tnop",
            "\tld [%l2+4], %l2",        # next
            "\tba %s" % loop,
            "\tnop",
            "%s:" % hit,
            "\tmov %d, %%g6" % size_code(width, False),
            "\tta 0x%x" % TRAP_MONITOR_HIT,
            "%s:" % done,
            "\tld [%sp-4], %l0",
            "\tld [%sp-8], %l1",
            "\tld [%sp-12], %l2",
            "\tld [%sp-16], %l3",
            "\tld [%sp-20], %l4",
            "\tmov 0, %g3",
            "\tret",
            "\trestore",
        ]


class HashTableMrs(MonitoredRegionService):
    """MRS whose create/delete also maintain the in-debuggee hash table.

    Node layout: ``[word_address, next_node]``.  Buckets chain by
    ``(addr >> 2) & (HASH_BUCKETS - 1)``.
    """

    def __init__(self, loaded, instrumentation):
        self._node_next = HASH_NODE_BASE
        self._nodes = {}
        super().__init__(loaded, instrumentation)

    def _bucket_entry(self, word_addr: int) -> int:
        mixed = ((word_addr >> 2) ^ (word_addr >> 12)) * 13
        index = mixed & (HASH_BUCKETS - 1)
        return HASH_TABLE_BASE + 4 * index

    def create_region(self, start: int, size: int) -> MonitoredRegion:
        region = super().create_region(start, size)
        mem: Memory = self.cpu.mem
        for addr in region.words():
            node = self._node_next
            self._node_next += 8
            entry = self._bucket_entry(addr)
            mem.write_word(node, addr)
            mem.write_word(node + 4, mem.read_word(entry))
            mem.write_word(entry, node)
            self._nodes[addr] = node
        return region

    def delete_region(self, region: MonitoredRegion) -> None:
        super().delete_region(region)
        mem: Memory = self.cpu.mem
        for addr in region.words():
            entry = self._bucket_entry(addr)
            # unlink by rebuilding the chain without this node
            chain: List[int] = []
            node = mem.read_word(entry)
            while node:
                if mem.read_word(node) != addr:
                    chain.append(node)
                node = mem.read_word(node + 4)
            mem.write_word(entry, chain[0] if chain else 0)
            for which, node in enumerate(chain):
                nxt = chain[which + 1] if which + 1 < len(chain) else 0
                mem.write_word(node + 4, nxt)
            self._nodes.pop(addr, None)
