"""Virtual-memory page-protection baseline: the VAX DEBUG model (§1).

"Rather than check each instruction, VAX DEBUG protects each virtual
memory page containing data that is part of a data break condition."

Every write to a protected page takes a protection fault: the kernel
delivers it to the debugger, which checks whether the faulting address
is actually monitored, unprotects the page, single-steps the write and
reprotects — two traps and two context switches per faulting write.
Writes to *unmonitored* data that merely shares a page with a monitored
region pay the same cost (false faults), which is what makes this
approach slow for hot pages.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.asm.assembler import assemble
from repro.asm.loader import load_program
from repro.core.regions import MonitoredRegion, RegionSet

#: cycles per protection fault (fault + context switches + restep)
DEFAULT_FAULT_COST = 4_000


class PageProtectionDebugger:
    """Data breakpoints via page protection."""

    def __init__(self, asm_source: str,
                 fault_cost: int = DEFAULT_FAULT_COST):
        program = assemble(asm_source)
        self.loaded = load_program(program)
        self.fault_cost = fault_cost
        self.regions = RegionSet()
        self.hits: List[Tuple[int, int, bool]] = []
        self.false_faults = 0
        self.callbacks: List[Callable[[int, int, bool], None]] = []
        self.loaded.cpu.mem.fault_handler = self._on_fault

    def _on_fault(self, addr: int, size: int) -> None:
        cpu = self.loaded.cpu
        cpu.charge(self.fault_cost)
        if self.regions.hit(addr, size):
            self.hits.append((addr, size, False))
            for callback in self.callbacks:
                callback(addr, size, False)
        else:
            self.false_faults += 1

    def watch(self, start: int, size: int) -> MonitoredRegion:
        region = MonitoredRegion(start, size)
        self.regions.add(region)
        self.loaded.cpu.mem.protect_range(start, size)
        return region

    def run(self, max_instructions: int = 400_000_000) -> int:
        return self.loaded.run(max_instructions=max_instructions)
