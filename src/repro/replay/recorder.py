"""Recorder: keyframe ring + write-trace capture during execution.

The recorder drives the debuggee in keyframe-stride chunks, capturing
a full debugger checkpoint (machine + MRS + watchpoint bookkeeping)
every ``stride`` instructions into a bounded ring, and logging every
monitor notification into a :class:`~repro.replay.trace.WriteTrace`.
The simulator has no external inputs, so a keyframe plus forward
re-execution reproduces any recorded point exactly — that is the whole
replay contract, and the recorder verifies it: while re-executing over
already-recorded time (``mode == "replay"``) each observed hit is
compared against the recorded one and each keyframe crossing checks a
state digest, raising :class:`~repro.errors.DivergenceError` on any
drift rather than silently answering from a wrong timeline.

Keyframe ring eviction keeps geometric coverage: when the ring fills,
the first and newest keyframes are kept, every other interior one is
dropped, and the effective stride doubles — old history gets sparser
instead of disappearing.

Fault injection: each keyframe capture passes through the
``replay.keyframe`` injection point *before* the keyframe is
published to the ring, so an injected fault degrades the recording
(that keyframe is skipped and counted in :attr:`capture_faults`) but
can never publish a torn keyframe.
"""

from __future__ import annotations

import hashlib
import struct
import time
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DivergenceError, InjectedFault, ReplayError
from repro.faults import REPLAY_KEYFRAME
from repro.machine.cpu import SimulationLimit
from repro.replay.trace import WriteRecord, WriteTrace

__all__ = ["Keyframe", "Recorder", "monitor_set_digest", "state_digest"]

DEFAULT_STRIDE = 2000
DEFAULT_MAX_KEYFRAMES = 32
DEFAULT_MAX_TRACE = 65536

_WORD = 0xFFFFFFFF


def state_digest(cpu) -> int:
    """CRC-32 digest of the control state replay must reproduce.

    Covers pc/npc, condition codes, the global registers, window depth
    and the instruction/store counters — cheap to compute at every
    keyframe but sensitive to any drift in the executed path.
    """
    regs = cpu.regs
    data = struct.pack(">IIBBBBQQ", cpu.pc & _WORD, cpu.npc & _WORD,
                       cpu.icc_n & 1, cpu.icc_z & 1, cpu.icc_v & 1,
                       cpu.icc_c & 1, cpu.instructions, cpu.stores)
    data += struct.pack(">%dI" % len(regs.globals),
                        *[value & _WORD for value in regs.globals])
    data += struct.pack(">II", regs.depth & _WORD, cpu.loads & _WORD)
    return zlib.crc32(data) & 0xFFFFFFFF


def monitor_set_digest(mrs) -> str:
    """Deterministic digest of the monitored-region set — part of a
    trace's run-metadata header, so two recordings are only treated as
    the same run when they watched the same addresses."""
    spans = sorted((region.start, region.size) for region in mrs.regions)
    data = ",".join("%x+%x" % span for span in spans).encode("ascii")
    return hashlib.sha256(data).hexdigest()[:16]


class Keyframe:
    """One point-in-time anchor: a checkpoint plus replay metadata."""

    __slots__ = ("index", "checkpoint", "trace_pos", "shadow", "digest")

    def __init__(self, index: int, checkpoint, trace_pos: int,
                 shadow: Dict[int, int], digest: int):
        self.index = index          #: cpu.instructions at capture
        self.checkpoint = checkpoint  #: Debugger.checkpoint() payload
        self.trace_pos = trace_pos  #: trace.total at capture
        self.shadow = shadow        #: monitored-word values at capture
        self.digest = digest        #: state_digest at capture

    def __repr__(self) -> str:
        return "<Keyframe @%d trace_pos=%d digest=0x%08x>" % (
            self.index, self.trace_pos, self.digest)


class Recorder:
    """Record (and verify re-execution of) one debugger's execution."""

    def __init__(self, debugger, stride: int = DEFAULT_STRIDE,
                 max_keyframes: int = DEFAULT_MAX_KEYFRAMES,
                 max_trace: int = DEFAULT_MAX_TRACE, faults=None):
        if stride < 1:
            raise ReplayError("keyframe stride must be positive",
                              stride=stride)
        self.debugger = debugger
        self.cpu = debugger.cpu
        self.stride = stride
        self.base_stride = stride
        self.max_keyframes = max(2, max_keyframes)
        self.trace = WriteTrace(max_records=max_trace)
        self.keyframes: List[Keyframe] = []
        self.faults = faults if faults is not None \
            else getattr(debugger.mrs, "faults", None)
        #: "record" (frontier), "replay" (verifying re-execution over
        #: recorded time), "scan" (transient last-write re-execution)
        self.mode = "record"
        self.active = False
        #: monitored-word -> last known value (for old-value capture)
        self._shadow: Dict[int, int] = {}
        #: (region_start, region_size) -> covered-since index
        self.coverage: Dict[Tuple[int, int], int] = {}
        #: instruction indexes at which the monitor set changed
        self.monitor_changes: List[int] = []
        #: (index, InjectedFault) per keyframe capture that faulted
        self.capture_faults: List[Tuple[int, InjectedFault]] = []
        self.start_index = 0
        #: frontier: highest instruction index recorded so far
        self.end_index = 0
        #: frontier progress in monitoring-invariant instructions
        #: (orig + lib tags) — the stop criterion for scan re-execution
        self.end_progress = 0
        self._cursor: Optional[int] = None
        self._scan_hits: Optional[List[WriteRecord]] = None
        self._in_hook = False
        #: wall-clock seconds spent inside resume() — recording cost,
        #: reported to the store's run header (not part of the trace
        #: bytes: wall time is not deterministic)
        self.wall_time_s = 0.0

    # -- run metadata ------------------------------------------------------

    def set_meta(self, **fields: Any) -> None:
        """Attach run-identity metadata to the trace header.

        Only deterministic facts (workload name, scale, seed, ...) may
        go here — the metadata is serialised into the canonical trace
        bytes, so it participates in the digest and the store's
        content address.  ``None`` values are dropped.
        """
        for key, value in fields.items():
            if value is None:
                self.trace.meta.pop(key, None)
            else:
                self.trace.meta[key] = value

    def export(self, wall_time_s: Optional[float] = None):
        """Package this recording for the persistent store.

        Returns a :class:`repro.store.ingest.RecordingExport`: the
        canonical trace bytes (run metadata completed with the
        monitor-set digest and stride, so the bytes are
        self-describing), every keyframe's machine checkpoint pickled
        for content-addressed dedup, and the run statistics for the
        store's run header.
        """
        from repro.store.ingest import export_recording

        return export_recording(
            self, wall_time_s=(wall_time_s if wall_time_s is not None
                               else self.wall_time_s))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin recording from the debuggee's current state."""
        if self.active:
            raise ReplayError("recording already active")
        self.active = True
        self.start_index = self.end_index = self.cpu.instructions
        self.end_progress = self._progress()
        for region in self.debugger.mrs.regions:
            self._cover_region(region.start, region.size,
                               self.start_index)
        self.debugger.mrs.add_callback(self._on_hit)
        self._capture_keyframe()

    def detach(self) -> None:
        """Stop recording and unhook from the MRS."""
        if not self.active:
            return
        self.active = False
        try:
            self.debugger.mrs.callbacks.remove(self._on_hit)
        except ValueError:
            pass

    def _progress(self) -> int:
        counts = self.cpu.tag_counts
        return counts.get("orig", 0) + counts.get("lib", 0)

    # -- shadow / coverage -------------------------------------------------

    def _cover_region(self, start: int, size: int, since: int) -> None:
        self.coverage.setdefault((start, size), since)
        mem = self.cpu.mem
        for word in range((start & ~3), (start + size + 3) & ~3, 4):
            self._shadow.setdefault(word, mem.read_word(word))

    def covered_since(self, start: int, size: int) -> Optional[int]:
        """Earliest index since which every word of ``[start,
        start+size)`` has been continuously monitored, or None if any
        word is uncovered now."""
        since = self.start_index
        for word in range((start & ~3), (start + size + 3) & ~3, 4):
            entry = None
            for (rstart, rsize), rsince in self.coverage.items():
                if rstart <= word < rstart + rsize:
                    entry = rsince
                    break
            if entry is None:
                return None
            since = max(since, entry)
        return since

    def on_monitor_change(self) -> None:
        """The debugger changed the watchpoint/region set.

        A change while time-travelled into recorded history forks the
        timeline: the now-stale future is discarded.  Either way a
        keyframe is captured at the change point so later replays never
        have to re-execute *across* a monitor-set change (which would
        diverge, since the change is a debugger action re-execution
        cannot reproduce).
        """
        if not self.active or self._in_hook:
            return
        now = self.cpu.instructions
        if now < self.end_index or self.mode == "replay":
            self.truncate_future(now)
        self.monitor_changes.append(now)
        current = {(region.start, region.size)
                   for region in self.debugger.mrs.regions}
        for key in list(self.coverage):
            if key not in current:
                del self.coverage[key]
        for start, size in current:
            self._cover_region(start, size, now)
        self._capture_keyframe()

    def truncate_future(self, now: int) -> None:
        """Discard every recorded fact later than instruction *now*."""
        position = self.trace.total
        for record in reversed(list(self.trace)):
            if record.stop_index <= now:
                break
            position -= 1
        self.trace.truncate(position)
        self.keyframes = [keyframe for keyframe in self.keyframes
                          if keyframe.index <= now]
        self.monitor_changes = [index for index in self.monitor_changes
                                if index <= now]
        self.end_index = now
        self.end_progress = self._progress()
        self.mode = "record"
        self._cursor = None

    # -- keyframes ---------------------------------------------------------

    def _capture_keyframe(self) -> Optional[Keyframe]:
        """Capture a keyframe at the current instruction boundary.

        Transactional against fault injection: the ``replay.keyframe``
        point trips before anything is published, so a fault skips the
        keyframe entirely — the ring never holds a torn entry.
        """
        index = self.cpu.instructions
        if self.keyframes and self.keyframes[-1].index == index:
            return self.keyframes[-1]
        try:
            if self.faults is not None:
                self.faults.trip(REPLAY_KEYFRAME, index=index,
                                 pc=self.cpu.pc)
            keyframe = Keyframe(index, self.debugger.checkpoint(),
                                self.trace.total, dict(self._shadow),
                                state_digest(self.cpu))
        except InjectedFault as exc:
            self.capture_faults.append((index, exc))
            return None
        self.keyframes.append(keyframe)
        if len(self.keyframes) > self.max_keyframes:
            self._thin_keyframes()
        return keyframe

    def _thin_keyframes(self) -> None:
        """Keep the first and newest keyframes, drop every other
        interior one, and double the stride — bounded memory with
        geometric history coverage."""
        keyframes = self.keyframes
        self.keyframes = (keyframes[:1] + keyframes[1:-1:2]
                          + keyframes[-1:])
        self.stride *= 2

    def nearest_keyframe(self, target: int) -> Optional[Keyframe]:
        """Newest keyframe at or before instruction *target*."""
        best = None
        for keyframe in self.keyframes:
            if keyframe.index <= target:
                best = keyframe
        return best

    def restore_keyframe(self, keyframe: Keyframe,
                         mode: str = "replay") -> None:
        """Rewind the debugger to *keyframe* and arm verification."""
        outer = self._in_hook
        self._in_hook = True
        try:
            self.debugger.restore(keyframe.checkpoint,
                                  discard_recording=False)
        finally:
            self._in_hook = outer
        self._shadow = dict(keyframe.shadow)
        self.mode = mode
        if mode == "replay":
            self._cursor = (keyframe.trace_pos
                            if keyframe.trace_pos >= self.trace.base
                            else None)

    def check_keyframe_digest(self, keyframe: Keyframe) -> None:
        observed = state_digest(self.cpu)
        if observed != keyframe.digest:
            raise DivergenceError(
                "replay diverged at keyframe",
                index=keyframe.index,
                expected_digest=keyframe.digest,
                observed_digest=observed,
                expected_pc=keyframe.checkpoint[0].pc,
                observed_pc=self.cpu.pc)

    # -- the MRS notification hook ----------------------------------------

    def _on_hit(self, addr: int, size: int, is_read: bool) -> None:
        cpu = self.cpu
        word = addr & ~3
        new = cpu.mem.read_word(word)
        old = self._shadow.get(word, new)
        record = WriteRecord(cpu.instructions, cpu.pc, addr, size,
                             old, new, is_read)
        if not is_read:
            self._shadow[word] = new
        if self.mode == "scan":
            if self._scan_hits is not None:
                self._scan_hits.append(record)
            return
        if self.mode == "replay":
            self._verify_hit(record)
            return
        self.trace.append(record)
        self.end_index = max(self.end_index, record.stop_index)

    def _verify_hit(self, observed: WriteRecord) -> None:
        if self._cursor is None:
            # the recorded prefix was evicted from the trace ring;
            # hit-level verification is impossible — keyframe digests
            # remain the divergence check for this travel
            return
        expected = self.trace.at(self._cursor)
        if expected is None:
            raise DivergenceError(
                "monitor hit beyond the recorded trace during replay",
                index=observed.index, observed_pc=observed.pc,
                observed_addr=observed.addr, observed_new=observed.new)
        if expected != observed:
            raise DivergenceError(
                "replayed monitor hit differs from the recording",
                index=observed.index,
                expected_pc=expected.pc, observed_pc=observed.pc,
                expected_addr=expected.addr, observed_addr=observed.addr,
                expected_old=expected.old, observed_old=observed.old,
                expected_new=expected.new, observed_new=observed.new,
                expected_index=expected.index,
                observed_index=observed.index)
        self._cursor += 1

    # -- driving execution --------------------------------------------------

    def resume(self, max_instructions: int = 400_000_000) -> str:
        """Run (or resume) the debuggee under recording.

        Steps in chunks that land exactly on keyframe boundaries.  Over
        already-recorded time the recorder verifies; past the frontier
        it records.  On budget exhaustion raises a resumable
        :class:`~repro.machine.cpu.SimulationLimit`, mirroring
        the watchdog contract the server's quota relies on.
        """
        debugger = self.debugger
        cpu = self.cpu
        if not cpu.running and cpu.exit_code is not None:
            return "exited"
        budget_end = cpu.instructions + max_instructions
        begin = time.perf_counter()
        try:
            while True:
                boundary = self._next_boundary()
                chunk = min(boundary, budget_end) - cpu.instructions
                reason = debugger._step_raw(max(chunk, 1))
                self._after_chunk(boundary)
                if reason != "step":
                    # exited, stopped at a watchpoint, or at a breakpoint
                    return reason
                if cpu.instructions >= budget_end:
                    raise SimulationLimit(
                        "recording: exceeded %d instructions budget"
                        % max_instructions, budget="instructions",
                        pc=cpu.pc, cycles=cpu.cycles,
                        instructions=cpu.instructions,
                        traps=cpu.traps_taken)
        finally:
            self.wall_time_s += time.perf_counter() - begin

    def _next_boundary(self) -> int:
        now = self.cpu.instructions
        if self.mode == "replay":
            for keyframe in self.keyframes:
                if keyframe.index > now:
                    return keyframe.index
            if self.end_index > now:
                return self.end_index
        last = self.keyframes[-1].index if self.keyframes else now
        boundary = last + self.stride
        while boundary <= now:
            boundary += self.stride
        return boundary

    def _after_chunk(self, boundary: int) -> bool:
        """Bookkeeping after a step chunk; True if the chunk landed
        exactly on *boundary*."""
        now = self.cpu.instructions
        landed = now == boundary
        if self.mode == "replay":
            if landed:
                for keyframe in self.keyframes:
                    if keyframe.index == now:
                        self.check_keyframe_digest(keyframe)
                        break
            if now >= self.end_index and (
                    self._cursor is None
                    or self._cursor >= self.trace.total):
                # caught up with the frontier: record from here on
                self.mode = "record"
                self._cursor = None
            return landed
        self.end_index = max(self.end_index, now)
        self.end_progress = max(self.end_progress, self._progress())
        if landed:
            self._capture_keyframe()
        return landed

    def stats(self) -> Dict[str, Any]:
        return {
            "keyframes": len(self.keyframes),
            "stride": self.stride,
            "trace_records": len(self.trace),
            "trace_dropped": self.trace.dropped,
            "capture_faults": len(self.capture_faults),
            "start_index": self.start_index,
            "end_index": self.end_index,
            "mode": self.mode,
        }
