"""Write-trace: the compact log the time-travel engine replays against.

Every §2 monitor notification observed while recording becomes one
:class:`WriteRecord` — ``(index, pc, addr, size, old, new, is_read)``
— appended to a bounded :class:`WriteTrace` ring.  ``index`` is the
debuggee instruction count at the notification trap and ``pc`` the
trap's address, so a record names an exact point in deterministic
execution time; ``old`` comes from the recorder's shadow copy of the
monitored words (write checks run *after* the store lands, §2.1, so
the overwritten value cannot be read back at notification time).

The trace serialises to a canonical byte string (:meth:`to_bytes`)
with a CRC-32 digest, which is what the determinism property tests
compare: recording the same program twice must be byte-identical.

Version 2 adds a *run-metadata header*: a canonical JSON block (sorted
keys, no whitespace) embedded between the fixed header and the
records, carrying the run's identity — workload name, scale, seed,
monitor-set digest, keyframe stride.  An ingested trace is therefore
self-describing: the persistent store (:mod:`repro.store`) and
``repro analyze`` recover the workload from the bytes alone instead of
relying on the caller to re-supply it.  Only *deterministic* facts
belong in :attr:`WriteTrace.meta` — wall-clock time or host details
would break both the determinism tests and content-addressed dedup.
Version-1 traces (no metadata block) still decode, with empty meta.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, NamedTuple, Optional

_RECORD = struct.Struct(">QIIIIIB")
_HEADER = struct.Struct(">4sHQQ")
_META_LEN = struct.Struct(">I")
_MAGIC = b"RPWT"
_VERSION = 2
#: newest format this reader still accepts with no metadata block
_V1 = 1
#: refuse to parse metadata blocks larger than this (a torn length
#: field must not make us allocate gigabytes)
MAX_META_BYTES = 1 << 20


def canonical_meta_bytes(meta: Dict[str, Any]) -> bytes:
    """The unique byte form of a metadata dict: sorted keys, compact
    separators — equal dicts always serialise identically, so the
    trace digest (and the store's content address) is stable."""
    if not meta:
        return b""
    return json.dumps(meta, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class WriteRecord(NamedTuple):
    """One monitor notification at a point in execution time."""

    index: int      #: cpu.instructions at the notification trap
    pc: int         #: address of the notification trap
    addr: int       #: written (or read) address
    size: int       #: access width in bytes
    old: int        #: word value before the access (shadow copy)
    new: int        #: word value after the access
    is_read: bool

    @property
    def stop_index(self) -> int:
        """Instruction count once the notification trap completes —
        the execution-time position "stopped at this hit"."""
        return self.index + 1

    def overlaps(self, start: int, size: int) -> bool:
        return self.addr < start + size and start < self.addr + self.size

    def pack(self) -> bytes:
        return _RECORD.pack(self.index, self.pc, self.addr, self.size,
                            self.old & 0xFFFFFFFF, self.new & 0xFFFFFFFF,
                            1 if self.is_read else 0)

    @classmethod
    def unpack(cls, data: bytes) -> "WriteRecord":
        index, pc, addr, size, old, new, is_read = _RECORD.unpack(data)
        return cls(index, pc, addr, size, old, new, bool(is_read))


class WriteTrace:
    """Bounded, append-only ring of :class:`WriteRecord`.

    Records carry stable absolute positions: position ``p`` is valid
    while ``base <= p < total``.  When the ring overflows, the oldest
    records are dropped (``base`` advances, :attr:`dropped` counts
    them) — replay verification then simply cannot check the dropped
    prefix, and ``last_write_to`` falls back to a re-execution scan.
    """

    def __init__(self, max_records: int = 65536,
                 meta: Optional[Dict[str, Any]] = None):
        if max_records < 1:
            raise ValueError("max_records must be positive")
        self.max_records = max_records
        self._records: List[WriteRecord] = []
        #: absolute position of _records[0]
        self.base = 0
        #: run-metadata header (workload, scale, seed, monitors,
        #: stride, ...) — deterministic facts only; serialised into
        #: the canonical byte form, so it participates in the digest
        self.meta: Dict[str, Any] = dict(meta) if meta else {}

    @property
    def total(self) -> int:
        """Absolute position one past the newest record."""
        return self.base + len(self._records)

    @property
    def dropped(self) -> int:
        return self.base

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[WriteRecord]:
        return iter(self._records)

    def append(self, record: WriteRecord) -> int:
        """Append *record*, evicting the oldest on overflow; returns
        the record's absolute position."""
        self._records.append(record)
        if len(self._records) > self.max_records:
            evict = len(self._records) - self.max_records
            del self._records[:evict]
            self.base += evict
        return self.total - 1

    def at(self, position: int) -> Optional[WriteRecord]:
        """The record at absolute *position*, or None if dropped/unset."""
        if position < self.base or position >= self.total:
            return None
        return self._records[position - self.base]

    def replace(self, position: int, record: WriteRecord) -> None:
        """Overwrite the record at absolute *position* (test tampering
        and trace-repair only)."""
        if position < self.base or position >= self.total:
            raise IndexError("position %d outside [%d, %d)"
                             % (position, self.base, self.total))
        self._records[position - self.base] = record

    def truncate(self, position: int) -> None:
        """Drop every record at absolute positions >= *position* — the
        future is discarded when a rewound execution takes a new path."""
        keep = max(0, position - self.base)
        del self._records[keep:]

    # -- queries -----------------------------------------------------------

    def records_for(self, start: int, size: int,
                    writes_only: bool = True) -> List[WriteRecord]:
        return [record for record in self._records
                if record.overlaps(start, size)
                and not (writes_only and record.is_read)]

    def last_write_to(self, start: int, size: int,
                      before_index: Optional[int] = None
                      ) -> Optional[WriteRecord]:
        """Most recent write overlapping ``[start, start+size)`` whose
        stop position is at or before *before_index* (when given)."""
        for record in reversed(self._records):
            if record.is_read or not record.overlaps(start, size):
                continue
            if before_index is not None and \
                    record.stop_index > before_index:
                continue
            return record
        return None

    # -- canonical serialisation -------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical serialisation: header + metadata block + packed
        records, in order."""
        meta = canonical_meta_bytes(self.meta)
        parts = [_HEADER.pack(_MAGIC, _VERSION, self.base,
                              len(self._records)),
                 _META_LEN.pack(len(meta)), meta]
        parts.extend(record.pack() for record in self._records)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes,
                   max_records: Optional[int] = None) -> "WriteTrace":
        magic, version, base, count = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC or version not in (_V1, _VERSION):
            raise ValueError("not a v%d/v%d write trace" % (_V1, _VERSION))
        trace = cls(max_records=max_records
                    if max_records is not None else max(count, 1))
        trace.base = base
        offset = _HEADER.size
        if version >= 2:
            (meta_len,) = _META_LEN.unpack_from(data, offset)
            offset += _META_LEN.size
            if meta_len > MAX_META_BYTES:
                raise ValueError("implausible trace metadata length %d"
                                 % meta_len)
            if meta_len:
                trace.meta = json.loads(
                    data[offset:offset + meta_len].decode("utf-8"))
                offset += meta_len
        for _ in range(count):
            trace._records.append(WriteRecord.unpack(
                data[offset:offset + _RECORD.size]))
            offset += _RECORD.size
        return trace

    def digest(self) -> int:
        """CRC-32 of the canonical serialisation."""
        import zlib
        return zlib.crc32(self.to_bytes()) & 0xFFFFFFFF

    def __repr__(self) -> str:
        return ("<WriteTrace %d records (%d dropped), indexes %s..%s>"
                % (len(self._records), self.base,
                   self._records[0].index if self._records else "-",
                   self._records[-1].index if self._records else "-"))
