"""Time travel: reverse-continue / reverse-step / last-write-to.

The controller answers "what happened before now?" questions with the
only primitive a deterministic simulator needs: restore the nearest
keyframe at or before the target and re-execute forward with the MRS
armed.  Re-execution runs in the recorder's ``replay`` mode, so every
monitor hit is verified against the recorded trace and every keyframe
crossing checks a state digest — a drifted replay raises
:class:`~repro.errors.DivergenceError` instead of stopping at a wrong
point in time.

``last_write_to`` has two paths:

* **trace query** — when the asked-about region has been continuously
  monitored since before the candidate write, the recorded trace
  already holds the answer;
* **re-execution scan** — otherwise the controller checkpoints the
  present, rewinds to the oldest keyframe, arms a temporary watchpoint
  over the region (``PreMonitor`` + ``CreateMonitoredRegion``, so
  optimizer-eliminated checks are re-inserted) and re-executes to the
  current point in monitoring-invariant time (original + library
  instruction counts, which an extra monitored region cannot perturb),
  collecting hits; the present is then restored bit-exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional

from repro.errors import DivergenceError, ReplayError
from repro.replay.recorder import Recorder
from repro.replay.trace import WriteRecord

__all__ = ["LastWrite", "ReplayController"]


class LastWrite(NamedTuple):
    """The answer to ``last_write_to``: who wrote this region last."""

    pc: int       #: notification-trap pc of the write
    index: int    #: instruction index of the write
    old: int      #: word value before the write
    new: int      #: word value after the write
    addr: int     #: written address
    size: int     #: access width in bytes
    source: str   #: "trace" (recorded) or "scan" (re-executed)


class ReplayController:
    """Reverse execution over one :class:`Recorder`'s history."""

    def __init__(self, debugger, recorder: Recorder):
        self.debugger = debugger
        self.recorder = recorder
        self.cpu = debugger.cpu

    # -- travel ------------------------------------------------------------

    def travel_to(self, target: int) -> None:
        """Move the debuggee to instruction index *target* (within the
        recorded window) by keyframe restore + verified re-execution."""
        recorder = self.recorder
        target = max(recorder.start_index,
                     min(target, recorder.end_index))
        now = self.cpu.instructions
        if target == now:
            return
        if target > now and recorder.mode == "replay":
            # forward travel inside recorded time: no restore needed
            self._replay_forward(target)
            return
        keyframe = recorder.nearest_keyframe(target)
        if keyframe is None:
            raise ReplayError(
                "no keyframe at or before index %d (capture faults: %d)"
                % (target, len(recorder.capture_faults)), target=target)
        if any(keyframe.index < change <= target
               for change in recorder.monitor_changes):
            # the only keyframe available predates a monitor-set change
            # (its capture must have faulted); re-execution across the
            # change cannot reproduce the recording
            raise ReplayError(
                "cannot replay across a monitor-set change "
                "(keyframe at %d, target %d)" % (keyframe.index, target),
                keyframe=keyframe.index, target=target)
        recorder.restore_keyframe(keyframe)
        self._replay_forward(target)
        if any(target < change <= recorder.end_index
               for change in recorder.monitor_changes):
            # the future beyond target assumed a different monitor set;
            # it cannot be verified from here, so fork the timeline
            recorder.truncate_future(target)

    def _replay_forward(self, target: int) -> None:
        debugger = self.debugger
        cpu = self.cpu
        recorder = self.recorder
        while cpu.instructions < target:
            boundary = target
            for keyframe in recorder.keyframes:
                if cpu.instructions < keyframe.index < target:
                    boundary = keyframe.index
                    break
            reason = debugger._step_raw(boundary - cpu.instructions)
            if cpu.instructions == boundary and boundary < target:
                for keyframe in recorder.keyframes:
                    if keyframe.index == boundary:
                        recorder.check_keyframe_digest(keyframe)
                        break
            if reason == "exited" and cpu.instructions < target:
                raise DivergenceError(
                    "program exited early during replay",
                    index=cpu.instructions, target=target,
                    observed_pc=cpu.pc)
            # stop-action watchpoints fire during replay too; they are
            # overridden until the target is reached (the next _step_raw
            # resumes the stopped CPU)
        for keyframe in recorder.keyframes:
            if keyframe.index == target:
                recorder.check_keyframe_digest(keyframe)
                break

    # -- reverse execution --------------------------------------------------

    def reverse_step(self, count: int = 1) -> str:
        """Step *count* instructions backwards; returns the stop reason
        ("step", or "replay-start" when clamped at the recording's
        start)."""
        recorder = self.recorder
        target = self.cpu.instructions - max(1, count)
        clamped = target < recorder.start_index
        self.travel_to(target)
        self.debugger.stop_reason = ("replay-start" if clamped
                                     else "step")
        self.debugger.stopped_watch = None
        return self.debugger.stop_reason

    def reverse_continue(self) -> str:
        """Run backwards to the most recent recorded access that
        *fires* any currently armed watchpoint — conditional
        predicates re-evaluated from the trace's old/new words,
        transition edges simulated deterministically from the
        recording baseline — and returns "watch" (stopped at that
        firing) or "replay-start" (no earlier firing in the
        recording)."""
        debugger = self.debugger
        recorder = self.recorder
        now = self.cpu.instructions
        firing = debugger.engine.latest_trace_firing(
            recorder.trace, now, trace_dropped=recorder.trace.dropped)
        if firing is None:
            self.travel_to(recorder.start_index)
            debugger.stop_reason = "replay-start"
            debugger.stopped_watch = None
            return "replay-start"
        record, watchpoint = firing
        self.travel_to(record.stop_index)
        debugger.stop_reason = "watch"
        debugger.stopped_watch = watchpoint
        return "watch"

    # -- last-write queries --------------------------------------------------

    def last_write_to(self, start: int, size: int,
                      expression: Optional[str] = None,
                      func: Optional[str] = None
                      ) -> Optional[LastWrite]:
        """Most recent write to ``[start, start+size)`` at or before
        the current point in time, or None if it was never written.

        *expression* (a watchable name resolving to the region) enables
        the re-execution scan when the region was not monitored for the
        whole recording; without it, an unmonitored region raises
        :class:`ReplayError` rather than answering incompletely.
        """
        recorder = self.recorder
        now = self.cpu.instructions
        record = recorder.trace.last_write_to(start, size,
                                              before_index=now)
        covered = recorder.covered_since(start, size)
        if record is not None and covered is not None \
                and covered <= record.index:
            return LastWrite(record.pc, record.index, record.old,
                             record.new, record.addr, record.size,
                             "trace")
        if record is None and covered is not None \
                and covered <= recorder.start_index \
                and recorder.trace.dropped == 0:
            return None  # provably never written while recorded
        if expression is None:
            raise ReplayError(
                "region 0x%x+%d was not monitored for the whole "
                "recording; pass the symbol name so a re-execution "
                "scan can arm it" % (start, size),
                start=start, size=size)
        return self._scan_last_write(start, size, expression, func)

    def _scan_last_write(self, start: int, size: int, expression: str,
                         func: Optional[str]) -> Optional[LastWrite]:
        debugger = self.debugger
        cpu = self.cpu
        recorder = self.recorder
        if not recorder.keyframes:
            raise ReplayError("no keyframes to scan from",
                              capture_faults=len(recorder.capture_faults))
        origin = recorder.keyframes[0]
        counts = cpu.tag_counts
        target_progress = counts.get("orig", 0) + counts.get("lib", 0)
        # save the present (including recorder state the scan perturbs)
        saved = debugger.checkpoint()
        saved_shadow = dict(recorder._shadow)
        saved_mode, saved_cursor = recorder.mode, recorder._cursor
        saved_stop = (debugger.stop_reason, debugger.stopped_watch)
        hits: List[WriteRecord] = []
        recorder._in_hook = True
        try:
            recorder.restore_keyframe(origin, mode="scan")
            # the scanned words were not in the keyframe's shadow (they
            # were unmonitored at record time); at the origin, memory
            # still holds their pre-write values — seed old-value capture
            for word in range(start & ~3, (start + size + 3) & ~3, 4):
                recorder._shadow.setdefault(word,
                                            cpu.mem.read_word(word))
            recorder._scan_hits = hits
            temp = debugger.watch(expression, func=func, action="log")
            exited = False
            while not exited:
                progress = (cpu.tag_counts.get("orig", 0)
                            + cpu.tag_counts.get("lib", 0))
                # an orig/lib instruction advances progress by exactly
                # one, so a chunk of `remaining` instructions can reach
                # but never overshoot the target progress
                remaining = target_progress - progress
                if remaining <= 0:
                    break
                exited = debugger._step_raw(remaining) == "exited"
            # the final landed store's check sequence (and its
            # notification trap) may still be pending: drain inserted
            # instructions up to — not including — the next original one
            for _ in range(256):
                if exited:
                    break
                insn = cpu.code.at(cpu.pc)
                if insn is None or insn.tag in ("orig", "lib"):
                    break
                exited = debugger._step_raw(1) == "exited"
            temp.delete()
        finally:
            recorder._scan_hits = None
            recorder._in_hook = False
            debugger.restore(saved, discard_recording=False)
            recorder._shadow = saved_shadow
            recorder.mode, recorder._cursor = saved_mode, saved_cursor
            debugger.stop_reason, debugger.stopped_watch = saved_stop
        last: Optional[WriteRecord] = None
        for record in hits:
            if not record.is_read and record.overlaps(start, size):
                last = record
        if last is None:
            return None
        return LastWrite(last.pc, last.index, last.old, last.new,
                         last.addr, last.size, "scan")

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        stats = self.recorder.stats()
        stats["now"] = self.cpu.instructions
        return stats
