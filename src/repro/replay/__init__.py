"""Deterministic record/replay with time-travel data breakpoints.

The paper closes §5 with "checkpointing data for replayed execution";
this package is that workload built on the existing machinery: the
:class:`~repro.machine.checkpoint.Checkpoint` snapshots become
periodic **keyframes**, §2 monitor notifications become a compact
**write-trace**, and the two together answer the question users
actually ask a data breakpoint — *when was this last written?* —
backwards in time.

* :class:`~repro.replay.recorder.Recorder` — keyframe ring + trace
  capture + re-execution verification;
* :class:`~repro.replay.controller.ReplayController` —
  ``reverse_continue`` / ``reverse_step`` / ``last_write_to``;
* :class:`~repro.replay.trace.WriteTrace` — the canonical, bounded,
  byte-serialisable hit log.

Entry points: ``Debugger.record()`` / ``reverse_continue()`` /
``reverse_step()`` / ``last_write()``; the REPL's ``record`` / ``rc``
/ ``rs`` / ``lastwrite`` commands; ``repro record`` / ``repro
replay`` on the command line; and the debug server's ``stepBack`` /
``reverseContinue`` / ``lastWrite`` requests (protocol v2,
``supportsStepBack``).
"""

from repro.errors import DivergenceError, ReplayError
from repro.replay.controller import LastWrite, ReplayController
from repro.replay.recorder import (Keyframe, Recorder, state_digest,
                                   DEFAULT_MAX_KEYFRAMES,
                                   DEFAULT_MAX_TRACE, DEFAULT_STRIDE)
from repro.replay.trace import WriteRecord, WriteTrace

__all__ = ["DivergenceError", "Keyframe", "LastWrite", "Recorder",
           "ReplayController", "ReplayError", "WriteRecord",
           "WriteTrace", "state_digest", "DEFAULT_STRIDE",
           "DEFAULT_MAX_KEYFRAMES", "DEFAULT_MAX_TRACE"]
