"""Symbolic assembly representation.

The assembly toolchain is organized the way the paper's is (§2.1): the
compiler emits assembly text, the *analysis tool* (:mod:`repro.instrument`)
transforms it, and the assembler turns it into decoded instructions.  To
avoid reparsing between stages, all stages share the symbolic statement
types defined here: a program is a list of :class:`Label`,
:class:`Directive` and :class:`AsmInsn` statements whose operands are
:class:`Reg`, :class:`Imm`, :class:`Sym` and :class:`Mem` objects.

Branch targets stay symbolic until final assembly, so instrumentation can
insert statements freely without address fixups.
"""

from __future__ import annotations

from repro.errors import ReproError

from typing import List, Optional, Tuple, Union

from repro.isa.registers import REGISTER_IDS, register_name


class AsmSyntaxError(ReproError):
    """Raised for malformed assembly input."""

    def __init__(self, message: str, line_no: int = 0):
        super().__init__(
            "line %d: %s" % (line_no, message) if line_no else message)
        self.line_no = line_no


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------

class Reg:
    """Register operand, stored by architectural id."""

    __slots__ = ("rid",)

    def __init__(self, rid: Union[int, str]):
        if isinstance(rid, str):
            try:
                rid = REGISTER_IDS[rid]
            except KeyError:
                raise AsmSyntaxError("unknown register %r" % rid)
        self.rid = rid

    @property
    def name(self) -> str:
        return register_name(self.rid)

    def __eq__(self, other) -> bool:
        return isinstance(other, Reg) and self.rid == other.rid

    def __hash__(self) -> int:
        return hash(("reg", self.rid))

    def __repr__(self) -> str:
        return self.name


class Imm:
    """Immediate integer operand."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __eq__(self, other) -> bool:
        return isinstance(other, Imm) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("imm", self.value))

    def __repr__(self) -> str:
        return str(self.value)


class Sym:
    """Symbol reference ``name+addend``; ``part`` is None, "hi" or "lo"."""

    __slots__ = ("name", "addend", "part")

    def __init__(self, name: str, addend: int = 0,
                 part: Optional[str] = None):
        self.name = name
        self.addend = addend
        self.part = part

    def __eq__(self, other) -> bool:
        return (isinstance(other, Sym) and self.name == other.name
                and self.addend == other.addend and self.part == other.part)

    def __hash__(self) -> int:
        return hash(("sym", self.name, self.addend, self.part))

    def __repr__(self) -> str:
        base = self.name if not self.addend else \
            "%s%+d" % (self.name, self.addend)
        return "%%%s(%s)" % (self.part, base) if self.part else base


class Mem:
    """Memory operand ``[base+index]`` or ``[base+disp]``."""

    __slots__ = ("base", "index", "disp")

    def __init__(self, base: int, index: Optional[int] = None, disp: int = 0):
        self.base = base
        self.index = index
        self.disp = disp if index is None else 0

    def __eq__(self, other) -> bool:
        return (isinstance(other, Mem) and self.base == other.base
                and self.index == other.index and self.disp == other.disp)

    def __hash__(self) -> int:
        return hash(("mem", self.base, self.index, self.disp))

    def __repr__(self) -> str:
        if self.index is not None:
            return "[%s+%s]" % (register_name(self.base),
                                register_name(self.index))
        if self.disp:
            return "[%s%+d]" % (register_name(self.base), self.disp)
        return "[%s]" % register_name(self.base)


Operand = Union[Reg, Imm, Sym, Mem]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement:
    __slots__ = ("line_no",)

    def __init__(self, line_no: int = 0):
        self.line_no = line_no


class Label(Statement):
    __slots__ = ("name",)

    def __init__(self, name: str, line_no: int = 0):
        super().__init__(line_no)
        self.name = name

    def __repr__(self) -> str:
        return "%s:" % self.name


class Directive(Statement):
    """Assembler directive: ``.text``, ``.data``, ``.word``, ``.skip``,
    ``.align``, ``.global``, ``.proc``, ``.endproc``, ``.stabs``."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple, line_no: int = 0):
        super().__init__(line_no)
        self.name = name
        self.args = args

    def __repr__(self) -> str:
        return ".%s %s" % (self.name, ", ".join(map(repr, self.args)))


#: mnemonics that read memory
LOAD_MNEMONICS = {"ld", "ldub", "ldsb", "ldd"}
#: mnemonics that write memory (the paper's "write instructions")
STORE_MNEMONICS = {"st", "stb", "std"}
#: delayed control-transfer mnemonics (followed by a delay slot)
BRANCH_MNEMONICS = {"ba", "bn", "be", "bne", "bl", "ble", "bg", "bge",
                    "blu", "bleu", "bgu", "bgeu", "bneg", "bpos"}
DCTI_MNEMONICS = BRANCH_MNEMONICS | {"call", "jmpl"}
#: ALU mnemonics (canonical, without the cc suffix)
ALU_MNEMONICS = {"add", "sub", "and", "andn", "or", "xor", "sll", "srl",
                 "sra", "smul", "sdiv"}
CC_MNEMONICS = {m + "cc" for m in ("add", "sub", "and", "andn", "or", "xor")}

STORE_WIDTHS = {"st": 4, "stb": 1, "std": 8}
LOAD_WIDTHS = {"ld": 4, "ldub": 1, "ldsb": 1, "ldd": 8}


class AsmInsn(Statement):
    """One canonical machine instruction with symbolic operands.

    ``tag`` attributes the instruction for cycle accounting ("orig" for
    compiler output, "check"/"lib"/"patch"/... for MRS code); ``site`` is
    the write-site id assigned by the instrumenter.
    """

    __slots__ = ("mnemonic", "ops", "annul", "tag", "site")

    def __init__(self, mnemonic: str, ops: List[Operand],
                 annul: bool = False, line_no: int = 0, tag: str = "orig",
                 site: Optional[int] = None):
        super().__init__(line_no)
        self.mnemonic = mnemonic
        self.ops = ops
        self.annul = annul
        self.tag = tag
        self.site = site

    def is_store(self) -> bool:
        return self.mnemonic in STORE_MNEMONICS

    def is_load(self) -> bool:
        return self.mnemonic in LOAD_MNEMONICS

    def is_dcti(self) -> bool:
        return self.mnemonic in DCTI_MNEMONICS

    def is_branch(self) -> bool:
        return self.mnemonic in BRANCH_MNEMONICS

    def __repr__(self) -> str:
        name = self.mnemonic + (",a" if self.annul else "")
        if not self.ops:
            return name
        return "%s %s" % (name, ",".join(map(repr, self.ops)))
