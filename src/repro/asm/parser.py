"""Parser for the SPARC-like assembly language.

Produces the symbolic statement list of :mod:`repro.asm.ast`.  Synthetic
instructions (``mov``, ``cmp``, ``set``, ``ret``, ``clr``, ...) are
expanded here into canonical machine instructions, so downstream stages
(the instrumenter, the IR builder, the assembler) only ever see canonical
forms.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.asm.ast import (AsmInsn, AsmSyntaxError, BRANCH_MNEMONICS,
                           Directive, Imm, Label, Mem, Operand, Reg,
                           Statement, Sym)
from repro.isa.instructions import SIMM13_MAX, SIMM13_MIN
from repro.isa.registers import REGISTER_IDS

_LABEL_RE = re.compile(r"^(\.?\w+):")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")
_SYM_RE = re.compile(r"^(\.?[A-Za-z_]\w*)([+-]\d+)?$")
_HILO_RE = re.compile(r"^%(hi|lo)\((.+)\)$")
_MEM_RE = re.compile(r"^\[(.+)\]$")

_CANONICAL = {"add", "addcc", "sub", "subcc", "and", "andcc", "andn",
              "andncc", "or", "orcc", "xor", "xorcc", "sll", "srl", "sra",
              "smul", "sdiv", "sethi", "ld", "ldub", "ldsb", "ldd", "st",
              "stb", "std", "call", "jmpl", "save", "restore", "ta",
              "nop"} | BRANCH_MNEMONICS

_BRANCH_ALIASES = {"b": "ba", "bz": "be", "bnz": "bne", "bcs": "blu",
                   "bcc": "bgeu"}


def _parse_int(text: str) -> Optional[int]:
    if _INT_RE.match(text):
        return int(text, 0)
    return None


def _split_operands(text: str) -> List[str]:
    """Split an operand string on commas not nested in () or []."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Parser:
    """Line-oriented parser; see :func:`parse`."""

    def __init__(self):
        self._statements: List[Statement] = []
        self._line_no = 0
        self._current_tag = "orig"

    # -- operand parsing -------------------------------------------------

    def _operand(self, text: str) -> Operand:
        text = text.strip()
        if text in REGISTER_IDS:
            return Reg(text)
        value = _parse_int(text)
        if value is not None:
            return Imm(value)
        match = _HILO_RE.match(text)
        if match:
            part, inner = match.group(1), match.group(2).strip()
            value = _parse_int(inner)
            if value is not None:
                return Sym("", value, part)  # absolute hi/lo
            sym = self._symbol(inner)
            return Sym(sym.name, sym.addend, part)
        match = _MEM_RE.match(text)
        if match:
            return self._mem_operand(match.group(1).strip())
        return self._symbol(text)

    def _symbol(self, text: str) -> Sym:
        match = _SYM_RE.match(text)
        if not match:
            raise AsmSyntaxError("bad operand %r" % text, self._line_no)
        addend = int(match.group(2)) if match.group(2) else 0
        return Sym(match.group(1), addend)

    def _mem_operand(self, inner: str) -> Mem:
        # forms: %r | %r+%r | %r+imm | %r-imm
        match = re.match(r"^(%\w+)\s*([+-])\s*(.+)$", inner)
        if match:
            base_name, sign, rest = match.groups()
            if base_name not in REGISTER_IDS:
                raise AsmSyntaxError("bad base register %r" % base_name,
                                     self._line_no)
            base = REGISTER_IDS[base_name]
            rest = rest.strip()
            if rest in REGISTER_IDS:
                if sign == "-":
                    raise AsmSyntaxError("cannot negate index register",
                                         self._line_no)
                return Mem(base, index=REGISTER_IDS[rest])
            value = _parse_int(rest)
            if value is None:
                raise AsmSyntaxError("bad displacement %r" % rest,
                                     self._line_no)
            return Mem(base, disp=-value if sign == "-" else value)
        if inner in REGISTER_IDS:
            return Mem(REGISTER_IDS[inner])
        raise AsmSyntaxError("bad memory operand [%s]" % inner,
                             self._line_no)

    # -- directive parsing --------------------------------------------------

    def _directive_arg(self, text: str) -> Union[str, int, Sym, Reg]:
        text = text.strip()
        if text.startswith('"') and text.endswith('"') and len(text) >= 2:
            return text[1:-1]
        if text in REGISTER_IDS:
            return Reg(text)
        value = _parse_int(text)
        if value is not None:
            return value
        return self._symbol(text)

    def _parse_directive(self, text: str) -> None:
        parts = text.split(None, 1)
        name = parts[0][1:]
        rest = parts[1] if len(parts) > 1 else ""
        if name == "tag":
            # sets the accounting tag for subsequent instructions; consumed
            # here rather than passed to the assembler
            self._current_tag = rest.strip() or "orig"
            return
        args = tuple(self._directive_arg(a) for a in _split_operands(rest)) \
            if rest else ()
        self._emit(Directive(name, args, self._line_no))

    # -- instruction parsing ----------------------------------------------

    def _emit(self, stmt: Statement) -> None:
        self._statements.append(stmt)

    def _insn(self, mnemonic: str, ops: List[Operand],
              annul: bool = False) -> None:
        self._emit(AsmInsn(mnemonic, ops, annul=annul,
                           line_no=self._line_no, tag=self._current_tag))

    def _parse_instruction(self, text: str) -> None:
        parts = text.split(None, 1)
        head = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        annul = False
        if head.endswith(",a"):
            head = head[:-2]
            annul = True
        head = _BRANCH_ALIASES.get(head, head)
        if head == "jmp" and rest and not rest.strip().startswith("["):
            # jmp %reg+off uses address syntax without brackets
            rest = "[%s]" % rest.strip()
        ops = [self._operand(o) for o in _split_operands(rest)] if rest \
            else []
        self._expand(head, ops, annul)

    def _expand(self, head: str, ops: List[Operand], annul: bool) -> None:
        line = self._line_no
        if head in _CANONICAL:
            if head == "restore" and not ops:
                ops = [Reg("%g0"), Imm(0), Reg("%g0")]
            self._insn(head, ops, annul)
            return
        if head == "mov":
            self._require(len(ops) == 2, "mov src,rd")
            self._insn("or", [Reg("%g0"), ops[0], ops[1]])
            return
        if head == "cmp":
            self._require(len(ops) == 2, "cmp rs1,op2")
            self._insn("subcc", [ops[0], ops[1], Reg("%g0")])
            return
        if head == "tst":
            self._require(len(ops) == 1, "tst rs")
            self._insn("orcc", [Reg("%g0"), ops[0], Reg("%g0")])
            return
        if head == "set":
            self._require(len(ops) == 2, "set value,rd")
            self._expand_set(ops[0], ops[1])
            return
        if head == "clr":
            self._require(len(ops) == 1, "clr rd|[mem]")
            if isinstance(ops[0], Mem):
                self._insn("st", [Reg("%g0"), ops[0]])
            else:
                self._insn("or", [Reg("%g0"), Imm(0), ops[0]])
            return
        if head == "inc":
            self._require(len(ops) == 1, "inc rd")
            self._insn("add", [ops[0], Imm(1), ops[0]])
            return
        if head == "dec":
            self._require(len(ops) == 1, "dec rd")
            self._insn("sub", [ops[0], Imm(1), ops[0]])
            return
        if head == "neg":
            self._require(len(ops) == 1, "neg rd")
            self._insn("sub", [Reg("%g0"), ops[0], ops[0]])
            return
        if head == "jmp":
            self._require(len(ops) == 1, "jmp address")
            rs1, op2 = self._address_pair(ops[0])
            self._insn("jmpl", [rs1, op2, Reg("%g0")])
            return
        if head == "ret":
            self._insn("jmpl", [Reg("%i7"), Imm(8), Reg("%g0")])
            return
        if head == "retl":
            self._insn("jmpl", [Reg("%o7"), Imm(8), Reg("%g0")])
            return
        raise AsmSyntaxError("unknown mnemonic %r" % head, line)

    def _address_pair(self, op: Operand) -> Tuple[Reg, Operand]:
        if isinstance(op, Mem):
            if op.index is not None:
                return Reg(op.base), Reg(op.index)
            return Reg(op.base), Imm(op.disp)
        if isinstance(op, Reg):
            return op, Imm(0)
        raise AsmSyntaxError("bad jump address %r" % (op,), self._line_no)

    def _expand_set(self, value: Operand, rd: Operand) -> None:
        if isinstance(value, Imm):
            if SIMM13_MIN <= value.value <= SIMM13_MAX:
                self._insn("or", [Reg("%g0"), value, rd])
                return
            word = value.value & 0xFFFFFFFF
            self._insn("sethi", [Imm(word >> 10), rd])
            low = word & 0x3FF
            if low:
                self._insn("or", [rd, Imm(low), rd])
            return
        if isinstance(value, Sym):
            self._insn("sethi", [Sym(value.name, value.addend, "hi"), rd])
            self._insn("or", [rd, Sym(value.name, value.addend, "lo"), rd])
            return
        raise AsmSyntaxError("bad set value %r" % (value,), self._line_no)

    def _require(self, cond: bool, form: str) -> None:
        if not cond:
            raise AsmSyntaxError("expected form: %s" % form, self._line_no)

    # -- driver ----------------------------------------------------------

    def parse(self, source: str) -> List[Statement]:
        self._statements = []
        for line_index, raw in enumerate(source.splitlines(), start=1):
            self._line_no = line_index
            line = self._strip_comment(raw).strip()
            while line:
                match = _LABEL_RE.match(line)
                if match:
                    self._emit(Label(match.group(1), line_index))
                    line = line[match.end():].strip()
                    continue
                break
            if not line:
                continue
            if line.startswith("."):
                self._parse_directive(line)
            else:
                self._parse_instruction(line)
        return self._statements

    @staticmethod
    def _strip_comment(line: str) -> str:
        in_string = False
        for index, ch in enumerate(line):
            if ch == '"':
                in_string = not in_string
            elif ch == "!" and not in_string:
                return line[:index]
        return line


def parse(source: str) -> List[Statement]:
    """Parse assembly *source* into a list of symbolic statements."""
    return Parser().parse(source)
