"""Debugging symbol table (STAB-like).

The compiler records each source variable with a ``.stabs`` directive;
the assembler collects them here.  Entries are what both the debugger
(mapping break-condition names to monitored regions, §2) and the
optimizer's symbol-table pattern matching (§4.2) consume.

Kinds:

* ``local`` / ``param`` — frame-relative storage: ``%fp + offset``.
* ``global`` — static storage at an absolute data address.
* ``register`` — variable lives in a register (``register int`` in
  mini-C); it cannot be monitored, and the debugger reports that.
"""

from __future__ import annotations

from repro.errors import ReproError

from typing import Dict, Iterable, List, Optional


class SymbolError(ReproError):
    """Raised for unknown or unmonitorable symbols."""


class SymEntry:
    """One debugging symbol."""

    __slots__ = ("name", "kind", "func", "offset", "address", "size",
                 "elem", "reg")

    def __init__(self, name: str, kind: str, func: Optional[str] = None,
                 offset: int = 0, address: Optional[int] = None,
                 size: int = 4, elem: Optional[int] = None,
                 reg: Optional[int] = None):
        self.name = name
        self.kind = kind
        self.func = func
        self.offset = offset      # %fp-relative, for local/param
        self.address = address    # absolute, for global (set at assembly)
        self.size = size          # total bytes
        self.elem = elem          # element size for arrays, else None
        self.reg = reg            # register id, for kind == "register"

    def is_frame_relative(self) -> bool:
        return self.kind in ("local", "param")

    def covers_offset(self, offset: int) -> bool:
        return self.offset <= offset < self.offset + self.size

    def covers_address(self, addr: int) -> bool:
        return (self.address is not None
                and self.address <= addr < self.address + self.size)

    def __repr__(self) -> str:
        where = ("%%fp%+d" % self.offset if self.is_frame_relative()
                 else "@0x%x" % (self.address or 0)
                 if self.kind == "global" else "reg%s" % self.reg)
        scope = "%s:" % self.func if self.func else ""
        return "<sym %s%s %s %s size=%d>" % (scope, self.name, self.kind,
                                             where, self.size)


class SymbolTable:
    """All debugging symbols of one program."""

    def __init__(self):
        self.entries: List[SymEntry] = []
        self._globals: Dict[str, SymEntry] = {}
        self._locals: Dict[str, Dict[str, SymEntry]] = {}

    def add(self, entry: SymEntry) -> None:
        self.entries.append(entry)
        if entry.kind == "global":
            self._globals[entry.name] = entry
        else:
            self._locals.setdefault(entry.func or "", {})[entry.name] = entry

    def lookup(self, name: str, func: Optional[str] = None) -> SymEntry:
        """Resolve *name*, trying *func*'s scope first, then globals."""
        if func is not None:
            entry = self._locals.get(func, {}).get(name)
            if entry is not None:
                return entry
        entry = self._globals.get(name)
        if entry is None:
            raise SymbolError("unknown symbol %r (func=%r)" % (name, func))
        return entry

    def globals(self) -> Iterable[SymEntry]:
        return self._globals.values()

    def locals_of(self, func: str) -> Iterable[SymEntry]:
        return self._locals.get(func, {}).values()

    def local_at(self, func: str, offset: int) -> Optional[SymEntry]:
        """Find the local/param of *func* covering frame offset *offset*."""
        for entry in self._locals.get(func, {}).values():
            if entry.is_frame_relative() and entry.covers_offset(offset):
                return entry
        return None

    def global_at(self, addr: int) -> Optional[SymEntry]:
        """Find the global whose storage covers absolute address *addr*."""
        for entry in self._globals.values():
            if entry.covers_address(addr):
                return entry
        return None
