"""Two-pass assembler: symbolic statements -> decoded program.

Pass 1 lays out text and data, assigning addresses to labels.  Pass 2
builds :class:`~repro.isa.instructions.Instruction` objects, resolving
symbol references (branch/call targets, ``%hi``/``%lo`` relocations,
``.word`` initializers) against the label map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.asm.ast import (ALU_MNEMONICS, AsmInsn, AsmSyntaxError,
                           BRANCH_MNEMONICS, Directive, Imm, Label,
                           LOAD_WIDTHS, Mem, Reg, Statement, STORE_WIDTHS,
                           Sym)
from repro.asm.parser import parse
from repro.asm.symtab import SymbolTable, SymEntry
from repro.isa import instructions as I

DEFAULT_TEXT_BASE = 0x00010000
# data starts a quarter of the way into the 64 KB direct-mapped
# cache index space so text/data/heap/stack do not all collide at
# index 0 (real OSes achieve the same via page coloring)
DEFAULT_DATA_BASE = 0x10004000


class FunctionInfo:
    """Extent of one function in the instruction stream."""

    __slots__ = ("name", "start_index", "end_index", "address")

    def __init__(self, name: str, start_index: int):
        self.name = name
        self.start_index = start_index
        self.end_index = start_index
        self.address = 0

    def __repr__(self) -> str:
        return "<func %s [%d:%d] @0x%x>" % (
            self.name, self.start_index, self.end_index, self.address)


class Program:
    """Assembled program, ready for :mod:`repro.asm.loader`."""

    def __init__(self, text_base: int, data_base: int):
        self.text_base = text_base
        self.data_base = data_base
        self.insns: List[I.Instruction] = []
        #: source statement giving rise to each instruction (for reporting)
        self.insn_stmts: List[AsmInsn] = []
        self.labels: Dict[str, int] = {}
        #: data image: list of (word address, value)
        self.data_words: List[Tuple[int, int]] = []
        self.data_end = data_base
        self.symtab = SymbolTable()
        self.functions: List[FunctionInfo] = []
        self.lang = "C"

    @property
    def text_end(self) -> int:
        return self.text_base + 4 * len(self.insns)

    def function_named(self, name: str) -> FunctionInfo:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError("no function %r" % name)

    def data_size(self) -> int:
        return self.data_end - self.data_base

    def text_size(self) -> int:
        return 4 * len(self.insns)


class Assembler:
    """See :func:`assemble`."""

    def __init__(self, text_base: int = DEFAULT_TEXT_BASE,
                 data_base: int = DEFAULT_DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, statements: List[Statement]) -> Program:
        program = Program(self.text_base, self.data_base)
        text_stmts: List[AsmInsn] = []
        self._layout(statements, program, text_stmts)
        self._encode(text_stmts, program)
        self._resolve_stabs(program)
        return program

    # -- pass 1: layout ----------------------------------------------------

    def _layout(self, statements: List[Statement], program: Program,
                text_stmts: List[AsmInsn]) -> None:
        section = "text"
        data_cursor = self.data_base
        pending_data: List[Tuple[int, Union[int, Sym]]] = []
        current_func: Optional[FunctionInfo] = None
        stab_directives: List[Tuple[Directive, Optional[str]]] = []

        for stmt in statements:
            if isinstance(stmt, Label):
                if section == "text":
                    program.labels[stmt.name] = \
                        self.text_base + 4 * len(text_stmts)
                else:
                    program.labels[stmt.name] = data_cursor
                continue
            if isinstance(stmt, Directive):
                name = stmt.name
                if name in ("text", "data", "bss"):
                    section = "text" if name == "text" else "data"
                elif name == "global":
                    pass
                elif name == "lang":
                    program.lang = str(stmt.args[0]) if stmt.args else "C"
                elif name == "proc":
                    func_name = self._str_arg(stmt, 0)
                    current_func = FunctionInfo(func_name, len(text_stmts))
                    program.functions.append(current_func)
                elif name == "endproc":
                    if current_func is not None:
                        current_func.end_index = len(text_stmts)
                        current_func = None
                elif name == "word":
                    for arg in stmt.args:
                        if isinstance(arg, (int, Sym)):
                            pending_data.append((data_cursor, arg))
                        else:
                            raise AsmSyntaxError(
                                "bad .word arg %r" % (arg,), stmt.line_no)
                        data_cursor += 4
                elif name == "skip":
                    data_cursor += int(stmt.args[0])
                    data_cursor = (data_cursor + 3) & ~3
                elif name == "align":
                    align = int(stmt.args[0])
                    data_cursor = (data_cursor + align - 1) & ~(align - 1)
                elif name == "stabs":
                    stab_directives.append(
                        (stmt, current_func.name if current_func else None))
                else:
                    raise AsmSyntaxError("unknown directive .%s" % name,
                                         stmt.line_no)
                continue
            if isinstance(stmt, AsmInsn):
                if section != "text":
                    raise AsmSyntaxError("instruction in data section",
                                         stmt.line_no)
                text_stmts.append(stmt)
                continue
            raise AsmSyntaxError("unexpected statement %r" % (stmt,))

        for func in program.functions:
            if func.end_index <= func.start_index:
                func.end_index = len(text_stmts)
            func.address = self.text_base + 4 * func.start_index

        program.data_end = (data_cursor + 3) & ~3
        for addr, value in pending_data:
            if isinstance(value, Sym):
                resolved = self._symbol_value(value, program)
            else:
                resolved = value & 0xFFFFFFFF
            program.data_words.append((addr, resolved))
        self._stab_directives = stab_directives

    @staticmethod
    def _str_arg(stmt: Directive, index: int) -> str:
        arg = stmt.args[index]
        if isinstance(arg, Sym):
            return arg.name
        return str(arg)

    # -- symbol resolution ---------------------------------------------------

    @staticmethod
    def _symbol_value(sym: Sym, program: Program) -> int:
        if sym.name == "":
            value = sym.addend & 0xFFFFFFFF
        else:
            if sym.name not in program.labels:
                raise AsmSyntaxError("undefined symbol %r" % sym.name)
            value = (program.labels[sym.name] + sym.addend) & 0xFFFFFFFF
        if sym.part == "hi":
            return value >> 10
        if sym.part == "lo":
            return value & 0x3FF
        return value

    def _operand2(self, op, program: Program) -> I.Operand2:
        if isinstance(op, Reg):
            return I.Operand2.reg(op.rid)
        if isinstance(op, Imm):
            return I.Operand2.imm(op.value)
        if isinstance(op, Sym):
            value = self._symbol_value(op, program)
            if op.part != "lo":
                raise AsmSyntaxError(
                    "absolute symbol %r in ALU operand (use %%lo)" % op.name)
            return I.Operand2.imm(value)
        raise AsmSyntaxError("bad second operand %r" % (op,))

    # -- pass 2: encoding ---------------------------------------------------

    def _encode(self, text_stmts: List[AsmInsn], program: Program) -> None:
        for stmt in text_stmts:
            insn = self._encode_one(stmt, program)
            insn.tag = stmt.tag
            insn.site = stmt.site
            program.insns.append(insn)
            program.insn_stmts.append(stmt)

    def _encode_one(self, stmt: AsmInsn, program: Program) -> I.Instruction:
        m = stmt.mnemonic
        ops = stmt.ops
        try:
            if m == "nop":
                return I.NopInsn()
            if m in ALU_MNEMONICS or (m.endswith("cc")
                                      and m[:-2] in ALU_MNEMONICS):
                set_cc = m.endswith("cc") and m[:-2] in ALU_MNEMONICS
                base = m[:-2] if set_cc else m
                rs1, op2, rd = ops
                return I.ArithInsn(base, rs1.rid,
                                   self._operand2(op2, program), rd.rid,
                                   set_cc)
            if m == "sethi":
                value, rd = ops
                if isinstance(value, Sym):
                    imm22 = self._symbol_value(value, program)
                    if value.part != "hi":
                        raise AsmSyntaxError("sethi needs %hi()")
                else:
                    imm22 = value.value
                return I.SethiInsn(imm22, rd.rid)
            if m in LOAD_WIDTHS:
                mem, rd = ops
                return I.LoadInsn(LOAD_WIDTHS[m], self._mem(mem), rd.rid,
                                  signed=(m == "ldsb"))
            if m in STORE_WIDTHS:
                rd, mem = ops
                return I.StoreInsn(STORE_WIDTHS[m], rd.rid, self._mem(mem))
            if m in BRANCH_MNEMONICS:
                target = self._symbol_value(ops[0], program)
                cond = {"bneg": "neg", "bpos": "pos"}.get(m, m[1:])
                return I.BranchInsn(cond, target, annul=stmt.annul)
            if m == "call":
                return I.CallInsn(self._symbol_value(ops[0], program))
            if m == "jmpl":
                rs1, op2, rd = ops
                return I.JmplInsn(rs1.rid, self._operand2(op2, program),
                                  rd.rid)
            if m == "save":
                rs1, op2, rd = ops
                return I.SaveInsn(rs1.rid, self._operand2(op2, program),
                                  rd.rid)
            if m == "restore":
                rs1, op2, rd = ops
                return I.RestoreInsn(rs1.rid, self._operand2(op2, program),
                                     rd.rid)
            if m == "ta":
                return I.TrapInsn(ops[0].value)
        except AsmSyntaxError:
            raise
        except Exception as exc:
            raise AsmSyntaxError("bad instruction %r: %s" % (stmt, exc),
                                 stmt.line_no)
        raise AsmSyntaxError("cannot encode %r" % (stmt,), stmt.line_no)

    @staticmethod
    def _mem(op: Mem) -> I.MemAddress:
        if not isinstance(op, Mem):
            raise AsmSyntaxError("expected memory operand, got %r" % (op,))
        return I.MemAddress(op.base, op.index, op.disp)

    # -- stabs -------------------------------------------------------------

    def _resolve_stabs(self, program: Program) -> None:
        for stmt, func in self._stab_directives:
            args = stmt.args
            name = str(args[0])
            kind = self._stab_kind(args[1])
            if kind in ("local", "param"):
                offset = int(args[2])
                size = int(args[3])
                elem = int(args[4]) if len(args) > 4 else None
                program.symtab.add(SymEntry(name, kind, func=func,
                                            offset=offset, size=size,
                                            elem=elem))
            elif kind == "global":
                sym = args[2]
                if not isinstance(sym, Sym):
                    raise AsmSyntaxError("global stab needs a symbol",
                                         stmt.line_no)
                address = self._symbol_value(sym, program)
                size = int(args[3])
                elem = int(args[4]) if len(args) > 4 else None
                program.symtab.add(SymEntry(name, "global", address=address,
                                            size=size, elem=elem))
            elif kind == "register":
                reg = args[2]
                if not isinstance(reg, Reg):
                    raise AsmSyntaxError("register stab needs a register",
                                         stmt.line_no)
                size = int(args[3]) if len(args) > 3 else 4
                program.symtab.add(SymEntry(name, "register", func=func,
                                            reg=reg.rid, size=size))
            else:
                raise AsmSyntaxError("unknown stab kind %r" % kind,
                                     stmt.line_no)

    @staticmethod
    def _stab_kind(arg) -> str:
        if isinstance(arg, Sym):
            return arg.name
        return str(arg)


def assemble(source_or_statements, text_base: int = DEFAULT_TEXT_BASE,
             data_base: int = DEFAULT_DATA_BASE) -> Program:
    """Assemble assembly text or a statement list into a Program."""
    if isinstance(source_or_statements, str):
        statements = parse(source_or_statements)
    else:
        statements = source_or_statements
    return Assembler(text_base, data_base).assemble(statements)
