"""Assembly parser, two-pass assembler, symbol table, loader."""
