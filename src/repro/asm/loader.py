"""Loader: assembled program -> ready-to-run CPU.

Sets up code space, data image, stack pointer, the startup stub
(``call main; nop; ta TRAP_EXIT``) and the default trap handlers.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.asm.assembler import Program, assemble
from repro.isa.instructions import CallInsn, NopInsn, TrapInsn
from repro.isa.registers import FP, SP
from repro.machine.cache import DEFAULT_CACHE_BYTES, DirectMappedCache
from repro.machine.costs import CostModel, DEFAULT_COSTS
from repro.machine.cpu import CPU, CodeSpace
from repro.machine.memory import Memory
from repro.machine.traps import TRAP_EXIT, install_default_handlers

DEFAULT_STACK_TOP = 0x7F00C000
DEFAULT_HEAP_BASE = 0x20008000


class LoadedProgram:
    """A CPU wired to a program, plus its captured output."""

    def __init__(self, cpu: CPU, program: Program, output: List[str],
                 entry: int):
        self.cpu = cpu
        self.program = program
        self.output = output
        self.entry = entry

    def run(self, max_instructions: int = 400_000_000,
            watchdog=None, resume: bool = False) -> int:
        """Run from the entry stub; with ``resume=True``, continue from
        the current pc instead (e.g. after a watchdog
        :class:`~repro.machine.cpu.SimulationLimit`)."""
        return self.cpu.run(start=None if resume else self.entry,
                            max_instructions=max_instructions,
                            watchdog=watchdog)

    def output_text(self) -> str:
        return "".join(
            item if len(item) == 1 and not item.isdigit() else item
            for item in self.output)


def load_program(program: Program,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 costs: CostModel = DEFAULT_COSTS,
                 stack_top: int = DEFAULT_STACK_TOP,
                 heap_base: int = DEFAULT_HEAP_BASE,
                 record_writes: bool = False,
                 entry_name: str = "main",
                 fast_path=None) -> LoadedProgram:
    """Instantiate a CPU running *program*, stopped at the startup stub.

    *fast_path* picks the execution engine (None = the CPU default,
    i.e. block fast path unless ``REPRO_FAST_PATH=0``).
    """
    code = CodeSpace(base=program.text_base)
    code.insns.extend(program.insns)

    if entry_name not in program.labels:
        raise ValueError("program has no %r entry point" % entry_name)
    main_addr = program.labels[entry_name]

    stub = [CallInsn(main_addr), NopInsn(), TrapInsn(TRAP_EXIT)]
    for insn in stub:
        insn.tag = "lib"
    entry = code.append_block(stub)

    memory = Memory(heap_base=heap_base)
    for addr, value in program.data_words:
        memory.write_word(addr, value)
    if program.data_end > heap_base:
        raise ValueError("data section overflows into the heap")

    cpu = CPU(code, memory=memory, cache=DirectMappedCache(cache_bytes),
              costs=costs, fast_path=fast_path)
    cpu.record_writes = record_writes
    cpu.regs.write(SP, stack_top - 96)
    cpu.regs.write(FP, stack_top)
    output = install_default_handlers(cpu)
    return LoadedProgram(cpu, program, output, entry)


def run_source(source: str, max_instructions: int = 400_000_000,
               record_writes: bool = False,
               costs: CostModel = DEFAULT_COSTS
               ) -> Tuple[int, List[str], CPU]:
    """Assemble, load and run assembly *source*.

    Returns ``(exit_code, output, cpu)`` — the quick path used by unit
    tests and the quickstart example.
    """
    program = assemble(source)
    loaded = load_program(program, record_writes=record_writes, costs=costs)
    exit_code = loaded.run(max_instructions=max_instructions)
    return exit_code, loaded.output, loaded.cpu
