"""Mini-C: the source language for SPEC-mimic workloads.

Public API: :func:`compile_source` (mini-C text -> assembly text),
:func:`compile_and_run` (convenience: compile, assemble, load, run).
"""

from repro.minic.codegen import compile_source
from repro.minic.lexer import CompileError


def compile_and_run(source, lang="C", max_instructions=400_000_000,
                    record_writes=False):
    """Compile and execute mini-C *source*; returns (exit, output, cpu)."""
    from repro.asm.loader import run_source
    return run_source(compile_source(source, lang=lang),
                      max_instructions=max_instructions,
                      record_writes=record_writes)


__all__ = ["compile_source", "compile_and_run", "CompileError"]
