"""Naive debug-mode code generator: mini-C AST -> SPARC-like assembly.

The generator deliberately mirrors how the paper's programs were compiled
for debugging (§3.1): every variable not declared ``register`` lives in
memory (locals and parameters in the stack frame, globals in BSS), every
use loads it and every assignment stores it, loops are top-tested with an
explicit compare-and-branch in the header, and no global optimization is
performed.  This is exactly the regime in which write checking is
expensive and write-check elimination pays off.

Registers:

* ``%l0``-``%l2`` hold ``register`` locals (at most three per function);
* ``%l3``-``%l7`` form the expression evaluation stack;
* ``%o0``-``%o5`` pass arguments; ``%i0`` returns the value;
* ``%g2``-``%g7`` and ``%m0``-``%m3`` are never touched — they are
  reserved for the monitored region service (§2.1).

Every variable gets a ``.stabs`` record so both the debugger and the
optimizer's symbol-table pattern matching can find it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.minic import cast as A
from repro.minic.cparser import parse_source
from repro.minic.lexer import CompileError
from repro.minic.types import (ArrayType, INT, PointerType, StructType,
                               Type, decay, element_type)

#: registers used for register-declared locals, in allocation order
REGVAR_REGS = ["%l0", "%l1", "%l2"]
#: expression evaluation stack (allocated top-down)
EVAL_REGS = ["%l7", "%l6", "%l5", "%l4", "%l3"]
ARG_REGS = ["%o0", "%o1", "%o2", "%o3", "%o4", "%o5"]

SIMM13_MIN, SIMM13_MAX = -4096, 4095

TRAP_EXIT, TRAP_PRINT_INT, TRAP_PRINT_CHAR, TRAP_SBRK = 0, 1, 2, 3

_BUILTINS = {"print": TRAP_PRINT_INT, "putc": TRAP_PRINT_CHAR,
             "sbrk": TRAP_SBRK, "exit": TRAP_EXIT}
#: builtins lowered to calls into compiler-emitted helpers
_HELPER_BUILTINS = {"puts": "__mc_puts"}

_CMP_BRANCH = {"==": "be", "!=": "bne", "<": "bl", "<=": "ble",
               ">": "bg", ">=": "bge"}
_CMP_NEGATE = {"==": "bne", "!=": "be", "<": "bge", "<=": "bg",
               ">": "ble", ">=": "bl"}
_ALU_OPS = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
            "<<": "sll", ">>": "sra", "*": "smul", "/": "sdiv"}


class _Storage:
    """Where a variable lives."""

    __slots__ = ("kind", "type", "offset", "label", "reg", "name")

    def __init__(self, kind: str, type_: Type, name: str, offset: int = 0,
                 label: str = "", reg: str = ""):
        self.kind = kind          # "frame" | "global" | "reg"
        self.type = type_
        self.name = name
        self.offset = offset
        self.label = label
        self.reg = reg


class _Address:
    """A partially evaluated address: base register + displacement, or
    base register + index register (displacement folded in earlier)."""

    __slots__ = ("base", "index", "disp", "temps")

    def __init__(self, base: str, disp: int = 0,
                 index: Optional[str] = None,
                 temps: Tuple[str, ...] = ()):
        self.base = base
        self.index = index
        self.disp = disp
        self.temps = temps

    def operand(self) -> str:
        if self.index is not None:
            return "[%s+%s]" % (self.base, self.index)
        if self.disp:
            return "[%s%+d]" % (self.base, self.disp)
        return "[%s]" % self.base


class CodeGen:
    def __init__(self, ast: A.ProgramAst, lang: str = "C"):
        self.ast = ast
        self.lang = lang
        self.lines: List[str] = []
        self.globals: Dict[str, _Storage] = {}
        self.functions: Dict[str, A.FuncDef] = {}
        self._label_counter = 0
        # per-function state
        self.env: Dict[str, _Storage] = {}
        self._free_eval: List[str] = []
        self._epilogue = ""
        self._loop_stack: List[Tuple[str, str]] = []
        self._current_func = ""
        #: string literal text -> data label
        self._strings: Dict[str, str] = {}
        self._needs_puts = False

    # -- emission helpers --------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("\t" + text)

    def emit_label(self, name: str) -> None:
        self.lines.append(name + ":")

    def new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return ".%s%d" % (hint, self._label_counter)

    # -- register pool -------------------------------------------------------

    def alloc(self) -> str:
        if not self._free_eval:
            raise CompileError("expression too complex for the naive "
                               "code generator (evaluation stack overflow)")
        return self._free_eval.pop()

    def free(self, reg: str) -> None:
        if reg in EVAL_REGS:
            self._free_eval.append(reg)

    def free_addr(self, addr: _Address) -> None:
        for reg in addr.temps:
            self.free(reg)

    # -- program ------------------------------------------------------------

    def generate(self) -> str:
        self.emit(".lang %s" % self.lang)
        self.emit(".text")
        for func in self.ast.functions:
            self.functions[func.name] = func
        for decl in self.ast.globals:
            label = "G_" + decl.name
            self.globals[decl.name] = _Storage("global", decl.type,
                                               decl.name, label=label)
        for func in self.ast.functions:
            self.gen_function(func)
        if self._needs_puts:
            self._emit_puts_helper()
        self.emit(".data")
        for decl in self.ast.globals:
            self.gen_global_data(decl)
        self._emit_string_data()
        if "main" not in self.functions:
            raise CompileError("program has no main()")
        return "\n".join(self.lines) + "\n"

    def gen_global_data(self, decl: A.VarDecl) -> None:
        storage = self.globals[decl.name]
        self.emit(".align 8")
        self.emit_label(storage.label)
        size = decl.type.size
        if decl.init_values:
            words = [v & 0xFFFFFFFF for v in decl.init_values]
            if 4 * len(words) > size:
                raise CompileError("too many initializers for %r"
                                   % decl.name, decl.line)
            self.emit(".word %s" % ", ".join(str(w) for w in words))
            remaining = size - 4 * len(words)
            if remaining:
                self.emit(".skip %d" % remaining)
        else:
            self.emit(".skip %d" % size)
        elem = self._elem_size(decl.type)
        suffix = ", %d" % elem if elem else ""
        self.emit('.stabs "%s", global, %s, %d%s'
                  % (decl.name, storage.label, size, suffix))
        if decl.type.is_struct():
            for field_name, _ftype in decl.type.fields:
                offset = decl.type.field_offset(field_name)
                self.emit('.stabs "%s.%s", global, %s+%d, 4'
                          % (decl.name, field_name, storage.label, offset))

    @staticmethod
    def _elem_size(type_: Type) -> Optional[int]:
        if isinstance(type_, ArrayType):
            elem = type_.elem
            while isinstance(elem, ArrayType):
                elem = elem.elem
            return elem.size
        return None

    # -- functions -------------------------------------------------------------

    def gen_function(self, func: A.FuncDef) -> None:
        self.env = {}
        self._free_eval = list(EVAL_REGS)
        self._loop_stack = []
        self._current_func = func.name
        self._epilogue = self.new_label("ret_" + func.name)

        # frame layout
        cursor = 0
        frame_entries: List[Tuple[str, _Storage, Optional[int]]] = []
        reg_pool = list(REGVAR_REGS)

        def place(name: str, type_: Type, kind: str,
                  want_register: bool) -> _Storage:
            nonlocal cursor
            if want_register and type_.is_scalar() and reg_pool:
                storage = _Storage("reg", type_, name, reg=reg_pool.pop(0))
                self.env[name] = storage
                return storage
            size = (type_.size + 3) & ~3
            cursor -= size
            if cursor < -3500:
                raise CompileError(
                    "frame too large in %s (move arrays to globals)"
                    % func.name, func.line)
            storage = _Storage(kind, type_, name, offset=cursor)
            self.env[name] = storage
            frame_entries.append((name, storage, self._elem_size(type_)))
            return storage

        param_storages = []
        for param in func.params:
            if param.is_register and reg_pool:
                storage = _Storage("reg", param.type, param.name,
                                   reg=reg_pool.pop(0))
                self.env[param.name] = storage
                param_storages.append(storage)
            else:
                storage = place(param.name, param.type, "frame", False)
                storage.kind = "param"
                param_storages.append(storage)
        for decl in func.decls:
            if decl.name in self.env:
                raise CompileError("redefinition of %r" % decl.name,
                                   decl.line)
            place(decl.name, decl.type, "frame", decl.is_register)

        frame = 96 + ((-cursor + 7) & ~7)
        self.emit(".proc %s" % func.name)
        self.emit_label(func.name)
        self.emit("save %%sp, -%d, %%sp" % frame)

        # parameter homing: naive debug code stores params to their slots
        for index, (param, storage) in enumerate(
                zip(func.params, param_storages)):
            if index >= len(ARG_REGS):
                raise CompileError("too many parameters in %s" % func.name,
                                   func.line)
            in_reg = "%%i%d" % index
            if storage.kind == "reg":
                self.emit("mov %s, %s" % (in_reg, storage.reg))
            else:
                self.emit("st %s, [%%fp%+d]" % (in_reg, storage.offset))

        # stabs
        for name, storage, elem in frame_entries:
            kind = "param" if storage.kind == "param" else "local"
            suffix = ", %d" % elem if elem else ""
            self.emit('.stabs "%s", %s, %d, %d%s'
                      % (name, kind, storage.offset, storage.type.size,
                         suffix))
            if storage.type.is_struct():
                for field_name, _t in storage.type.fields:
                    offset = storage.type.field_offset(field_name)
                    self.emit('.stabs "%s.%s", %s, %d, 4'
                              % (name, field_name, kind,
                                 storage.offset + offset))
        for name, storage in self.env.items():
            if storage.kind == "reg":
                self.emit('.stabs "%s", register, %s, 4'
                          % (name, storage.reg))

        self.gen_block(func.body)

        self.emit_label(self._epilogue)
        self.emit("ret")
        self.emit("restore")
        self.emit(".endproc")

    # -- statements ------------------------------------------------------------

    def gen_block(self, block: A.Block) -> None:
        for stmt in block.stmts:
            self.gen_statement(stmt)

    def gen_statement(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, A.ExprStmt):
            reg = self.gen_expr(stmt.expr)
            self.free(reg)
        elif isinstance(stmt, A.If):
            self.gen_if(stmt)
        elif isinstance(stmt, A.While):
            self.gen_while(stmt)
        elif isinstance(stmt, A.DoWhile):
            self.gen_do_while(stmt)
        elif isinstance(stmt, A.For):
            self.gen_for(stmt)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                reg = self.gen_expr(stmt.value)
                self.emit("mov %s, %%i0" % reg)
                self.free(reg)
            self.emit("ba %s" % self._epilogue)
            self.emit("nop")
        elif isinstance(stmt, A.Break):
            if not self._loop_stack:
                raise CompileError("break outside loop", stmt.line)
            self.emit("ba %s" % self._loop_stack[-1][1])
            self.emit("nop")
        elif isinstance(stmt, A.Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop", stmt.line)
            self.emit("ba %s" % self._loop_stack[-1][0])
            self.emit("nop")
        elif isinstance(stmt, A.Block):
            self.gen_block(stmt)
        else:
            raise CompileError("unknown statement %r" % stmt, stmt.line)

    def gen_assign(self, stmt: A.Assign) -> None:
        target = stmt.target
        if isinstance(target, A.Var):
            storage = self.lookup(target.name, target.line)
            if storage.kind == "reg":
                value = self.gen_expr(stmt.value)
                self.emit("mov %s, %s" % (value, storage.reg))
                self.free(value)
                return
        value = self.gen_expr(stmt.value)
        addr = self.gen_addr(target)
        self.emit("st %s, %s" % (value, addr.operand()))
        self.free(value)
        self.free_addr(addr)

    def gen_if(self, stmt: A.If) -> None:
        label_else = self.new_label("else")
        label_end = self.new_label("endif")
        self.gen_branch_false(stmt.cond, label_else)
        self.gen_block(stmt.then_body)
        if stmt.else_body is not None:
            self.emit("ba %s" % label_end)
            self.emit("nop")
            self.emit_label(label_else)
            self.gen_block(stmt.else_body)
            self.emit_label(label_end)
        else:
            self.emit_label(label_else)

    def gen_while(self, stmt: A.While) -> None:
        label_test = self.new_label("while")
        label_exit = self.new_label("wend")
        self._loop_stack.append((label_test, label_exit))
        self.emit_label(label_test)
        self.gen_branch_false(stmt.cond, label_exit)
        self.gen_block(stmt.body)
        self.emit("ba %s" % label_test)
        self.emit("nop")
        self.emit_label(label_exit)
        self._loop_stack.pop()

    def gen_do_while(self, stmt: A.DoWhile) -> None:
        label_body = self.new_label("do")
        label_cont = self.new_label("dtest")
        label_exit = self.new_label("dend")
        self._loop_stack.append((label_cont, label_exit))
        self.emit_label(label_body)
        self.gen_block(stmt.body)
        self.emit_label(label_cont)
        self.gen_branch_true(stmt.cond, label_body)
        self.emit_label(label_exit)
        self._loop_stack.pop()

    def gen_for(self, stmt: A.For) -> None:
        label_test = self.new_label("for")
        label_cont = self.new_label("fstep")
        label_exit = self.new_label("fend")
        if stmt.init is not None:
            self.gen_statement(stmt.init)
        self._loop_stack.append((label_cont, label_exit))
        self.emit_label(label_test)
        if stmt.cond is not None:
            self.gen_branch_false(stmt.cond, label_exit)
        self.gen_block(stmt.body)
        self.emit_label(label_cont)
        if stmt.step is not None:
            self.gen_statement(stmt.step)
        self.emit("ba %s" % label_test)
        self.emit("nop")
        self.emit_label(label_exit)
        self._loop_stack.pop()

    # -- conditions --------------------------------------------------------------

    def gen_branch_false(self, expr: A.Expr, label: str) -> None:
        """Branch to *label* when *expr* is false; else fall through."""
        if isinstance(expr, A.Binary) and expr.op in _CMP_NEGATE:
            left = self.gen_expr(expr.left)
            right, imm = self._cmp_operand(expr.right)
            self.emit("cmp %s, %s" % (left, right))
            self.emit("%s %s" % (_CMP_NEGATE[expr.op], label))
            self.emit("nop")
            self.free(left)
            if not imm:
                self.free(right)
            return
        if isinstance(expr, A.Binary) and expr.op == "&&":
            self.gen_branch_false(expr.left, label)
            self.gen_branch_false(expr.right, label)
            return
        if isinstance(expr, A.Binary) and expr.op == "||":
            label_mid = self.new_label("or")
            self.gen_branch_true(expr.left, label_mid)
            self.gen_branch_false(expr.right, label)
            self.emit_label(label_mid)
            return
        if isinstance(expr, A.Unary) and expr.op == "!":
            self.gen_branch_true(expr.operand, label)
            return
        reg = self.gen_expr(expr)
        self.emit("tst %s" % reg)
        self.emit("be %s" % label)
        self.emit("nop")
        self.free(reg)

    def gen_branch_true(self, expr: A.Expr, label: str) -> None:
        """Branch to *label* when *expr* is true; else fall through."""
        if isinstance(expr, A.Binary) and expr.op in _CMP_BRANCH:
            left = self.gen_expr(expr.left)
            right, imm = self._cmp_operand(expr.right)
            self.emit("cmp %s, %s" % (left, right))
            self.emit("%s %s" % (_CMP_BRANCH[expr.op], label))
            self.emit("nop")
            self.free(left)
            if not imm:
                self.free(right)
            return
        if isinstance(expr, A.Binary) and expr.op == "&&":
            label_mid = self.new_label("and")
            self.gen_branch_false(expr.left, label_mid)
            self.gen_branch_true(expr.right, label)
            self.emit_label(label_mid)
            return
        if isinstance(expr, A.Binary) and expr.op == "||":
            self.gen_branch_true(expr.left, label)
            self.gen_branch_true(expr.right, label)
            return
        if isinstance(expr, A.Unary) and expr.op == "!":
            self.gen_branch_false(expr.operand, label)
            return
        reg = self.gen_expr(expr)
        self.emit("tst %s" % reg)
        self.emit("bne %s" % label)
        self.emit("nop")
        self.free(reg)

    def _cmp_operand(self, expr: A.Expr) -> Tuple[str, bool]:
        """Fold small constants into the cmp immediate field."""
        if isinstance(expr, A.Num) and SIMM13_MIN <= expr.value <= SIMM13_MAX:
            return str(expr.value), True
        reg = self.gen_expr(expr)
        return reg, False

    # -- expressions ------------------------------------------------------------

    def lookup(self, name: str, line: int) -> _Storage:
        storage = self.env.get(name) or self.globals.get(name)
        if storage is None:
            raise CompileError("undefined variable %r" % name, line)
        return storage

    def type_of(self, expr: A.Expr) -> Type:
        """Static type of *expr* (rvalue types; arrays do not decay)."""
        if isinstance(expr, A.Num):
            return INT
        if isinstance(expr, A.Str):
            return PointerType(INT)
        if isinstance(expr, A.Ternary):
            return self.type_of(expr.then)
        if isinstance(expr, A.Var):
            return self.lookup(expr.name, expr.line).type
        if isinstance(expr, A.Unary):
            if expr.op == "*":
                return element_type(decay(self.type_of(expr.operand)),
                                    expr.line)
            if expr.op == "&":
                return PointerType(self.type_of(expr.operand))
            return INT
        if isinstance(expr, A.Binary):
            if expr.op in ("+", "-"):
                left = decay(self.type_of(expr.left))
                if left.is_pointer():
                    return left
                right = decay(self.type_of(expr.right))
                if right.is_pointer():
                    return right
            return INT
        if isinstance(expr, A.Index):
            return element_type(decay(self.type_of(expr.base)), expr.line)
        if isinstance(expr, A.Field):
            base_type = self.type_of(expr.base)
            if expr.arrow:
                base_type = element_type(decay(base_type), expr.line)
            if not isinstance(base_type, StructType):
                raise CompileError("field access on non-struct", expr.line)
            return base_type.field_type(expr.name, expr.line)
        if isinstance(expr, A.Call):
            func = self.functions.get(expr.name)
            if func is not None:
                return INT  # functions return word-sized values
            return INT
        raise CompileError("cannot type %r" % expr, expr.line)

    def gen_expr(self, expr: A.Expr) -> str:
        """Evaluate *expr* into a freshly allocated evaluation register."""
        if isinstance(expr, A.Num):
            reg = self.alloc()
            if SIMM13_MIN <= expr.value <= SIMM13_MAX:
                self.emit("mov %d, %s" % (expr.value, reg))
            else:
                self.emit("set %d, %s" % (expr.value, reg))
            return reg
        if isinstance(expr, A.Var):
            storage = self.lookup(expr.name, expr.line)
            reg = self.alloc()
            if storage.kind == "reg":
                self.emit("mov %s, %s" % (storage.reg, reg))
            elif storage.type.is_array():
                if storage.kind == "global":
                    self.emit("set %s, %s" % (storage.label, reg))
                else:
                    self.emit("add %%fp, %d, %s" % (storage.offset, reg))
            elif storage.kind == "global":
                self.emit("set %s, %s" % (storage.label, reg))
                self.emit("ld [%s], %s" % (reg, reg))
            else:
                self.emit("ld [%%fp%+d], %s" % (storage.offset, reg))
            return reg
        if isinstance(expr, A.Str):
            reg = self.alloc()
            self.emit("set %s, %s" % (self._string_label(expr.value), reg))
            return reg
        if isinstance(expr, A.Ternary):
            return self.gen_ternary(expr)
        if isinstance(expr, A.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, A.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, A.Call):
            return self.gen_call(expr)
        if isinstance(expr, (A.Index, A.Field)):
            result_type = self.type_of(expr)
            addr = self.gen_addr(expr)
            reg = self._addr_into_reg(addr)
            if not result_type.is_array() and not result_type.is_struct():
                self.emit("ld [%s], %s" % (reg, reg))
            return reg
        raise CompileError("cannot evaluate %r" % expr, expr.line)

    def _addr_into_reg(self, addr: _Address) -> str:
        """Materialize an address into a single owned register."""
        if addr.index is not None:
            if addr.base in addr.temps:
                reg = addr.base
                self.emit("add %s, %s, %s" % (addr.base, addr.index, reg))
                if addr.index in addr.temps:
                    self.free(addr.index)
            else:
                reg = addr.index if addr.index in addr.temps else self.alloc()
                self.emit("add %s, %s, %s" % (addr.base, addr.index, reg))
            return reg
        if addr.base in addr.temps:
            if addr.disp:
                self.emit("add %s, %d, %s" % (addr.base, addr.disp,
                                              addr.base))
            return addr.base
        reg = self.alloc()
        if addr.disp:
            self.emit("add %s, %d, %s" % (addr.base, addr.disp, reg))
        else:
            self.emit("mov %s, %s" % (addr.base, reg))
        return reg

    def gen_unary(self, expr: A.Unary) -> str:
        if expr.op == "&":
            addr = self.gen_addr(expr.operand)
            return self._addr_into_reg(addr)
        if expr.op == "*":
            reg = self.gen_expr(expr.operand)
            target_type = self.type_of(expr)
            if not target_type.is_struct() and not target_type.is_array():
                self.emit("ld [%s], %s" % (reg, reg))
            return reg
        if expr.op == "-":
            reg = self.gen_expr(expr.operand)
            self.emit("sub %%g0, %s, %s" % (reg, reg))
            return reg
        if expr.op == "~":
            reg = self.gen_expr(expr.operand)
            self.emit("xor %s, -1, %s" % (reg, reg))
            return reg
        if expr.op == "!":
            return self._bool_value(expr)
        raise CompileError("unknown unary %r" % expr.op, expr.line)

    def gen_binary(self, expr: A.Binary) -> str:
        if expr.op in _CMP_BRANCH or expr.op in ("&&", "||"):
            return self._bool_value(expr)
        if expr.op == "%":
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            temp = self.alloc()
            self.emit("sdiv %s, %s, %s" % (left, right, temp))
            self.emit("smul %s, %s, %s" % (temp, right, temp))
            self.emit("sub %s, %s, %s" % (left, temp, left))
            self.free(temp)
            self.free(right)
            return left

        left_type = decay(self.type_of(expr.left))
        right_type = decay(self.type_of(expr.right))
        left = self.gen_expr(expr.left)
        # pointer arithmetic: scale the integer side by the element size
        if expr.op in ("+", "-") and left_type.is_pointer() \
                and not right_type.is_pointer():
            right = self.gen_expr(expr.right)
            right = self._scale(right, element_type(left_type).size)
        elif expr.op == "+" and right_type.is_pointer():
            left = self._scale(left, element_type(right_type).size)
            right = self.gen_expr(expr.right)
        else:
            if isinstance(expr.right, A.Num) and \
                    SIMM13_MIN <= expr.right.value <= SIMM13_MAX and \
                    expr.op in _ALU_OPS:
                self.emit("%s %s, %d, %s" % (_ALU_OPS[expr.op], left,
                                             expr.right.value, left))
                return left
            right = self.gen_expr(expr.right)
        op = _ALU_OPS.get(expr.op)
        if op is None:
            raise CompileError("unknown binary %r" % expr.op, expr.line)
        self.emit("%s %s, %s, %s" % (op, left, right, left))
        self.free(right)
        return left

    def _scale(self, reg: str, size: int) -> str:
        if size == 1:
            return reg
        if size & (size - 1) == 0:
            self.emit("sll %s, %d, %s" % (reg, size.bit_length() - 1, reg))
        else:
            temp = self.alloc()
            self.emit("mov %d, %s" % (size, temp))
            self.emit("smul %s, %s, %s" % (reg, temp, reg))
            self.free(temp)
        return reg

    def gen_ternary(self, expr: A.Ternary) -> str:
        reg = self.alloc()
        label_else = self.new_label("tern")
        label_end = self.new_label("ternend")
        self.gen_branch_false(expr.cond, label_else)
        value = self.gen_expr(expr.then)
        self.emit("mov %s, %s" % (value, reg))
        self.free(value)
        self.emit("ba %s" % label_end)
        self.emit("nop")
        self.emit_label(label_else)
        value = self.gen_expr(expr.other)
        self.emit("mov %s, %s" % (value, reg))
        self.free(value)
        self.emit_label(label_end)
        return reg

    def _string_label(self, text: str) -> str:
        label = self._strings.get(text)
        if label is None:
            label = ".Lstr%d" % len(self._strings)
            self._strings[text] = label
        return label

    def _bool_value(self, expr: A.Expr) -> str:
        reg = self.alloc()
        label_false = self.new_label("bf")
        label_end = self.new_label("bend")
        self.gen_branch_false(expr, label_false)
        self.emit("mov 1, %s" % reg)
        self.emit("ba %s" % label_end)
        self.emit("nop")
        self.emit_label(label_false)
        self.emit("mov 0, %s" % reg)
        self.emit_label(label_end)
        return reg

    def gen_call(self, expr: A.Call) -> str:
        if expr.name in _BUILTINS:
            return self._gen_builtin(expr)
        if expr.name in _HELPER_BUILTINS and \
                expr.name not in self.functions:
            return self._gen_helper_call(expr)
        if expr.name not in self.functions:
            raise CompileError("call to undefined function %r" % expr.name,
                               expr.line)
        if len(expr.args) > len(ARG_REGS):
            raise CompileError("too many arguments", expr.line)
        # Leaf arguments (constants, simple variables) are loaded
        # directly into their %o registers at the end; only compound
        # arguments occupy evaluation-stack registers in the meantime.
        arg_regs: List[Tuple[int, str]] = []
        deferred: List[Tuple[int, A.Expr]] = []
        for index, arg in enumerate(expr.args):
            if self._is_leaf_arg(arg):
                deferred.append((index, arg))
            else:
                arg_regs.append((index, self.gen_expr(arg)))
        for index, reg in arg_regs:
            self.emit("mov %s, %s" % (reg, ARG_REGS[index]))
            self.free(reg)
        for index, arg in deferred:
            self._gen_leaf_into(arg, ARG_REGS[index])
        self.emit("call %s" % expr.name)
        self.emit("nop")
        result = self.alloc()
        self.emit("mov %%o0, %s" % result)
        return result

    def _is_leaf_arg(self, expr: A.Expr) -> bool:
        if isinstance(expr, A.Num):
            return SIMM13_MIN <= expr.value <= SIMM13_MAX
        if isinstance(expr, A.Var):
            storage = self.env.get(expr.name) or self.globals.get(expr.name)
            return storage is not None
        return False

    def _gen_leaf_into(self, expr: A.Expr, target: str) -> None:
        """Materialize a leaf argument directly in *target*."""
        if isinstance(expr, A.Num):
            self.emit("mov %d, %s" % (expr.value, target))
            return
        storage = self.lookup(expr.name, expr.line)
        if storage.kind == "reg":
            self.emit("mov %s, %s" % (storage.reg, target))
        elif storage.type.is_array():
            if storage.kind == "global":
                self.emit("set %s, %s" % (storage.label, target))
            else:
                self.emit("add %%fp, %d, %s" % (storage.offset, target))
        elif storage.kind == "global":
            self.emit("set %s, %s" % (storage.label, target))
            self.emit("ld [%s], %s" % (target, target))
        else:
            self.emit("ld [%%fp%+d], %s" % (storage.offset, target))

    def _gen_builtin(self, expr: A.Call) -> str:
        trap = _BUILTINS[expr.name]
        if len(expr.args) != 1:
            raise CompileError("%s takes one argument" % expr.name,
                               expr.line)
        reg = self.gen_expr(expr.args[0])
        self.emit("mov %s, %%o0" % reg)
        self.free(reg)
        self.emit("ta %d" % trap)
        result = self.alloc()
        self.emit("mov %%o0, %s" % result)
        return result

    def _gen_helper_call(self, expr: A.Call) -> str:
        if len(expr.args) != 1:
            raise CompileError("%s takes one argument" % expr.name,
                               expr.line)
        self._needs_puts = True
        reg = self.gen_expr(expr.args[0])
        self.emit("mov %s, %%o0" % reg)
        self.free(reg)
        self.emit("call %s" % _HELPER_BUILTINS[expr.name])
        self.emit("nop")
        result = self.alloc()
        self.emit("mov %%o0, %s" % result)
        return result

    def _emit_puts_helper(self) -> None:
        """Byte-at-a-time string printer: pointer in %o0, NUL-terminated."""
        self.emit(".proc __mc_puts")
        self.emit_label("__mc_puts")
        self.emit("save %sp, -96, %sp")
        self.emit_label(".Lputs_loop")
        self.emit("ldub [%i0], %o0")
        self.emit("tst %o0")
        self.emit("be .Lputs_done")
        self.emit("nop")
        self.emit("ta %d" % TRAP_PRINT_CHAR)
        self.emit("ba .Lputs_loop")
        self.emit("add %i0, 1, %i0")
        self.emit_label(".Lputs_done")
        self.emit("mov 0, %i0")
        self.emit("ret")
        self.emit("restore")
        self.emit(".endproc")

    def _emit_string_data(self) -> None:
        for text, label in self._strings.items():
            data = text.encode("latin-1", errors="replace") + b"\x00"
            words = []
            for offset in range(0, len(data), 4):
                chunk = data[offset:offset + 4].ljust(4, b"\x00")
                words.append(int.from_bytes(chunk, "big"))
            self.emit(".align 4")
            self.emit_label(label)
            self.emit(".word %s" % ", ".join(str(w) for w in words))

    # -- addresses -----------------------------------------------------------------

    def gen_addr(self, expr: A.Expr) -> _Address:
        """Compute the address of lvalue *expr*."""
        if isinstance(expr, A.Var):
            storage = self.lookup(expr.name, expr.line)
            if storage.kind == "reg":
                raise CompileError("cannot take the address of register "
                                   "variable %r" % expr.name, expr.line)
            if storage.kind == "global":
                reg = self.alloc()
                self.emit("set %s, %s" % (storage.label, reg))
                return _Address(reg, temps=(reg,))
            return _Address("%fp", storage.offset)
        if isinstance(expr, A.Unary) and expr.op == "*":
            reg = self.gen_expr(expr.operand)
            return _Address(reg, temps=(reg,))
        if isinstance(expr, A.Index):
            return self._gen_index_addr(expr)
        if isinstance(expr, A.Field):
            return self._gen_field_addr(expr)
        raise CompileError("not an lvalue: %r" % expr, expr.line)

    def _base_address(self, base: A.Expr, line: int) -> _Address:
        base_type = self.type_of(base)
        if base_type.is_array():
            return self.gen_addr(base)
        reg = self.gen_expr(base)  # pointer value
        return _Address(reg, temps=(reg,))

    def _gen_index_addr(self, expr: A.Index) -> _Address:
        elem = element_type(decay(self.type_of(expr.base)), expr.line)
        addr = self._base_address(expr.base, expr.line)
        if isinstance(expr.index, A.Num):
            disp = addr.disp + expr.index.value * elem.size
            if addr.index is None and SIMM13_MIN <= disp <= SIMM13_MAX:
                return _Address(addr.base, disp, temps=addr.temps)
            base = self._addr_into_reg(addr)
            self.emit("add %s, %d, %s"
                      % (base, expr.index.value * elem.size, base))
            return _Address(base, temps=(base,))
        index_reg = self.gen_expr(expr.index)
        index_reg = self._scale(index_reg, elem.size)
        base = self._addr_into_reg(addr)
        return _Address(base, index=index_reg, temps=(base, index_reg))

    def _gen_field_addr(self, expr: A.Field) -> _Address:
        base_type = self.type_of(expr.base)
        if expr.arrow:
            struct_type = element_type(decay(base_type), expr.line)
            reg = self.gen_expr(expr.base)
            addr = _Address(reg, temps=(reg,))
        else:
            struct_type = base_type
            addr = self.gen_addr(expr.base)
        if not isinstance(struct_type, StructType):
            raise CompileError("field access on non-struct", expr.line)
        offset = struct_type.field_offset(expr.name, expr.line)
        disp = addr.disp + offset
        if addr.index is None and SIMM13_MIN <= disp <= SIMM13_MAX:
            return _Address(addr.base, disp, temps=addr.temps)
        base = self._addr_into_reg(addr)
        if offset:
            self.emit("add %s, %d, %s" % (base, offset, base))
        return _Address(base, temps=(base,))


def compile_source(source: str, lang: str = "C") -> str:
    """Compile mini-C *source* to assembly text."""
    ast = parse_source(source)
    return CodeGen(ast, lang=lang).generate()
