"""AST node definitions for mini-C."""

from __future__ import annotations

from typing import List, Optional

from repro.minic.types import Type


class Node:
    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line


# -- expressions -------------------------------------------------------------

class Expr(Node):
    __slots__ = ()


class Num(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int = 0):
        super().__init__(line)
        self.value = value


class Str(Expr):
    """String literal; evaluates to the address of NUL-terminated data."""

    __slots__ = ("value",)

    def __init__(self, value: str, line: int = 0):
        super().__init__(line)
        self.value = value


class Ternary(Expr):
    """C conditional expression ``cond ? then : other``."""

    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: Expr, then: Expr, other: Expr, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.other = other


class Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name


class Unary(Expr):
    """Operators: - ! ~ * (deref) & (address-of)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Call(Expr):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Expr], line: int = 0):
        super().__init__(line)
        self.name = name
        self.args = args


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int = 0):
        super().__init__(line)
        self.base = base
        self.index = index


class Field(Expr):
    """``base.name`` (arrow=False) or ``base->name`` (arrow=True)."""

    __slots__ = ("base", "name", "arrow")

    def __init__(self, base: Expr, name: str, arrow: bool, line: int = 0):
        super().__init__(line)
        self.base = base
        self.name = name
        self.arrow = arrow


# -- statements ---------------------------------------------------------------

class Stmt(Node):
    __slots__ = ()


class Assign(Stmt):
    __slots__ = ("target", "value")

    def __init__(self, target: Expr, value: Expr, line: int = 0):
        super().__init__(line)
        self.target = target
        self.value = value


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0):
        super().__init__(line)
        self.expr = expr


class If(Stmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: Expr, then_body: "Block",
                 else_body: Optional["Block"], line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: "Block", line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    __slots__ = ("body", "cond")

    def __init__(self, body: "Block", cond: Expr, line: int = 0):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Stmt], cond: Optional[Expr],
                 step: Optional[Stmt], body: "Block", line: int = 0):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int = 0):
        super().__init__(line)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: List[Stmt], line: int = 0):
        super().__init__(line)
        self.stmts = stmts


# -- declarations ---------------------------------------------------------------

class VarDecl(Node):
    __slots__ = ("name", "type", "is_register", "init_values")

    def __init__(self, name: str, type_: Type, is_register: bool = False,
                 init_values: Optional[List[int]] = None, line: int = 0):
        super().__init__(line)
        self.name = name
        self.type = type_
        self.is_register = is_register
        self.init_values = init_values


class Param(Node):
    __slots__ = ("name", "type", "is_register")

    def __init__(self, name: str, type_: Type, is_register: bool = False,
                 line: int = 0):
        super().__init__(line)
        self.name = name
        self.type = type_
        self.is_register = is_register


class FuncDef(Node):
    __slots__ = ("name", "params", "decls", "body", "returns_value")

    def __init__(self, name: str, params: List[Param],
                 decls: List[VarDecl], body: Block,
                 returns_value: bool = True, line: int = 0):
        super().__init__(line)
        self.name = name
        self.params = params
        self.decls = decls
        self.body = body
        self.returns_value = returns_value


class ProgramAst(Node):
    __slots__ = ("globals", "structs", "functions")

    def __init__(self, globals_: List[VarDecl], structs: dict,
                 functions: List[FuncDef]):
        super().__init__(0)
        self.globals = globals_
        self.structs = structs
        self.functions = functions
