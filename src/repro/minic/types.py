"""Type model for mini-C: int, pointers, arrays, structs."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.minic.lexer import CompileError

WORD = 4


class Type:
    """Base class; every type knows its size in bytes."""

    size = WORD

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    def is_scalar(self) -> bool:
        return not (self.is_array() or self.is_struct())


class IntType(Type):
    size = WORD

    def __repr__(self) -> str:
        return "int"

    def __eq__(self, other) -> bool:
        return isinstance(other, IntType)

    def __hash__(self) -> int:
        return hash("int")


INT = IntType()


class PointerType(Type):
    size = WORD

    def __init__(self, base: Type):
        self.base = base

    def __repr__(self) -> str:
        return "%r*" % self.base

    def __eq__(self, other) -> bool:
        return isinstance(other, PointerType) and self.base == other.base

    def __hash__(self) -> int:
        return hash(("ptr", self.base))


class ArrayType(Type):
    def __init__(self, elem: Type, count: int):
        self.elem = elem
        self.count = count
        self.size = elem.size * count

    def __repr__(self) -> str:
        return "%r[%d]" % (self.elem, self.count)

    def __eq__(self, other) -> bool:
        return (isinstance(other, ArrayType) and self.elem == other.elem
                and self.count == other.count)

    def __hash__(self) -> int:
        return hash(("arr", self.elem, self.count))


class StructType(Type):
    """Struct with word-sized scalar or pointer fields."""

    def __init__(self, name: str, fields: List[Tuple[str, Type]]):
        self.name = name
        self.fields = fields
        self.offsets: Dict[str, int] = {}
        offset = 0
        for field_name, field_type in fields:
            self.offsets[field_name] = offset
            offset += field_type.size
        self.size = offset

    def field_type(self, name: str, line: int = 0) -> Type:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        raise CompileError("struct %s has no field %r" % (self.name, name),
                           line)

    def field_offset(self, name: str, line: int = 0) -> int:
        if name not in self.offsets:
            raise CompileError("struct %s has no field %r"
                               % (self.name, name), line)
        return self.offsets[name]

    def __repr__(self) -> str:
        return "struct %s" % self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, StructType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))


def element_type(t: Type, line: int = 0) -> Type:
    """Element type for indexing/dereferencing *t*."""
    if isinstance(t, ArrayType):
        return t.elem
    if isinstance(t, PointerType):
        return t.base
    raise CompileError("cannot index/deref non-pointer %r" % t, line)


def decay(t: Type) -> Type:
    """Array-to-pointer decay for rvalue contexts."""
    if isinstance(t, ArrayType):
        return PointerType(t.elem)
    return t
