"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.minic import cast as A
from repro.minic.lexer import CompileError, Token, tokenize
from repro.minic.types import (ArrayType, INT, PointerType, StructType,
                               Type)

#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, source: str):
        self.tokens: List[Token] = tokenize(source)
        self.pos = 0
        self.structs: Dict[str, StructType] = {}

    # -- token helpers ------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None
               ) -> Optional[Token]:
        token = self.tok
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            raise CompileError(
                "expected %s, got %r" % (value or kind, self.tok.value),
                self.tok.line)
        return token

    def peek_op(self, value: str) -> bool:
        return self.tok.kind == "op" and self.tok.value == value

    # -- types ---------------------------------------------------------

    def _is_type_start(self) -> bool:
        return self.tok.kind in ("int", "void", "register") or \
            (self.tok.kind == "struct")

    def parse_base_type(self) -> Type:
        if self.accept("int"):
            return INT
        if self.accept("void"):
            return INT  # void only appears as a return type; treat as int
        if self.accept("struct"):
            name = self.expect("ident").value
            if name not in self.structs:
                raise CompileError("unknown struct %r" % name, self.tok.line)
            return self.structs[name]
        raise CompileError("expected type, got %r" % self.tok.value,
                           self.tok.line)

    def parse_pointers(self, base: Type) -> Type:
        while self.accept("op", "*"):
            base = PointerType(base)
        return base

    # -- top level -------------------------------------------------------

    def parse_program(self) -> A.ProgramAst:
        globals_: List[A.VarDecl] = []
        functions: List[A.FuncDef] = []
        while self.tok.kind != "eof":
            if self.tok.kind == "struct" and \
                    self.tokens[self.pos + 2].value == "{":
                self.parse_struct_def()
                continue
            is_register = bool(self.accept("register"))
            base = self.parse_base_type()
            type_ = self.parse_pointers(base)
            name_tok = self.expect("ident")
            if self.peek_op("("):
                if is_register:
                    raise CompileError("register on a function",
                                       name_tok.line)
                functions.append(self.parse_function(name_tok.value))
            else:
                globals_.append(
                    self.parse_var_tail(name_tok, type_, is_register,
                                        allow_init=True))
        return A.ProgramAst(globals_, self.structs, functions)

    def parse_struct_def(self) -> None:
        line = self.expect("struct").line
        name = self.expect("ident").value
        self.expect("op", "{")
        fields = []
        while not self.accept("op", "}"):
            base = self.parse_base_type()
            field_type = self.parse_pointers(base)
            field_name = self.expect("ident").value
            if field_type.is_struct():
                raise CompileError("nested struct fields not supported",
                                   line)
            self.expect("op", ";")
            fields.append((field_name, field_type))
        self.expect("op", ";")
        if name in self.structs:
            raise CompileError("struct %r redefined" % name, line)
        self.structs[name] = StructType(name, fields)

    def parse_var_tail(self, name_tok: Token, type_: Type,
                       is_register: bool, allow_init: bool) -> A.VarDecl:
        while self.accept("op", "["):
            count_tok = self.expect("num")
            self.expect("op", "]")
            type_ = ArrayType(type_, int(count_tok.value, 0))
        if isinstance(type_, ArrayType):
            # int a[2][3] parses inner-first; normalize to row-major
            type_ = _normalize_array(type_)
        init_values = None
        if self.accept("op", "="):
            if not allow_init:
                raise CompileError("initializer not allowed here",
                                   name_tok.line)
            init_values = self.parse_initializer()
        self.expect("op", ";")
        if is_register and not type_.is_scalar():
            raise CompileError("register array/struct not supported",
                               name_tok.line)
        return A.VarDecl(name_tok.value, type_, is_register, init_values,
                         name_tok.line)

    def parse_initializer(self) -> List[int]:
        if self.accept("op", "{"):
            values = []
            while not self.accept("op", "}"):
                values.append(self.parse_const())
                if not self.peek_op("}"):
                    self.expect("op", ",")
            return values
        return [self.parse_const()]

    def parse_const(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.expect("num")
        value = int(token.value, 0)
        return -value if negative else value

    # -- functions --------------------------------------------------------

    def parse_function(self, name: str) -> A.FuncDef:
        line = self.tok.line
        self.expect("op", "(")
        params: List[A.Param] = []
        if not self.peek_op(")"):
            if self.tok.kind == "void" and \
                    self.tokens[self.pos + 1].value == ")":
                self.advance()
            else:
                while True:
                    is_register = bool(self.accept("register"))
                    base = self.parse_base_type()
                    ptype = self.parse_pointers(base)
                    pname = self.expect("ident").value
                    if not ptype.is_scalar():
                        raise CompileError(
                            "struct parameters must be pointers", line)
                    params.append(A.Param(pname, ptype, is_register, line))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        self.expect("op", "{")
        decls: List[A.VarDecl] = []
        while self._is_type_start():
            is_register = bool(self.accept("register"))
            base = self.parse_base_type()
            type_ = self.parse_pointers(base)
            name_tok = self.expect("ident")
            decls.append(self.parse_var_tail(name_tok, type_, is_register,
                                             allow_init=False))
        stmts: List[A.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_statement())
        return A.FuncDef(name, params, decls, A.Block(stmts, line),
                         line=line)

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> A.Stmt:
        token = self.tok
        if token.kind == "if":
            return self.parse_if()
        if token.kind == "while":
            return self.parse_while()
        if token.kind == "do":
            return self.parse_do_while()
        if token.kind == "for":
            return self.parse_for()
        if token.kind == "return":
            self.advance()
            value = None
            if not self.peek_op(";"):
                value = self.parse_expression()
            self.expect("op", ";")
            return A.Return(value, token.line)
        if token.kind == "break":
            self.advance()
            self.expect("op", ";")
            return A.Break(token.line)
        if token.kind == "continue":
            self.advance()
            self.expect("op", ";")
            return A.Continue(token.line)
        if self.peek_op("{"):
            return self.parse_block()
        if self.peek_op(";"):
            self.advance()
            return A.Block([], token.line)
        stmt = self.parse_simple()
        self.expect("op", ";")
        return stmt

    def parse_block(self) -> A.Block:
        line = self.expect("op", "{").line
        stmts = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_statement())
        return A.Block(stmts, line)

    _COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/",
                     "%=": "%"}

    def parse_simple(self) -> A.Stmt:
        """Assignment or expression statement (used directly in for())."""
        line = self.tok.line
        if self.peek_op("++") or self.peek_op("--"):
            op = self.advance().value
            target = self.parse_unary()
            return self._increment(target, op, line)
        expr = self.parse_expression()
        if self.accept("op", "="):
            self._require_lvalue(expr, line)
            value = self.parse_expression()
            return A.Assign(expr, value, line)
        for token, binop in self._COMPOUND_OPS.items():
            if self.accept("op", token):
                self._require_lvalue(expr, line)
                value = self.parse_expression()
                return A.Assign(expr, A.Binary(binop, expr, value, line),
                                line)
        if self.peek_op("++") or self.peek_op("--"):
            op = self.advance().value
            return self._increment(expr, op, line)
        return A.ExprStmt(expr, line)

    def _increment(self, target: A.Expr, op: str, line: int) -> A.Stmt:
        self._require_lvalue(target, line, allow_register=True)
        delta = A.Num(1, line)
        binop = "+" if op == "++" else "-"
        return A.Assign(target, A.Binary(binop, target, delta, line),
                        line)

    @staticmethod
    def _require_lvalue(expr: A.Expr, line: int,
                        allow_register: bool = False) -> None:
        if not isinstance(expr, (A.Var, A.Index, A.Field)) and not (
                isinstance(expr, A.Unary) and expr.op == "*"):
            raise CompileError("assignment target is not an lvalue",
                               line)

    def parse_if(self) -> A.If:
        line = self.expect("if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then_body = self._statement_as_block()
        else_body = None
        if self.accept("else"):
            else_body = self._statement_as_block()
        return A.If(cond, then_body, else_body, line)

    def _statement_as_block(self) -> A.Block:
        stmt = self.parse_statement()
        if isinstance(stmt, A.Block):
            return stmt
        return A.Block([stmt], stmt.line)

    def parse_do_while(self) -> A.DoWhile:
        line = self.expect("do").line
        body = self._statement_as_block()
        self.expect("while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return A.DoWhile(body, cond, line)

    def parse_while(self) -> A.While:
        line = self.expect("while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        return A.While(cond, self._statement_as_block(), line)

    def parse_for(self) -> A.For:
        line = self.expect("for").line
        self.expect("op", "(")
        init = None if self.peek_op(";") else self.parse_simple()
        self.expect("op", ";")
        cond = None if self.peek_op(";") else self.parse_expression()
        self.expect("op", ";")
        step = None if self.peek_op(")") else self.parse_simple()
        self.expect("op", ")")
        return A.For(init, cond, step, self._statement_as_block(), line)

    # -- expressions ---------------------------------------------------------

    def parse_expression(self, min_prec: int = 1) -> A.Expr:
        left = self.parse_unary()
        while True:
            token = self.tok
            if token.kind != "op":
                break
            prec = _PRECEDENCE.get(token.value)
            if prec is None or prec < min_prec:
                break
            self.advance()
            right = self.parse_expression(prec + 1)
            left = A.Binary(token.value, left, right, token.line)
        if min_prec == 1 and self.peek_op("?"):
            line = self.advance().line
            then = self.parse_expression()
            self.expect("op", ":")
            other = self.parse_expression()
            return A.Ternary(left, then, other, line)
        return left

    def parse_unary(self) -> A.Expr:
        token = self.tok
        if token.kind == "op" and token.value in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            if token.value == "-" and isinstance(operand, A.Num):
                return A.Num(-operand.value, token.line)
            return A.Unary(token.value, operand, token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                expr = A.Index(expr, index, self.tok.line)
            elif self.accept("op", "."):
                name = self.expect("ident").value
                expr = A.Field(expr, name, arrow=False, line=self.tok.line)
            elif self.accept("op", "->"):
                name = self.expect("ident").value
                expr = A.Field(expr, name, arrow=True, line=self.tok.line)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        token = self.tok
        if token.kind == "num":
            self.advance()
            return A.Num(int(token.value, 0), token.line)
        if token.kind == "str":
            self.advance()
            return A.Str(token.value, token.line)
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args = []
                if not self.peek_op(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return A.Call(token.value, args, token.line)
            return A.Var(token.value, token.line)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise CompileError("unexpected token %r" % token.value, token.line)


def _normalize_array(type_: ArrayType) -> ArrayType:
    """``int a[2][3]`` parses as (int[2])[3]; flip to row-major [2][3]."""
    dims = []
    base: Type = type_
    while isinstance(base, ArrayType):
        dims.append(base.count)
        base = base.elem
    result = base
    for count in dims:
        result = ArrayType(result, count)
    return result


def parse_source(source: str) -> A.ProgramAst:
    """Parse mini-C *source* text into an AST."""
    return Parser(source).parse_program()
