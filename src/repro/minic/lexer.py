"""Lexer for mini-C, the source language of the SPEC-mimic workloads.

Mini-C is the C subset the reproduction compiles with *naive debug
compilation* (every non-``register`` variable lives in memory), matching
how the paper's programs were compiled for debugging.
"""

from __future__ import annotations

from repro.errors import ReproError

import re
from typing import List, NamedTuple


class CompileError(ReproError):
    """Raised for any mini-C front-end or code-generation error."""

    def __init__(self, message: str, line: int = 0):
        super().__init__("line %d: %s" % (line, message) if line
                         else message)
        self.line = line


class Token(NamedTuple):
    kind: str
    value: str
    line: int


KEYWORDS = {"int", "void", "if", "else", "while", "for", "return",
            "break", "continue", "register", "struct", "do"}

_TOKEN_RE = re.compile(r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(\\.|[^'\\])')
  | (?P<string>"(\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>\+\+|--|\+=|-=|\*=|/=|%=|<<|>>|<=|>=|==|!=|&&|\|\||->|[-+*/%<>=!&|^~(){}\[\];,.?:])
  | (?P<ws>\s+)
  | (?P<bad>.)
""", re.VERBOSE | re.DOTALL)

_CHAR_ESCAPES = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-C *source*; raises CompileError on bad input."""
    tokens: List[Token] = []
    line = 1
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            line += text.count("\n")
            continue
        if kind == "bad":
            raise CompileError("unexpected character %r" % text, line)
        if kind == "ident" and text in KEYWORDS:
            tokens.append(Token(text, text, line))
        elif kind == "string":
            tokens.append(Token("str", _unescape(text[1:-1]), line))
        elif kind == "char":
            body = text[1:-1]
            if body.startswith("\\"):
                value = _CHAR_ESCAPES.get(body[1])
                if value is None:
                    raise CompileError("bad escape %r" % text, line)
            else:
                value = ord(body)
            tokens.append(Token("num", str(value), line))
        else:
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
    tokens.append(Token("eof", "", line))
    return tokens


def _unescape(body: str) -> str:
    """Process escape sequences in a string literal body."""
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            code = _CHAR_ESCAPES.get(body[i + 1])
            if code is None:
                raise CompileError("bad escape \\%s in string"
                                   % body[i + 1])
            out.append(chr(code))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)
