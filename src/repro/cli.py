"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE.c`` — compile, instrument, and run a mini-C program with
  optional data breakpoints (``--watch``, conditional ``--cond``,
  transition ``--trans``), printing every hit;
* ``asm FILE.c`` — show the generated (optionally instrumented)
  assembly;
* ``table1`` / ``table2`` / ``figure3`` / ``nop`` / ``baselines`` /
  ``space`` / ``breakeven`` / ``ablations`` — regenerate one of the
  paper's tables or figures (accept ``--scale``);
* ``serve`` — host the multi-session debug server (DAP-lite wire
  protocol over TCP);
* ``connect FILE.c`` — run a mini-C program on a remote debug server
  with data breakpoints, streaming monitor hits;
* ``record FILE.c`` — run under the time-travel recorder, printing the
  write-trace (optionally saving it for determinism checks, or
  archiving it into a persistent store with ``--store``);
* ``replay FILE.c`` — record a run, then travel backwards through it
  (reverse-continue walk, last-write queries, trace verification);
* ``analyze`` — cross-run analytics over a persistent trace store
  (``hot``, ``writes``, ``regress``, ``provenance``, ``stats``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "run", help="run a mini-C program under the debugger")
    parser.add_argument("file", help="mini-C source file")
    parser.add_argument("--lang", default="C", choices=["C", "F"],
                        help="write-type dialect (FORTRAN enables "
                             "BSS-VAR segment caching)")
    parser.add_argument("--strategy", default="BitmapInlineRegisters",
                        help="write-check strategy (Bitmap, BitmapInline,"
                             " BitmapInlineRegisters, Cache, CacheInline)")
    parser.add_argument("--optimize", default="full",
                        choices=["full", "sym", "ipa", "none"],
                        help="write-check elimination mode")
    parser.add_argument("--watch", action="append", default=[],
                        metavar="EXPR",
                        help="data breakpoint (repeatable): g, a[3], s.f")
    parser.add_argument("--cond", action="append", default=[], nargs=2,
                        metavar=("EXPR", "PRED"),
                        help="conditional data breakpoint (repeatable): "
                             "fires when PRED is true, e.g. "
                             "--cond g '$value > 100'")
    parser.add_argument("--trans", action="append", default=[], nargs=3,
                        metavar=("EXPR", "PRED", "EDGE"),
                        help="transition data breakpoint (repeatable): "
                             "fires when PRED crosses EDGE "
                             "(rise, fall, change), e.g. "
                             "--trans g '$value > 100' rise")
    parser.add_argument("--monitor-reads", action="store_true",
                        help="also monitor read instructions (§5)")
    parser.add_argument("--stats", action="store_true",
                        help="print cycle/instruction statistics")
    parser.add_argument("--no-fast-path", action="store_true",
                        help="force the per-instruction interpreter loop "
                             "(disable the basic-block fast path)")


def _add_debug_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "debug", help="interactive debugger session on a mini-C program")
    parser.add_argument("file")
    parser.add_argument("--lang", default="C", choices=["C", "F"])
    parser.add_argument("--strategy", default="BitmapInlineRegisters")
    parser.add_argument("--optimize", default="full",
                        choices=["full", "sym", "ipa", "none"])


def _add_asm_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "asm", help="show generated assembly for a mini-C program")
    parser.add_argument("file")
    parser.add_argument("--lang", default="C", choices=["C", "F"])
    parser.add_argument("--instrument", metavar="STRATEGY",
                        help="also insert write checks with STRATEGY")


def _add_serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="host the multi-session debug server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=4711)
    parser.add_argument("--max-sessions", type=int, default=16)
    parser.add_argument("--workers", type=int, default=8,
                        help="bounded pool of concurrent executions")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="evict sessions idle this long")
    parser.add_argument("--quota", type=int, default=None,
                        metavar="INSTRUCTIONS",
                        help="per-request execution quota")
    parser.add_argument("--hibernate-dir", default=None, metavar="DIR",
                        help="freeze idle sessions to DIR and resume "
                             "them on demand (survives restarts)")
    parser.add_argument("--liveness-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="drop connections silent this long "
                             "(clients heartbeat with ping)")
    parser.add_argument("--trace-store", default=None, metavar="DB",
                        help="archive session recordings into this "
                             "persistent trace store on hibernate or "
                             "disconnect")


def _add_connect_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "connect", help="run a mini-C program on a remote debug server")
    parser.add_argument("file", help="mini-C source file")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=4711)
    parser.add_argument("--lang", default="C", choices=["C", "F"])
    parser.add_argument("--strategy", default="BitmapInlineRegisters")
    parser.add_argument("--optimize", default="full",
                        choices=["full", "sym", "ipa", "none"])
    parser.add_argument("--watch", action="append", default=[],
                        metavar="EXPR",
                        help="data breakpoint (repeatable): g, a[3], s.f")
    parser.add_argument("--condition", action="append", default=[],
                        metavar="COND",
                        help="condition for the matching --watch "
                             "(legacy '== 42' or a predicate like "
                             "'$value > limit')")
    parser.add_argument("--when", action="append", default=[],
                        metavar="EDGE",
                        help="transition edge (rise, fall, change) for "
                             "the matching --watch; requires a "
                             "--condition for that watch")


def _add_record_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "record", help="run under the time-travel recorder")
    parser.add_argument("file", nargs="?", default=None,
                        help="mini-C source file (or use --workload)")
    parser.add_argument("--workload", default=None, metavar="NAME",
                        help="record a §6 workload from the registry "
                             "instead of a file")
    parser.add_argument("--scale", type=float, default=0.3,
                        help="workload scale (with --workload)")
    parser.add_argument("--seed", type=int, default=None,
                        help="run seed recorded in the trace header "
                             "(distinguishes repeat runs in the store)")
    parser.add_argument("--lang", default="C", choices=["C", "F"])
    parser.add_argument("--strategy", default="BitmapInlineRegisters")
    parser.add_argument("--optimize", default="full",
                        choices=["full", "sym", "ipa", "none"])
    parser.add_argument("--watch", action="append", default=[],
                        metavar="EXPR",
                        help="data breakpoint to record (repeatable)")
    parser.add_argument("--stride", type=int, default=None,
                        help="keyframe stride in instructions")
    parser.add_argument("-o", "--trace-out", metavar="FILE",
                        help="save the canonical write-trace bytes")
    parser.add_argument("--store", nargs="?", const="__default__",
                        default=None, metavar="DB",
                        help="archive the recording into this "
                             "persistent trace store (default "
                             "repro_store.sqlite)")
    parser.add_argument("--store-max-runs", type=int, default=None,
                        metavar="N",
                        help="retention: keep at most N runs per "
                             "workload in the store")
    parser.add_argument("--store-max-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="retention: bound the store's payload "
                             "bytes (LRU eviction)")
    parser.add_argument("--no-fast-path", action="store_true",
                        help="force the per-instruction interpreter loop "
                             "(traces are byte-identical either way)")


def _add_replay_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "replay", help="record a run, then travel backwards through it")
    parser.add_argument("file", help="mini-C source file")
    parser.add_argument("--lang", default="C", choices=["C", "F"])
    parser.add_argument("--strategy", default="BitmapInlineRegisters")
    parser.add_argument("--optimize", default="full",
                        choices=["full", "sym", "ipa", "none"])
    parser.add_argument("--watch", action="append", default=[],
                        metavar="EXPR",
                        help="data breakpoint to travel to (repeatable)")
    parser.add_argument("--stride", type=int, default=None,
                        help="keyframe stride in instructions")
    parser.add_argument("--back", type=int, default=None, metavar="N",
                        help="stop after N reverse-continues "
                             "(default: walk to the start)")
    parser.add_argument("--last-write", action="append", default=[],
                        metavar="EXPR",
                        help="report the last write to EXPR "
                             "(repeatable; may re-execute)")
    parser.add_argument("--verify", metavar="FILE",
                        help="check the write-trace is byte-identical "
                             "to a saved one (determinism proof)")


def _add_audit_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "audit", help="trace-backed soundness audit of check "
                      "elimination (§4.2 contract)")
    parser.add_argument("file", nargs="?", default=None,
                        help="mini-C source file (or use --workload)")
    parser.add_argument("--workload", metavar="NAME",
                        help="audit a §6 workload instead of a file")
    parser.add_argument("--scale", type=float, default=0.3,
                        help="workload scale (with --workload)")
    parser.add_argument("--lang", default="C", choices=["C", "F"])
    parser.add_argument("--strategy", default="BitmapInlineRegisters")
    parser.add_argument("--mode", default="ipa",
                        choices=["full", "sym", "ipa", "none"],
                        help="optimization mode to audit")
    parser.add_argument("--monitor", action="append", default=[],
                        metavar="SYMBOL",
                        help="global to monitor during the audit "
                             "(repeatable; default: the most-written "
                             "globals)")


_EVAL_COMMANDS = {
    "table1": ("repro.eval.table1", 1.0),
    "table2": ("repro.eval.table2", 1.0),
    "figure3": ("repro.eval.figure3", 0.5),
    "nop": ("repro.eval.nop_experiment", 0.5),
    "baselines": ("repro.eval.baselines", 0.5),
    "space": ("repro.eval.space", 1.0),
    "ablations": ("repro.eval.ablations", 0.5),
    "watchkinds": ("repro.eval.watchkinds", 0.5),
    "elim": ("repro.eval.analyze", 0.3),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Practical Data Breakpoints (PLDI 1993) — "
                    "reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command")
    _add_run_parser(subparsers)
    _add_debug_parser(subparsers)
    _add_asm_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_connect_parser(subparsers)
    _add_record_parser(subparsers)
    _add_replay_parser(subparsers)
    _add_audit_parser(subparsers)
    from repro.store.analyze import add_analyze_parser
    add_analyze_parser(subparsers)
    for name, (_module, default_scale) in _EVAL_COMMANDS.items():
        sub = subparsers.add_parser(
            name, help="regenerate the paper's %s" % name)
        sub.add_argument("--scale", type=float, default=default_scale)
    subparsers.add_parser("breakeven",
                          help="regenerate the §3.3.3 break-even table")
    return parser


def _command_run(args) -> int:
    from repro.debugger import Debugger
    from repro.debugger.debugger import DebuggerError
    from repro.errors import PredicateCompileError, PredicateError

    with open(args.file) as handle:
        source = handle.read()
    optimize = None if args.optimize == "none" else args.optimize
    debugger = Debugger.for_source(source, lang=args.lang,
                                   strategy=args.strategy,
                                   optimize=optimize,
                                   monitor_reads=args.monitor_reads,
                                   fast_path=(False if args.no_fast_path
                                              else None))
    requested = ([(expr, None, None) for expr in args.watch]
                 + [(expr, pred, None) for expr, pred in args.cond]
                 + [(expr, pred, edge) for expr, pred, edge in args.trans])
    watchpoints = []
    for expr, pred, edge in requested:
        try:
            watchpoints.append(
                (expr, debugger.watch(expr, action="log", expr=pred,
                                      when=edge)))
        except (DebuggerError, PredicateCompileError,
                PredicateError) as exc:
            print("error: cannot watch %s: %s" % (expr, exc),
                  file=sys.stderr)
            return 1
    reason = debugger.run()
    sys.stdout.write("".join(
        item if item.isprintable() or item.isspace() else "?"
        for item in debugger.output))
    if debugger.output and not "".join(debugger.output).endswith("\n"):
        sys.stdout.write("\n")
    print("-- %s" % reason)
    for expr, watchpoint in watchpoints:
        label = expr
        if watchpoint.predicate is not None:
            label += " if %s" % watchpoint.predicate.source
        if watchpoint.when is not None:
            label += " (on %s)" % watchpoint.when
        detail = ""
        if watchpoint.hits:
            detail += ", last value %d" % watchpoint.last_value()
        if watchpoint.kind != "plain":
            detail += ", %d eval(s), %d suppressed" % (
                watchpoint.stats.evals, watchpoint.stats.suppressed)
        if watchpoint.disarm_error is not None:
            detail += ", DISARMED: %s" % watchpoint.disarm_error
        kind = ("watch" if watchpoint.kind == "plain"
                else watchpoint.kind)
        print("-- %s %-16s %d hit(s)%s"
              % (kind, label, watchpoint.hit_count(), detail))
        for addr, size, value in watchpoint.hits:
            print("     wrote 0x%08x (%d bytes): %d" % (addr, size,
                                                        value))
    if args.stats:
        cpu = debugger.cpu
        print("-- %d instructions, %d cycles, %d stores"
              % (cpu.instructions, cpu.cycles, cpu.stores))
        for tag in sorted(cpu.tag_counts):
            print("     %-12s %9d insns %10d cycles"
                  % (tag, cpu.tag_counts[tag], cpu.tag_cycles[tag]))
    return 0


def _command_asm(args) -> int:
    from repro.minic.codegen import compile_source

    with open(args.file) as handle:
        source = handle.read()
    asm = compile_source(source, lang=args.lang)
    if args.instrument:
        from repro.instrument.rewriter import instrument_source
        inst = instrument_source(asm, args.instrument)
        from repro.asm.ast import AsmInsn, Label
        lines = []
        for stmt in inst.statements:
            if isinstance(stmt, Label):
                lines.append("%s:" % stmt.name)
            elif isinstance(stmt, AsmInsn):
                note = "   ! %s" % stmt.tag if stmt.tag != "orig" else ""
                lines.append("\t%r%s" % (stmt, note))
            else:
                lines.append("\t%r" % (stmt,))
        print("\n".join(lines))
    else:
        print(asm)
    return 0


def _record_run(args):
    """Compile, watch, record and run *args.file* to completion."""
    from repro.debugger import Debugger

    workload = getattr(args, "workload", None)
    if workload is not None:
        from repro.workloads import WORKLOADS, workload_source
        source = workload_source(workload, args.scale)
        lang = WORKLOADS[workload].lang
    elif args.file is not None:
        with open(args.file) as handle:
            source = handle.read()
        lang = args.lang
    else:
        raise SystemExit("error: record needs a FILE or --workload NAME")
    optimize = None if args.optimize == "none" else args.optimize
    fast_path = False if getattr(args, "no_fast_path", False) else None
    debugger = Debugger.for_source(source, lang=lang,
                                   strategy=args.strategy,
                                   optimize=optimize,
                                   fast_path=fast_path)
    for expr in args.watch:
        debugger.watch(expr, action="log")
    recorder = debugger.record(stride=args.stride)
    reason = debugger.run()
    while reason not in ("exited",):
        reason = debugger.run()
    output = "".join(debugger.output)
    if output:
        sys.stdout.write(output)
        if not output.endswith("\n"):
            sys.stdout.write("\n")
    return debugger, recorder


def _print_trace(debugger, recorder) -> None:
    stats = recorder.stats()
    print("-- recorded %d instructions: %d write(s), %d keyframe(s) "
          "(stride %d), trace digest 0x%08x"
          % (stats["end_index"] - stats["start_index"],
             stats["trace_records"], stats["keyframes"],
             stats["stride"], recorder.trace.digest()))
    if recorder.trace.dropped:
        print("-- oldest %d record(s) evicted from the trace ring"
              % recorder.trace.dropped)
    def symbol_for(addr: int, size: int):
        for watchpoint in debugger.watchpoints:
            region = watchpoint.region
            if addr < region.end and region.start < addr + size:
                return watchpoint.name
        return None

    for record in recorder.trace:
        symbol = symbol_for(record.addr, record.size)
        print("   [%6d] pc=0x%08x %-5s 0x%08x (%d bytes)  %d -> %d%s"
              % (record.index, record.pc,
                 "read" if record.is_read else "wrote",
                 record.addr, record.size, record.old, record.new,
                 "  [%s]" % symbol if symbol else ""))


def _command_record(args) -> int:
    debugger, recorder = _record_run(args)
    _print_trace(debugger, recorder)
    if args.trace_out:
        data = recorder.trace.to_bytes()
        with open(args.trace_out, "wb") as handle:
            handle.write(data)
        print("-- trace saved to %s (%d bytes)"
              % (args.trace_out, len(data)))
    if args.store is not None:
        from repro.store import (DEFAULT_STORE_PATH, RetentionPolicy,
                                 TraceStore)
        path = (DEFAULT_STORE_PATH if args.store == "__default__"
                else args.store)
        retention = None
        if (args.store_max_runs is not None
                or args.store_max_bytes is not None):
            retention = RetentionPolicy(
                max_runs_per_workload=args.store_max_runs,
                max_bytes=args.store_max_bytes)
        workload = args.workload
        if workload is None:
            import os
            workload = os.path.basename(args.file)
        with TraceStore(path, retention=retention) as store:
            result = store.ingest_recorder(
                recorder, workload=workload,
                scale=args.scale if args.workload else None,
                seed=args.seed)
        print("-- archived to %s as run %d (%s, %d new / %d shared "
              "keyframe(s))"
              % (path, result.run_id,
                 "duplicate" if result.duplicate else "new",
                 result.keyframes_new, result.keyframes_shared))
    return 0


def _command_replay(args) -> int:
    from repro.errors import ReplayError

    debugger, recorder = _record_run(args)
    _print_trace(debugger, recorder)
    if args.verify:
        with open(args.verify, "rb") as handle:
            saved = handle.read()
        if saved == recorder.trace.to_bytes():
            print("-- trace verified: byte-identical to %s"
                  % args.verify)
        else:
            print("-- trace DIVERGED from %s" % args.verify)
            return 1
    remaining = args.back if args.back is not None else -1
    while remaining != 0:
        reason = debugger.reverse_continue()
        if reason != "watch":
            print("-- at the start of the recording (instruction %d)"
                  % debugger.cpu.instructions)
            break
        watchpoint = debugger.stopped_watch
        print("-- reverse-continue: %s = %s (instruction %d)"
              % (watchpoint.name, watchpoint.last_value(),
                 debugger.cpu.instructions))
        remaining -= 1
    for expr in args.last_write:
        try:
            answer = debugger.last_write(expr)
        except ReplayError as exc:
            print("-- last-write %s: error: %s" % (expr, exc))
            continue
        if answer is None:
            print("-- last-write %s: never written while recorded"
                  % expr)
        else:
            print("-- last-write %s: pc=0x%08x instruction %d: "
                  "%d -> %d  [%s]"
                  % (expr, answer.pc, answer.index, answer.old,
                     answer.new, answer.source))
    return 0


def _command_audit(args) -> int:
    from repro.analysis.audit import audit_source, audit_workload
    from repro.errors import AuditError, UnsoundEliminationError

    mode = None if args.mode == "none" else args.mode
    monitors = [(name, None) for name in args.monitor] or None
    try:
        if args.workload:
            report = audit_workload(args.workload, mode=mode,
                                    scale=args.scale, monitors=monitors,
                                    strategy=args.strategy)
        elif args.file:
            with open(args.file) as handle:
                source = handle.read()
            report = audit_source(source, lang=args.lang, mode=mode,
                                  monitors=monitors,
                                  strategy=args.strategy)
        else:
            print("error: audit needs a FILE or --workload NAME",
                  file=sys.stderr)
            return 2
    except UnsoundEliminationError as exc:
        print("UNSOUND: %s" % exc, file=sys.stderr)
        print("  site:       %s" % exc.site, file=sys.stderr)
        print("  pass:       %s" % exc.elim_pass, file=sys.stderr)
        print("  provenance: %s" % exc.provenance, file=sys.stderr)
        return 1
    except AuditError as exc:
        print("audit failed: %s" % exc, file=sys.stderr)
        return 1
    print(report.render())
    return 0


def _command_serve(args) -> int:
    from repro.server import DebugServer, ServerConfig
    from repro.server.handlers import DEFAULT_QUOTA

    config = ServerConfig(max_sessions=args.max_sessions,
                          idle_timeout=args.idle_timeout,
                          workers=args.workers,
                          quota_instructions=args.quota
                          if args.quota is not None else DEFAULT_QUOTA,
                          hibernate_dir=args.hibernate_dir,
                          liveness_timeout=args.liveness_timeout,
                          trace_store=args.trace_store)
    server = DebugServer(host=args.host, port=args.port, config=config)
    print("repro debug server listening on %s:%d "
          "(max %d sessions, %d workers, quota %d insns/request)"
          % (server.address[0], server.address[1], config.max_sessions,
             config.workers, config.quota_instructions), flush=True)
    if config.hibernate_dir is not None:
        print("hibernation: %s (%d frozen session%s adopted)"
              % (config.hibernate_dir, len(server.adopted),
                 "" if len(server.adopted) == 1 else "s"), flush=True)
    if config.trace_store is not None:
        print("trace store: %s (recordings archived on hibernate or "
              "disconnect)" % config.trace_store, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...")
    finally:
        server.close()
    return 0


def _command_connect(args) -> int:
    from repro.server.client import DebugClient, RemoteError

    with open(args.file) as handle:
        source = handle.read()
    conditions = dict(zip(args.watch, args.condition))
    edges = dict(zip(args.watch, args.when))
    try:
        with DebugClient(host=args.host, port=args.port) as client:
            negotiated = client.initialize()
            print("-- connected, protocol v%d"
                  % negotiated["protocolVersion"])
            session_id = client.launch(source, lang=args.lang,
                                       strategy=args.strategy,
                                       optimize=args.optimize)
            specs = []
            for expr in args.watch:
                info = client.data_breakpoint_info(session_id, expr)
                if info.get("dataId") is None:
                    print("-- cannot watch %s: %s"
                          % (expr, info.get("description")))
                    continue
                spec = {"dataId": info["dataId"], "stop": False}
                if expr in conditions:
                    spec["condition"] = conditions[expr]
                if edges.get(expr):
                    spec["when"] = edges[expr]
                specs.append(spec)
            if specs:
                for result in client.set_data_breakpoints(session_id,
                                                          specs):
                    print("-- breakpoint %s verified=%s"
                          % (result.get("dataId"), result["verified"]))
            stop = client.cont(session_id)
            while not stop.get("exited") and stop["reason"] == "quota":
                stop = client.cont(session_id)
            for body in client.pop_events("output"):
                sys.stdout.write(body["output"])
                if not body["output"].endswith("\n"):
                    sys.stdout.write("\n")
            print("-- %s" % stop["reason"])
            for hit in client.pop_events("monitorHit"):
                print("     wrote 0x%08x (%d bytes): %s  [%s]"
                      % (hit["address"], hit["size"],
                         hit.get("value", "?"),
                         hit.get("symbol", "?")))
            client.disconnect(session_id)
    except (RemoteError, OSError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    from repro.errors import ReproError
    try:
        return _dispatch(args)
    except ReproError as exc:
        # every structured repro failure (bad --optimize mode, MRS
        # rollback, audit divergence, ...) exits non-zero with its
        # class name and context instead of a traceback
        print("error: %s: %s" % (type(exc).__name__, exc),
              file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    if args.command == "run":
        return _command_run(args)
    if args.command == "debug":
        from repro.debugger.repl import run_repl
        with open(args.file) as handle:
            source = handle.read()
        optimize = None if args.optimize == "none" else args.optimize
        run_repl(source, lang=args.lang, strategy=args.strategy,
                 optimize=optimize)
        return 0
    if args.command == "asm":
        return _command_asm(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "connect":
        return _command_connect(args)
    if args.command == "record":
        return _command_record(args)
    if args.command == "replay":
        return _command_replay(args)
    if args.command == "audit":
        return _command_audit(args)
    if args.command == "analyze":
        from repro.store.analyze import run_analyze
        return run_analyze(args)
    if args.command == "breakeven":
        from repro.eval.breakeven import main as breakeven_main
        breakeven_main()
        return 0
    module_name, _default = _EVAL_COMMANDS[args.command]
    import importlib
    module = importlib.import_module(module_name)
    module.main(args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
