"""Call-graph construction over the translated IR.

The IR models a ``call`` instruction as an :class:`~repro.ir.tac.IrOp`
of kind ``"call"`` whose callee is *not* carried on the op — it lives
in the original assembly statement, so the graph resolves each call op
back through ``op.stmt_index``.  Runtime services (``sbrk``, ``print``,
``putc``, ``exit``) are software traps (``ta N``), not calls; they show
up as ``"trap"`` ops and are classified by trap number.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.asm.ast import AsmInsn, Imm, Sym
from repro.ir.tac import IrOp

if TYPE_CHECKING:  # annotation-only; avoids an import cycle (ir.build
    # pulls in the whole optimizer package at import time)
    from repro.ir.build import FuncIr  # noqa: F401

#: trap numbers, mirroring the mini-C code generator's builtins
TRAP_EXIT, TRAP_PRINT_INT, TRAP_PRINT_CHAR, TRAP_SBRK = 0, 1, 2, 3


def callee_name(op: IrOp, statements) -> Optional[str]:
    """The textual call target of a ``call`` op, or None if indirect."""
    stmt = statements[op.stmt_index]
    if isinstance(stmt, AsmInsn) and stmt.ops:
        target = stmt.ops[0]
        if isinstance(target, Sym):
            return target.name
    return None


def trap_code(op: IrOp, statements) -> Optional[int]:
    """The trap number of a ``trap`` op, or None if unrecognisable."""
    stmt = statements[op.stmt_index]
    if isinstance(stmt, AsmInsn) and stmt.ops and \
            isinstance(stmt.ops[0], Imm):
        return stmt.ops[0].value
    return None


class CallSite:
    """One ``call`` op, resolved to its caller and (maybe) callee."""

    __slots__ = ("caller", "callee", "op", "stmt_index")

    def __init__(self, caller: str, callee: Optional[str], op: IrOp):
        self.caller = caller
        self.callee = callee
        self.op = op
        self.stmt_index = op.stmt_index

    def __repr__(self) -> str:
        return "<call %s -> %s @%d>" % (self.caller,
                                        self.callee or "?",
                                        self.stmt_index)


class CallGraph:
    """Functions, call sites, and caller/callee adjacency."""

    def __init__(self):
        self.funcs: Dict[str, FuncIr] = {}
        self.sites: List[CallSite] = []
        #: callee name -> call sites targeting it
        self.callers: Dict[str, List[CallSite]] = {}
        #: caller name -> set of callee names (None for indirect)
        self.callees: Dict[str, set] = {}

    def is_defined(self, name: Optional[str]) -> bool:
        return name is not None and name in self.funcs


def build_callgraph(funcs: List[FuncIr], statements) -> CallGraph:
    graph = CallGraph()
    for func in funcs:
        graph.funcs[func.name] = func
        graph.callees.setdefault(func.name, set())
    for func in funcs:
        for block in func.reachable_blocks():
            for op in block.ops:
                if op.kind != "call":
                    continue
                callee = callee_name(op, statements)
                site = CallSite(func.name, callee, op)
                graph.sites.append(site)
                graph.callees[func.name].add(callee)
                if callee is not None:
                    graph.callers.setdefault(callee, []).append(site)
    return graph
