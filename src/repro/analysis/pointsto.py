"""Flow-insensitive Andersen-style points-to analysis over SSA TAC.

Abstract objects ("atoms") are coarse on purpose — one per data label,
one per stack frame, a single sbrk arena, and an unknown top element:

* ``("label", L)`` — the static data storage behind label ``L``
* ``("frame", f)`` — function ``f``'s stack frame
* ``("heap",)``    — everything returned by the ``sbrk`` trap
* ``("unknown",)`` — top: may be any address

Every SSA variable, callee parameter, function return and per-object
memory summary cell holds a *set* of atoms; scalars hold the empty set.
The solver is a chaotic iteration to a global fixpoint: the lattice is
finite (atoms are bounded by labels + functions + 2) and every transfer
joins monotonically, so it terminates.  Interprocedural flow uses the
call graph: argument atoms join into callee parameter cells
(``%i0``–``%i5`` read as undefined SSA vars inside the callee),
``%o0`` after a call reads the callee's return cell, and promoted
global pseudo-variables communicate through their memory cell at every
call boundary (calls redefine promoted globals in the IR, so the SSA
def-use chains already route cross-call reads through here).

Stores through an unresolvable pointer poison every object cell — the
classic Andersen treatment of ``*top = v``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.callgraph import (TRAP_SBRK, CallGraph, callee_name,
                                      trap_code)
from repro.ir.tac import Const, IrOp, SsaVar, SymAddr
from repro.isa.registers import FP, SP

if TYPE_CHECKING:  # annotation-only; avoids an import cycle (ir.build
    # pulls in the whole optimizer package at import time)
    from repro.ir.build import FuncIr  # noqa: F401
    from repro.ir.ssa import SsaInfo  # noqa: F401

HEAP = ("heap",)
UNKNOWN = ("unknown",)

_EMPTY: frozenset = frozenset()
_TOP = frozenset([UNKNOWN])

#: %i0..%i5 — callee-side incoming argument registers
_IN_REG_BASE = 24
#: %o0 — caller-side return value register
_O0 = ("r", 8)
_RET_REG = ("r", _IN_REG_BASE)

#: alu ops through which a pointer keeps its object identity
_PTR_PRESERVING = ("add", "sub", "or")


def is_label(atom) -> bool:
    return atom[0] == "label"


def is_frame(atom) -> bool:
    return atom[0] == "frame"


def _label(name: str):
    return ("label", name)


def _frame(func: str):
    return ("frame", func)


def _is_pseudo(name) -> bool:
    return isinstance(name, tuple) and name and name[0] == "v"


class PointsTo:
    """See the module docstring.  Usage::

        pt = PointsTo(statements, funcs, graph, ssa_infos)
        pt.run()
        atoms = pt.store_atoms(st_op)   # frozenset of atoms
    """

    def __init__(self, statements, funcs: List[FuncIr],
                 graph: CallGraph, ssa_infos: List[SsaInfo]):
        self.statements = statements
        self.funcs = funcs
        self.graph = graph
        self.ssa_by_func: Dict[str, SsaInfo] = {
            info.func.name: info for info in ssa_infos}
        #: SSA variable (by identity) -> atom set
        self.var: Dict[SsaVar, frozenset] = {}
        #: (callee, arg index) -> join of argument atoms over call sites
        self.par: Dict[Tuple[str, int], frozenset] = {}
        #: function name -> join of returned atoms
        self.ret: Dict[str, frozenset] = {}
        #: object / pseudo-variable summary cell -> contained atoms
        self.mem: Dict[Tuple, frozenset] = {}
        #: atoms stored through unresolvable pointers (joins every read)
        self.anywhere: frozenset = _EMPTY
        self._changed = False

    # -- lattice helpers ---------------------------------------------------

    def _join_var(self, var: SsaVar, atoms: frozenset) -> None:
        old = self.var.get(var, _EMPTY)
        new = old | atoms
        if new != old:
            self.var[var] = new
            self._changed = True

    def _join_map(self, table: Dict, key, atoms: frozenset) -> None:
        old = table.get(key, _EMPTY)
        new = old | atoms
        if new != old:
            table[key] = new
            self._changed = True

    def _read_mem(self, key) -> frozenset:
        return self.mem.get(key, _EMPTY) | self.anywhere

    # -- value evaluation --------------------------------------------------

    def atoms_of(self, value, func: Optional[str] = None) -> frozenset:
        if isinstance(value, Const):
            return _EMPTY
        if isinstance(value, SymAddr):
            if value.name.startswith("\x00"):
                return _TOP
            return frozenset([_label(value.name)])
        if isinstance(value, SsaVar):
            if value.def_op is None:
                return self._undefined_atoms(value, func)
            return self.var.get(value, _EMPTY)
        if isinstance(value, tuple):
            # un-renamed variable name; only possible pre-SSA
            return _TOP
        return _TOP

    def _undefined_atoms(self, var: SsaVar,
                         func: Optional[str]) -> frozenset:
        name = var.name
        if _is_pseudo(name):
            return self._read_mem(("pseudo", name))
        if isinstance(name, tuple) and len(name) == 2 and \
                name[0] == "r" and \
                _IN_REG_BASE <= name[1] < _IN_REG_BASE + 6 and \
                func is not None:
            return self.par.get((func, name[1] - _IN_REG_BASE), _EMPTY)
        # caller garbage in any other register (incl. %fp/%sp before
        # a save): could be anything
        return _TOP

    def _addr_atoms_raw(self, op: IrOp,
                        func: Optional[str]) -> frozenset:
        """Atoms of a ld/st address, empty when nothing is known *yet*.

        An empty result during iteration usually means the feeding
        cells are still at bottom; transfers must treat it as "no
        information", not "unknown address".
        """
        base, index, _disp = op.mem
        base_atoms = self.atoms_of(base, func)
        index_atoms = self.atoms_of(index, func) \
            if index is not None else _EMPTY
        if UNKNOWN in base_atoms or UNKNOWN in index_atoms:
            return _TOP
        if base_atoms and index_atoms:
            return _TOP  # pointer + pointer arithmetic
        return base_atoms | index_atoms

    def _addr_atoms(self, op: IrOp, func: Optional[str]) -> frozenset:
        """Post-fixpoint query: an address with no atoms is unknown
        (an integer treated as a pointer)."""
        atoms = self._addr_atoms_raw(op, func)
        return atoms if atoms else _TOP

    # -- transfer ----------------------------------------------------------

    def _transfer(self, func: FuncIr, info: SsaInfo, op: IrOp) -> None:
        kind = op.kind
        name = func.name
        if kind == "phi":
            joined = _EMPTY
            for use in op.uses:
                joined = joined | self.atoms_of(use, name)
            self._join_var(op.defs[0], joined)
        elif kind == "move":
            atoms = _TOP if op.op == "sethi_hi" \
                else self.atoms_of(op.uses[0], name)
            dest = op.defs[0]
            if isinstance(dest, SsaVar):
                self._join_var(dest, atoms)
                if _is_pseudo(dest.name):
                    self._join_map(self.mem, ("pseudo", dest.name),
                                   atoms)
        elif kind == "assert":
            for dest, use in zip(op.defs, op.uses):
                if isinstance(dest, SsaVar):
                    self._join_var(dest, self.atoms_of(use, name))
        elif kind == "alu":
            parts = [self.atoms_of(use, name) for use in op.uses]
            pointers = [p for p in parts if p]
            if not pointers:
                atoms = _EMPTY
            elif len(pointers) == 1 and op.op in _PTR_PRESERVING and \
                    UNKNOWN not in pointers[0]:
                atoms = pointers[0]
            else:
                atoms = _TOP
            for dest in op.defs:
                if isinstance(dest, SsaVar):
                    self._join_var(dest, atoms)
        elif kind == "ld":
            targets = self._addr_atoms_raw(op, name)
            if UNKNOWN in targets:
                atoms = _TOP
            else:
                atoms = _EMPTY
                for atom in targets:
                    atoms = atoms | self._read_mem(atom)
            for dest in op.defs:
                if isinstance(dest, SsaVar):
                    self._join_var(dest, atoms)
        elif kind == "st":
            targets = self._addr_atoms_raw(op, name)
            value = self.atoms_of(op.uses[-1], name)
            if UNKNOWN in targets:
                if value and not (value <= self.anywhere):
                    self.anywhere = self.anywhere | value
                    self._changed = True
            else:
                for atom in targets:
                    self._join_map(self.mem, atom, value)
        elif kind == "call":
            callee = callee_name(op, self.statements)
            for position in range(min(6, len(op.uses))):
                self._join_map(self.par, (callee, position),
                               self.atoms_of(op.uses[position], name))
            known = self.graph.is_defined(callee)
            for dest in op.defs:
                if not isinstance(dest, SsaVar):
                    continue
                if _is_pseudo(dest.name):
                    self._join_var(dest,
                                   self._read_mem(("pseudo",
                                                   dest.name)))
                elif dest.name == _O0:
                    self._join_var(dest,
                                   self.ret.get(callee, _EMPTY)
                                   if known else _TOP)
                elif dest.name == ("cc",):
                    pass
                else:
                    self._join_var(dest, _TOP)
        elif kind == "trap":
            code = trap_code(op, self.statements)
            atoms = frozenset([HEAP]) if code == TRAP_SBRK else _EMPTY
            for dest in op.defs:
                if isinstance(dest, SsaVar):
                    self._join_var(dest, atoms)
        elif kind == "save":
            for dest in op.defs:
                if isinstance(dest, SsaVar) and \
                        dest.name in (("r", SP), ("r", FP)):
                    self._join_var(dest, frozenset([_frame(name)]))
        elif kind == "restore":
            for dest in op.defs:
                if isinstance(dest, SsaVar):
                    self._join_var(dest, _TOP)
        elif kind == "ret":
            ret_var = info.exit_version.get((op.block.bid, _RET_REG)) \
                if op.block is not None else None
            if ret_var is not None:
                self._join_map(self.ret, name,
                               self.atoms_of(ret_var, name))
        else:
            # branch/jump/entry/...: no pointer effect
            for dest in op.defs:
                if isinstance(dest, SsaVar):
                    self._join_var(dest, _TOP)

    # -- driver ------------------------------------------------------------

    def run(self, max_iterations: int = 64) -> None:
        for _ in range(max_iterations):
            self._changed = False
            for func in self.funcs:
                info = self.ssa_by_func.get(func.name)
                if info is None:
                    continue
                for block in info.order:
                    for op in block.phis:
                        self._transfer(func, info, op)
                    for op in block.ops:
                        self._transfer(func, info, op)
            if not self._changed:
                return
        # did not converge (should be impossible: finite lattice,
        # monotone joins) — poison every cell rather than under-report
        self.anywhere = _TOP
        for key in list(self.mem):
            self.mem[key] = _TOP

    # -- queries -----------------------------------------------------------

    def store_atoms(self, op: IrOp) -> frozenset:
        """Atom set a store op's address may point into (post-run)."""
        return self._addr_atoms(op, self._owner_of(op))

    def _owner_of(self, op: IrOp) -> Optional[str]:
        for func in self.funcs:
            if func.start_index <= op.stmt_index < func.end_index:
                return func.name
        return None
