"""Trace-backed soundness auditor for check elimination (`repro audit`).

The §4 optimizer's contract is subtle: an eliminated check is only
sound if the §4.2 pre-monitor protocol re-inserts it for every symbol
whose storage the store could hit.  This module *checks the contract
end-to-end* instead of trusting it:

1. run the program **uninstrumented** with a full write trace — the
   ground truth of every ``(site, addr, width)`` store;
2. build the requested plan, instrument, arm watchpoints through the
   real ``pre_monitor``/``create_region`` protocol, and record the run
   with the replay :class:`~repro.replay.recorder.Recorder`, whose
   canonical WriteTrace captures every monitor notification;
3. compare: every ground-truth write that lands in a monitored region
   must appear, in order, in the recording.  A missing notification is
   mapped back to its write site and raised as a structured
   :class:`~repro.errors.UnsoundEliminationError` naming the site, the
   eliminating pass and the provenance chain it recorded; any other
   divergence (extra or reordered hits, output/exit mismatch) raises
   :class:`~repro.errors.AuditError`.

Combined with the ``analysis.unsound`` fault-injection point in the
ipa pass, this turns "the optimizer silently corrupted monitoring"
into a tier-1-testable artifact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.asm.parser import parse
from repro.core.regions import MonitoredRegion, RegionSet
from repro.errors import AuditError, UnsoundEliminationError
from repro.faults import FaultPlan
from repro.instrument.writes import enumerate_write_sites
from repro.minic import compile_source
from repro.optimizer.pipeline import build_plan
from repro.session import DebugSession, run_uninstrumented

#: plenty for the scaled-down §6 workloads the audit runs
_MAX_TRACE = 1_000_000


class AuditReport:
    """Result of one successful audit."""

    def __init__(self, mode: Optional[str], monitors: List[Tuple],
                 writes_total: int, hits_verified: int,
                 sites_eliminated: int, summary: Dict[str, int],
                 pass_stats: Dict[str, Dict[str, int]]):
        self.mode = mode
        self.monitors = monitors
        self.writes_total = writes_total
        self.hits_verified = hits_verified
        self.sites_eliminated = sites_eliminated
        self.summary = summary
        self.pass_stats = pass_stats
        self.ok = True

    def render(self) -> str:
        lines = ["audit OK (mode=%s)" % (self.mode or "none")]
        lines.append("  monitors:        %s"
                     % ", ".join("%s%s" % (name,
                                           " (%s)" % func if func
                                           else "")
                                 for name, func in self.monitors))
        lines.append("  writes traced:   %d" % self.writes_total)
        lines.append("  hits verified:   %d" % self.hits_verified)
        lines.append("  checks removed:  %d  %s"
                     % (self.sites_eliminated,
                        {k: v for k, v in self.summary.items() if v}))
        for pass_name, stats in self.pass_stats.items():
            lines.append("  pass %-8s    %s" % (pass_name, stats))
        return "\n".join(lines)


def _ground_truth_hits(write_trace, regions: Sequence[Tuple[int, int]]):
    """Ordered ``(site, addr, width)`` ground-truth monitor hits."""
    region_set = RegionSet()
    for start, size in regions:
        region_set.add(MonitoredRegion(start, size))
    return [(site, addr, width) for site, addr, width in write_trace
            if region_set.hit(addr, width)]


def pick_monitors(symtab, write_trace, count: int = 2) -> List[Tuple]:
    """Choose audit monitors automatically: the global symbols with the
    most ground-truth writes (they exercise the elimination machinery
    hardest), falling back to any global."""
    totals = []
    for entry in symtab.globals():
        if entry.address is None:
            continue
        writes = sum(1 for _site, addr, width in write_trace
                     if entry.covers_address(addr))
        totals.append((writes, entry.name))
    totals.sort(key=lambda pair: (-pair[0], pair[1]))
    chosen = [(name, None) for writes, name in totals[:count] if writes]
    if not chosen and totals:
        chosen = [(totals[0][1], None)]
    return chosen


def audit_asm(asm: str, mode: Optional[str] = "ipa",
              monitors: Optional[List[Tuple]] = None,
              strategy: str = "BitmapInlineRegisters",
              faults: Optional[FaultPlan] = None,
              max_instructions: int = 400_000_000) -> AuditReport:
    """Audit one assembly program; see the module docstring.

    ``monitors`` is a list of ``(symbol, func_or_None)`` pairs; when
    omitted, :func:`pick_monitors` selects the most-written globals.
    ``faults`` reaches the plan build (the ``analysis.unsound`` point).
    """
    from repro.debugger.debugger import Debugger

    # stamp site ids on the baseline statements so the ground-truth
    # write trace names the same write sites the plan eliminated
    baseline_stmts = parse(asm)
    enumerate_write_sites(baseline_stmts)
    exit_base, base = run_uninstrumented(
        baseline_stmts, record_writes=True,
        max_instructions=max_instructions)

    plan = None
    if mode:
        _stmts, plan = build_plan(asm, mode=mode, faults=faults)
    session = DebugSession.from_asm(asm, strategy=strategy, plan=plan)
    debugger = Debugger(session)

    if monitors is None:
        monitors = pick_monitors(debugger.symtab, base.cpu.write_trace)
    if not monitors:
        raise AuditError("nothing to audit: no monitorable globals",
                         reason="no_monitors")
    for name, func in monitors:
        debugger.watch(name, func=func, action="log")

    regions = sorted({(ref[0].start, ref[0].size)
                      for ref in debugger._region_refs.values()})
    expected = _ground_truth_hits(base.cpu.write_trace, regions)

    recorder = debugger.record(max_trace=_MAX_TRACE)
    reason = debugger.run(max_instructions=max_instructions)
    if reason != "exited":
        raise AuditError("instrumented run did not exit",
                         reason="no_exit", stop_reason=reason)
    if recorder.trace.dropped:
        raise AuditError("monitor trace overflowed; raise max_trace",
                         reason="trace_dropped",
                         dropped=recorder.trace.dropped)
    if session.cpu.exit_code != exit_base:
        raise AuditError("exit codes diverged", reason="exit_mismatch",
                         expected=exit_base,
                         observed=session.cpu.exit_code)
    if session.output != base.output:
        raise AuditError("program output diverged",
                         reason="output_mismatch")

    actual = [(record.addr, record.size) for record in recorder.trace
              if not record.is_read]

    limit = max(len(expected), len(actual))
    for index in range(limit):
        want = expected[index] if index < len(expected) else None
        got = actual[index] if index < len(actual) else None
        if want is not None and (got is None or
                                 got != (want[1], want[2])):
            site, addr, width = want
            seen_later = got is not None and \
                (want[1], want[2]) in actual[index:]
            if not seen_later:
                raise UnsoundEliminationError(
                    "eliminated check swallowed a monitor hit",
                    site=site,
                    elim_pass=(plan.eliminate.get(site)
                               if plan else None),
                    provenance=(plan.why_eliminated.get(site)
                                if plan else None),
                    addr=addr, width=width, index=index,
                    mode=mode or "none")
            raise AuditError("monitor hits reordered",
                             reason="hit_mismatch", index=index,
                             expected_addr=want[1], observed_addr=got[0])
        if want is None:
            raise AuditError("unexpected extra monitor hit",
                             reason="extra_hit", index=index,
                             observed_addr=got[0],
                             observed_size=got[1])

    return AuditReport(
        mode=mode, monitors=list(monitors),
        writes_total=len(base.cpu.write_trace),
        hits_verified=len(expected),
        sites_eliminated=len(plan.eliminate) if plan else 0,
        summary=plan.summary() if plan else {},
        pass_stats={name: stats.as_dict()
                    for name, stats in plan.pass_stats.items()}
        if plan else {})


def audit_source(source: str, lang: str = "C",
                 mode: Optional[str] = "ipa", **kwargs) -> AuditReport:
    """Compile mini-C *source* and audit it."""
    return audit_asm(compile_source(source, lang=lang), mode=mode,
                     **kwargs)


def audit_workload(name: str, mode: Optional[str] = "ipa",
                   scale: float = 0.3, **kwargs) -> AuditReport:
    """Audit one §6 workload at *scale* under *mode*."""
    from repro.workloads import WORKLOADS, workload_source

    if name not in WORKLOADS:
        raise AuditError("unknown workload %r" % name,
                         reason="unknown_workload",
                         valid=sorted(WORKLOADS))
    spec = WORKLOADS[name]
    asm = compile_source(workload_source(name, scale), lang=spec.lang)
    return audit_asm(asm, mode=mode, **kwargs)
