"""Interprocedural value-range analysis with an affine extension.

Abstract values form a small lattice:

* ``BOT``                      — unvisited (identity for joins)
* ``("int", lo, hi)``          — an integer in ``[lo, hi]``; ``None``
                                 bounds mean ±infinity
* ``("sym", L, lo, hi)``       — the address of data label ``L`` plus a
                                 byte offset in ``[lo, hi]`` (the affine
                                 extension: "label + interval")
* ``TOP`` (``None``)           — unknown

The solver mirrors :class:`repro.analysis.pointsto.PointsTo`: chaotic
iteration over every function's SSA ops with interprocedural parameter,
return and promoted-global cells.  Because the interval lattice has
infinite ascending chains, joins widen a bound to infinity once a cell
has grown a few times — the classic interval widening, which is what
turns ``hp = 0; hp = hp + 2`` loops into ``[0, +inf)`` instead of
iterating forever.

Arithmetic is evaluated mathematically (no 32-bit wrap); see the
package docstring for the memory/overflow model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.callgraph import CallGraph, callee_name
from repro.ir.tac import Const, IrOp, SsaVar, SymAddr

if TYPE_CHECKING:  # annotation-only; avoids an import cycle (ir.build
    # pulls in the whole optimizer package at import time)
    from repro.ir.build import FuncIr  # noqa: F401
    from repro.ir.ssa import SsaInfo  # noqa: F401

BOT = ("bot",)
TOP = None

#: joins before a growing bound is widened to infinity
_WIDEN_AFTER = 3


def _as_signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def interval(lo: Optional[int], hi: Optional[int]):
    return ("int", lo, hi)


def _add_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


def _lo_min(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return min(a, b)


def _hi_max(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return max(a, b)


def join(a, b, widen: bool = False):
    """Least upper bound; with ``widen``, growing bounds go to ±inf."""
    if a == BOT:
        return b
    if b == BOT:
        return a
    if a is TOP or b is TOP:
        return TOP
    if a[0] != b[0] or (a[0] == "sym" and a[1] != b[1]):
        return TOP
    lo = _lo_min(a[-2], b[-2])
    hi = _hi_max(a[-1], b[-1])
    if widen:
        if lo is not None and a[-2] is not None and lo < a[-2]:
            lo = None
        if hi is not None and a[-1] is not None and hi > a[-1]:
            hi = None
    if a[0] == "sym":
        return ("sym", a[1], lo, hi)
    return ("int", lo, hi)


def add(a, b):
    if a == BOT or b == BOT:
        return BOT
    if a is TOP or b is TOP:
        return TOP
    if a[0] == "sym" and b[0] == "sym":
        return TOP
    if a[0] == "sym" or b[0] == "sym":
        sym, other = (a, b) if a[0] == "sym" else (b, a)
        return ("sym", sym[1], _add_bound(sym[2], other[1]),
                _add_bound(sym[3], other[2]))
    return ("int", _add_bound(a[1], b[1]), _add_bound(a[2], b[2]))


def negate(a):
    if a == BOT:
        return BOT
    if a is TOP or a[0] == "sym":
        return TOP
    return ("int", None if a[2] is None else -a[2],
            None if a[1] is None else -a[1])


def sub(a, b):
    if a == BOT or b == BOT:
        return BOT
    if a is TOP or b is TOP:
        return TOP
    if a[0] == "sym" and b[0] == "sym":
        if a[1] == b[1]:
            return ("int",
                    None if a[2] is None or b[3] is None
                    else a[2] - b[3],
                    None if a[3] is None or b[2] is None
                    else a[3] - b[2])
        return TOP
    if b[0] == "sym":
        return TOP
    if a[0] == "sym":
        return ("sym", a[1],
                None if a[2] is None or b[2] is None else a[2] - b[2],
                None if a[3] is None or b[1] is None else a[3] - b[1])
    return add(a, negate(b))


def _nonneg(a) -> bool:
    return a not in (BOT, TOP) and a[0] == "int" and \
        a[1] is not None and a[1] >= 0


class RangeAnalysis:
    """See the module docstring."""

    def __init__(self, statements, funcs: List[FuncIr],
                 graph: CallGraph, ssa_infos: List[SsaInfo]):
        self.statements = statements
        self.funcs = funcs
        self.graph = graph
        self.ssa_by_func: Dict[str, SsaInfo] = {
            info.func.name: info for info in ssa_infos}
        self.var: Dict[SsaVar, object] = {}
        self.par: Dict[Tuple[str, int], object] = {}
        self.mem: Dict[Tuple, object] = {}
        self._joins: Dict = {}
        self._changed = False

    # -- lattice plumbing --------------------------------------------------

    def _update(self, table: Dict, key, value) -> None:
        old = table.get(key, BOT)
        count = self._joins.get(key, 0)
        new = join(old, value, widen=count >= _WIDEN_AFTER)
        if new != old:
            self._joins[key] = count + 1
            table[key] = new
            self._changed = True

    # -- evaluation --------------------------------------------------------

    def value_of(self, value, func: Optional[str] = None):
        if isinstance(value, Const):
            signed = _as_signed(value.value)
            return ("int", signed, signed)
        if isinstance(value, SymAddr):
            if value.name.startswith("\x00"):
                return TOP
            return ("sym", value.name, value.addend, value.addend)
        if isinstance(value, SsaVar):
            if value.def_op is None:
                return self._undefined_value(value, func)
            return self.var.get(value, BOT)
        return TOP

    def _undefined_value(self, var: SsaVar, func: Optional[str]):
        name = var.name
        if isinstance(name, tuple) and name and name[0] == "v":
            return self.mem.get(("pseudo", name), BOT)
        if isinstance(name, tuple) and len(name) == 2 and \
                name[0] == "r" and 24 <= name[1] < 30 and \
                func is not None:
            return self.par.get((func, name[1] - 24), BOT)
        return TOP

    def _alu(self, op: IrOp, func: str):
        a = self.value_of(op.uses[0], func)
        b = self.value_of(op.uses[1], func) if len(op.uses) > 1 else TOP
        if a == BOT or b == BOT:
            return BOT  # an operand is unvisited; retry next iteration
        kind = op.op
        if kind == "add":
            return add(a, b)
        if kind == "sub":
            return sub(a, b)
        if kind == "or":
            if a == ("int", 0, 0):
                return b
            if b == ("int", 0, 0):
                return a
            if _nonneg(a) and _nonneg(b):
                return ("int", 0, None)
            return TOP
        if kind == "and":
            for operand in (a, b):
                if operand not in (BOT, TOP) and \
                        operand[0] == "int" and \
                        operand[1] is not None and \
                        operand[1] == operand[2] and operand[1] >= 0:
                    return ("int", 0, operand[1])
            return TOP
        if kind in ("sll", "srl", "sra"):
            if b in (BOT, TOP) or b[0] != "int" or b[1] != b[2] or \
                    b[1] is None or not 0 <= b[1] < 32:
                return TOP
            shift = b[1]
            if a in (BOT, TOP) or a[0] != "int":
                return ("int", 0, None) if kind == "srl" else TOP
            lo, hi = a[1], a[2]
            if kind == "sll":
                if lo is None or lo < 0:
                    return TOP
                new_hi = None if hi is None else hi << shift
                if new_hi is not None and new_hi >= 2 ** 31:
                    new_hi = None
                return ("int", lo << shift, new_hi)
            if kind == "srl":
                if lo is not None and lo >= 0:
                    return ("int", lo >> shift,
                            None if hi is None else hi >> shift)
                return ("int", 0, None)
            # sra on a known-nonnegative value is a division
            if lo is not None and lo >= 0:
                return ("int", lo >> shift,
                        None if hi is None else hi >> shift)
            return TOP
        if kind == "smul":
            if _nonneg(a) and _nonneg(b):
                if a[2] is not None and b[2] is not None and \
                        a[2] * b[2] < 2 ** 31:
                    return ("int", a[1] * b[1], a[2] * b[2])
                return ("int", 0, None)
            return TOP
        if kind == "sdiv":
            if _nonneg(a) and b not in (BOT, TOP) and b[0] == "int" \
                    and b[1] is not None and b[1] > 0:
                return ("int", 0,
                        None if a[2] is None or b[1] is None
                        else a[2] // b[1])
            return TOP
        return TOP

    # -- transfer ----------------------------------------------------------

    def _transfer(self, func: FuncIr, info: SsaInfo, op: IrOp) -> None:
        kind = op.kind
        name = func.name
        if kind == "phi":
            value = BOT
            for use in op.uses:
                value = join(value, self.value_of(use, name))
            self._update(self.var, op.defs[0], value)
        elif kind == "move":
            value = TOP if op.op == "sethi_hi" \
                else self.value_of(op.uses[0], name)
            dest = op.defs[0]
            if isinstance(dest, SsaVar):
                self._update(self.var, dest, value)
                if isinstance(dest.name, tuple) and dest.name and \
                        dest.name[0] == "v":
                    self._update(self.mem, ("pseudo", dest.name),
                                 value)
        elif kind == "assert":
            for dest, use in zip(op.defs, op.uses):
                if isinstance(dest, SsaVar):
                    self._update(self.var, dest,
                                 self.value_of(use, name))
        elif kind == "alu":
            value = self._alu(op, name)
            for dest in op.defs:
                if isinstance(dest, SsaVar) and dest.name != ("cc",):
                    self._update(self.var, dest, value)
        elif kind == "call":
            callee = callee_name(op, self.statements)
            for position in range(min(6, len(op.uses))):
                self._update(self.par, (callee, position),
                             self.value_of(op.uses[position], name))
            for dest in op.defs:
                if not isinstance(dest, SsaVar):
                    continue
                if isinstance(dest.name, tuple) and dest.name and \
                        dest.name[0] == "v":
                    self._update(self.var, dest,
                                 self.mem.get(("pseudo", dest.name),
                                              BOT))
                elif dest.name == ("r", 8) and \
                        self.graph.is_defined(callee):
                    self._update(self.var, dest,
                                 self.mem.get(("ret", callee), BOT))
                else:
                    self._update(self.var, dest, TOP)
        elif kind == "ret":
            ret_var = info.exit_version.get((op.block.bid, ("r", 24))) \
                if op.block is not None else None
            if ret_var is not None:
                self._update(self.mem, ("ret", name),
                             self.value_of(ret_var, name))
        else:
            # ld/trap/save/restore/branch/...: defs unknown
            for dest in op.defs:
                if isinstance(dest, SsaVar):
                    self._update(self.var, dest, TOP)

    # -- driver ------------------------------------------------------------

    def run(self, max_iterations: int = 64) -> None:
        for _ in range(max_iterations):
            self._changed = False
            for func in self.funcs:
                info = self.ssa_by_func.get(func.name)
                if info is None:
                    continue
                for block in info.order:
                    for op in block.phis:
                        self._transfer(func, info, op)
                    for op in block.ops:
                        self._transfer(func, info, op)
            if not self._changed:
                return
        for key in list(self.var):
            self.var[key] = TOP

    # -- queries -----------------------------------------------------------

    def store_offset(self, op: IrOp):
        """Abstract address of a ld/st: ``("sym", L, lo, hi)`` if the
        analysis proves the address is label L plus a bounded (or
        half-bounded) byte offset; TOP otherwise."""
        owner = None
        for func in self.funcs:
            if func.start_index <= op.stmt_index < func.end_index:
                owner = func.name
                break
        base, index, disp = op.mem
        address = self.value_of(base, owner)
        if index is not None:
            address = add(address, self.value_of(index, owner))
        if disp:
            address = add(address, ("int", disp, disp))
        if address == BOT:
            return TOP
        return address
