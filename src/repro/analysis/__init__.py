"""Whole-program static analysis over the instrumentation IR.

This package layers interprocedural reasoning on top of the per-function
IR of :mod:`repro.ir`: call-graph construction
(:mod:`repro.analysis.callgraph`), a flow-insensitive Andersen-style
points-to analysis (:mod:`repro.analysis.pointsto`), an interprocedural
value-range/affine extension (:mod:`repro.analysis.ranges`), the
watchpoint predicate dependency pruner (:mod:`repro.analysis.prune`) and
the trace-backed soundness auditor (:mod:`repro.analysis.audit`).

:func:`run_ipa_pass` is the optimizer entry point: it is the ``"ipa"``
elimination pass that :func:`repro.optimizer.pipeline.build_plan` runs
after the §4 symbol and loop passes.  A store check is eliminated when
the points-to analysis proves the written address stays within named
static data (no heap, frame or unknown targets), and the §4.2 symbol
re-insertion contract is preserved by registering the site under every
symbol the store may touch — narrowed by the range analysis when it can
bound the byte offset, fully conservative (every symbol) when it
cannot.

Memory model: the analysis assumes object-granularity memory safety —
a store resolved to a data label stays within that label's storage, and
index arithmetic does not wrap at 32 bits.  These are the same
assumptions the existing scalar-promotion pass (and the paper's §4.3
monotonic-range argument) already make; the ``repro audit`` command
exists precisely to check the end-to-end result against recorded ground
truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.callgraph import build_callgraph
from repro.analysis.pointsto import (HEAP, UNKNOWN, PointsTo, is_frame,
                                     is_label)
from repro.analysis.ranges import RangeAnalysis
from repro.errors import InjectedFault
from repro.faults import ANALYSIS_UNSOUND, FaultPlan
from repro.instrument.plan import ELIM_IPA, OptimizationPlan
from repro.optimizer.symbols import StaticSym, StaticSymbols


def _label_layout(symbols: StaticSymbols):
    """Per-label extent (bytes of stabs-covered storage) and data order.

    The assembler lays data labels out in statement order, so "labels at
    or after L" is computable statically; ``tests/test_analysis.py``
    validates the order against assembled addresses.
    """
    extent: Dict[str, int] = {}
    order: Dict[str, int] = {}
    for index, (label, entries) in enumerate(
            symbols.globals_by_label.items()):
        extent[label] = max(e.label_offset + e.size for e in entries)
        order[label] = index
    return extent, order


def _memory_entries(symbols: StaticSymbols) -> List[StaticSym]:
    """Every stabs entry with storage (register vars have no memory)."""
    entries: List[StaticSym] = []
    for group in symbols.globals_by_label.values():
        entries.extend(group)
    for group in symbols.locals.values():
        entries.extend(group)
    return [e for e in entries if e.kind != "register"]


def _entry_key(entry: StaticSym):
    return (entry.func or "", entry.name)


def _fact_for(atoms, bounded_entries) -> Optional[list]:
    """A ``plan.write_facts`` value for a store with these target atoms.

    ``None`` means the store may write anything; otherwise a list of
    confinement items: ``("entry", name, func)``, ``("frame", func)`` or
    ``("heap",)``.
    """
    if atoms is None or UNKNOWN in atoms:
        return None
    fact = []
    for atom in sorted(atoms):
        if atom == HEAP:
            fact.append(("heap",))
        elif is_frame(atom):
            fact.append(("frame", atom[1]))
    if bounded_entries is not None:
        for entry in bounded_entries:
            fact.append(("entry", entry.name, entry.func))
    return fact


def run_ipa_pass(statements, funcs, ssa_infos, symbols: StaticSymbols,
                 plan: OptimizationPlan,
                 faults: Optional[FaultPlan] = None) -> None:
    """Interprocedural elimination over the (SSA-form) IR.

    Runs after the symbol and loop passes; first decision wins, so
    sites those passes claimed keep their kind and guards.  Populates
    ``plan.write_facts`` for *every* store site (the predicate pruner
    consumes them) and ``plan.pass_stats["ipa"]``.
    """
    graph = build_callgraph(funcs, statements)
    pt = PointsTo(statements, funcs, graph, ssa_infos)
    pt.run()
    ranges = RangeAnalysis(statements, funcs, graph, ssa_infos)
    ranges.run()

    extent, order = _label_layout(symbols)
    all_entries = _memory_entries(symbols)
    local_entries = [e for e in all_entries
                     if e.kind in ("local", "param")]
    stats = plan.stats_for("ipa")

    for func in funcs:
        for access in func.accesses:
            if access.kind != "st":
                continue
            op = access.op
            site = op.site if op is not None else None
            if site is None:
                continue
            if op.kind != "st":
                # promoted scalar store: the sym pass eliminated it and
                # the exact entry is its whole may-write set
                if access.exact is not None:
                    plan.write_facts[site] = [("entry", access.exact.name,
                                               access.exact.func)]
                continue

            atoms = pt.store_atoms(op)
            off = ranges.store_offset(op)

            # -- may-write fact for the predicate pruner ---------------
            labels = sorted(a[1] for a in (atoms or ()) if is_label(a))
            confined = None
            if labels and off is not None and off[0] == "sym" and \
                    set(labels) == {off[1]} and off[2] is not None and \
                    off[3] is not None:
                lo, hi = off[2], off[3] + op.width
                confined = [e for e in symbols.globals_by_label
                            .get(off[1], ())
                            if e.label_offset < hi and
                            e.label_offset + e.size > lo]
            elif labels:
                confined = [e for label in labels
                            for e in symbols.globals_by_label
                            .get(label, ())]
            plan.write_facts[site] = _fact_for(atoms, confined)

            if site in plan.eliminate:
                continue
            stats.seen += 1

            # -- elimination verdict -----------------------------------
            if not atoms or any(not is_label(a) for a in atoms):
                stats.guarded += 1
                continue

            base_label = min(labels, key=lambda lab: order.get(lab, -1))
            if confined is not None and off is not None and \
                    off[0] == "sym" and off[2] is not None and \
                    off[3] is not None and off[2] >= 0 and \
                    off[3] + op.width <= extent.get(off[1], 0):
                entries = confined
                why = ("ipa: points-to {%s}; offset [%d,%d] within "
                       "extent; registered under %d symbol(s)"
                       % (", ".join(labels), off[2], off[3],
                          len(entries)))
            elif off is not None and off[0] == "sym" and \
                    off[2] is not None and off[2] >= 0 and \
                    all(label in order for label in labels):
                base_index = order[base_label]
                entries = [e for group_label, group
                           in symbols.globals_by_label.items()
                           if order[group_label] >= base_index
                           for e in group] + local_entries
                why = ("ipa: points-to {%s}; offset >= %d, unbounded "
                       "above; registered under labels at/after %s "
                       "plus all locals (%d symbol(s))"
                       % (", ".join(labels), off[2], base_label,
                          len(entries)))
            else:
                entries = all_entries
                why = ("ipa: points-to {%s}; offset unbounded; "
                       "registered under every symbol (%d)"
                       % (", ".join(labels), len(entries)))

            if faults is not None:
                try:
                    faults.trip(ANALYSIS_UNSOUND, site=site)
                except InjectedFault:
                    plan.merge_site(site, ELIM_IPA, why=why +
                                    " [UNSOUND: analysis.unsound "
                                    "injection skipped re-insertion "
                                    "registration]")
                    stats.eliminated += 1
                    continue

            plan.merge_site(site, ELIM_IPA, why=why)
            for entry in entries:
                sites = plan.symbol_sites.setdefault(_entry_key(entry),
                                                     [])
                if site not in sites:
                    sites.append(site)
            stats.eliminated += 1
