"""Predicate dependency pruning for the watchpoint engine.

A conditional watchpoint's predicate is re-evaluated on every monitor
hit, reading live debuggee memory.  Most predicates over plain globals
(``limit != 0 && mode == 2``) have a *static* read footprint — the
:mod:`~repro.watchpoints.predicate` compiler records every
statically-resolved ``(address, extent)`` range a compiled load may
touch — and the ``ipa`` pass leaves a may-write fact for every store
site in ``plan.write_facts``.  When **no write site in the program can
alias the predicate's read set** (and the predicate observes none of
the per-hit ``$`` specials), its truth value cannot change after arm
time: the engine evaluates it once at seed and answers every later hit
from the cached truth, skipping the debuggee memory reads entirely.
Pruned evaluations are counted in ``WatchStats.pruned``.

The verdict is deliberately all-or-nothing per predicate rather than
per-site: MRS notifications do not carry the writing site id, so a
hit-time "was this one of the harmless sites?" test is impossible —
but a whole-program "no site can touch it" proof makes the question
moot.  Anything unresolvable (a site without a fact, a ``None`` fact,
a dynamic deref in the predicate) keeps the normal re-evaluating path.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

__all__ = ["predicate_invariant", "fact_item_aliases"]


def _overlaps(start: int, size: int,
              reads: Sequence[Tuple[int, int]]) -> bool:
    return any(start < r_addr + r_ext and r_addr < start + size
               for r_addr, r_ext in reads)


def fact_item_aliases(item, reads: Sequence[Tuple[int, int]],
                      symtab) -> bool:
    """May a write confined to *item* touch any of the *reads* ranges?

    *item* is one ``plan.write_facts`` confinement item:
    ``("heap",)``, ``("frame", func)`` or ``("entry", name, func)``.
    Predicate reads are always static-data addresses (the compiler
    rejects registers and frame-locals), so heap- and frame-confined
    writes never alias them; an entry item aliases iff its storage
    interval intersects a read range.  Unresolvable entries alias
    everything — the conservative answer.
    """
    tag = item[0]
    if tag in ("heap", "frame"):
        return False
    from repro.asm.symtab import SymbolError

    _tag, name, func = item
    try:
        entry = symtab.lookup(name, func)
    except SymbolError:
        return True
    if entry.kind == "register" or entry.is_frame_relative():
        return False
    if entry.address is None:
        return True
    return _overlaps(entry.address, entry.size, reads)


def predicate_invariant(predicate, plan, symtab,
                        sites: Optional[Iterable[int]] = None) -> bool:
    """True when *predicate*'s truth cannot change between hits.

    Requires: a compiled non-constant predicate with no per-hit
    dependencies (``$value``/``$old``/``$addr``/``$size``), a fully
    static read footprint (no computed-address derefs), and a may-write
    fact for **every** write site in *sites* (default: every site the
    plan has facts for) proving the site cannot alias any read range.
    """
    if predicate is None or predicate.const is not None:
        return False
    if predicate.needs_value or predicate.needs_old or \
            predicate.uses_hit or predicate.dynamic_reads:
        return False
    reads = predicate.reads
    facts = plan.write_facts if plan is not None else None
    if not facts:
        return False
    site_ids = list(sites) if sites is not None else list(facts)
    for site in site_ids:
        fact = facts.get(site)
        if fact is None:
            return False
        for item in fact:
            if fact_item_aliases(item, reads, symtab):
                return False
    return True
