"""High-level pipeline: mini-C (or assembly) -> instrumented debuggee.

`DebugSession` wires the whole stack together: compile, instrument with
a write-check strategy (and optionally a §4 optimization plan), assemble,
load, and attach a :class:`~repro.core.service.MonitoredRegionService`.
This is the main entry point for examples, tests and the evaluation
harness.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.asm.assembler import assemble
from repro.asm.loader import LoadedProgram, load_program
from repro.core.layout import MonitorLayout
from repro.core.service import MonitoredRegionService
from repro.faults import FaultPlan
from repro.instrument.plan import OptimizationPlan
from repro.instrument.rewriter import InstrumentResult, instrument_source
from repro.machine.cache import DEFAULT_CACHE_BYTES
from repro.machine.costs import CostModel, DEFAULT_COSTS
from repro.minic.codegen import compile_source


class DebugSession:
    """One debuggee instrumented for data breakpoints."""

    def __init__(self, inst: InstrumentResult, loaded: LoadedProgram,
                 mrs: MonitoredRegionService):
        self.inst = inst
        self.loaded = loaded
        self.mrs = mrs
        self.cpu = loaded.cpu
        self.program = loaded.program
        #: True once run() has been called at least once
        self.started = False
        self._entry_state = None
        #: callables invoked after an entry-checkpoint rewind, so
        #: host-side observers (debugger hit lists, recorders) can reset
        #: statistics the machine checkpoint cannot see
        self._rewind_hooks: List = []

    def add_rewind_hook(self, hook) -> None:
        """Register *hook* to run after every entry-checkpoint rewind."""
        self._rewind_hooks.append(hook)

    def mark_started(self) -> None:
        """Record the entry state so a later fresh :meth:`run` can
        rewind — also used by hosts (the debugger) that drive the CPU
        directly instead of through :meth:`run`."""
        if self._entry_state is None:
            from repro.machine.checkpoint import Checkpoint
            self._entry_state = Checkpoint(self.cpu,
                                           output=self.loaded.output,
                                           mrs=self.mrs)
        self.started = True

    @classmethod
    def from_asm(cls, asm_source: str, strategy="Bitmap",
                 layout: Optional[MonitorLayout] = None,
                 plan: Optional[OptimizationPlan] = None,
                 costs: CostModel = DEFAULT_COSTS,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 record_writes: bool = False,
                 monitor_reads: bool = False,
                 faults: Optional[FaultPlan] = None,
                 mrs_class=MonitoredRegionService,
                 fast_path=None) -> "DebugSession":
        inst = instrument_source(asm_source, strategy, layout, plan,
                                 monitor_reads)
        program = inst.assemble()
        loaded = load_program(program, cache_bytes=cache_bytes, costs=costs,
                              record_writes=record_writes,
                              fast_path=fast_path)
        if faults is not None:
            mrs = mrs_class(loaded, inst, faults=faults)
            # arm the memory.write injection point only after loading,
            # so the data-image writes don't consume occurrences
            loaded.cpu.mem.faults = faults
        else:
            mrs = mrs_class(loaded, inst)
        return cls(inst, loaded, mrs)

    @classmethod
    def from_minic(cls, c_source: str, lang: str = "C", **kwargs
                   ) -> "DebugSession":
        return cls.from_asm(compile_source(c_source, lang=lang), **kwargs)

    def run(self, max_instructions: int = 400_000_000,
            watchdog=None, resume: bool = False) -> int:
        """Run (or resume) the debuggee; safely re-runnable.

        A fresh ``run()`` after a previous one — e.g. a server client
        relaunching after a :class:`~repro.machine.cpu.SimulationLimit`
        — rewinds the debuggee to the state it had when first started
        (memory image, registers, counters, output, monitor state), so
        instruction/cycle counters are not double-counted and stale trap
        state cannot leak into the new run.  A watchdog passed here is
        re-armed by the CPU relative to the (restored) counters, so each
        call grants its full budget.  ``resume=True`` before any run is
        treated as a fresh start.
        """
        if resume and not self.started:
            resume = False
        if not resume:
            if self._entry_state is not None and self.started:
                self._entry_state.restore(self.cpu,
                                          output=self.loaded.output,
                                          mrs=self.mrs)
                self.cpu.running = False
                self.cpu.exit_code = None
                for hook in self._rewind_hooks:
                    hook()
            self.mark_started()
        self.started = True
        return self.loaded.run(max_instructions=max_instructions,
                               watchdog=watchdog, resume=resume)

    @property
    def output(self) -> List[str]:
        return self.loaded.output

    def symbol(self, name: str, func: Optional[str] = None):
        return self.program.symtab.lookup(name, func)


def run_uninstrumented(asm_source: str,
                       costs: CostModel = DEFAULT_COSTS,
                       cache_bytes: int = DEFAULT_CACHE_BYTES,
                       record_writes: bool = False,
                       max_instructions: int = 400_000_000,
                       watchdog=None,
                       on_limit: str = "raise",
                       fast_path=None
                       ) -> Tuple[Optional[int], LoadedProgram]:
    """Assemble and run *asm_source* without any checks (the baseline
    against which Table 1 / Table 2 overheads are computed).

    With ``on_limit="partial"``, a watchdog budget exhaustion returns
    ``(None, loaded)`` — the partially-run program — instead of raising
    :class:`~repro.machine.cpu.SimulationLimit`.
    """
    from repro.machine.cpu import SimulationLimit

    program = assemble(asm_source)
    loaded = load_program(program, cache_bytes=cache_bytes, costs=costs,
                          record_writes=record_writes, fast_path=fast_path)
    try:
        exit_code = loaded.run(max_instructions=max_instructions,
                               watchdog=watchdog)
    except SimulationLimit:
        if on_limit != "partial":
            raise
        exit_code = None
    return exit_code, loaded
