"""Source-level debugger built on the monitored region service."""

from repro.debugger.debugger import (Breakpoint, Debugger, DebuggerError,
                                     Watchpoint)
from repro.debugger.fault_isolation import FaultIsolator, Violation

__all__ = ["Debugger", "DebuggerError", "Watchpoint", "Breakpoint",
           "FaultIsolator", "Violation"]
