"""Source-level data breakpoints: the debugger the MRS was built for.

§2: "It is the responsibility of the debugger to map source language
names used in the break conditions to monitored regions, and to create
and delete monitored regions as necessary."  This module is that
debugger: it resolves mini-C names (``g``, ``a[3]``, ``s.f``, locals by
function) through the symbol table, pairs ``PreMonitor`` with
``CreateMonitoredRegion`` as §4.2 requires, and dispatches watchpoint
actions (print / count / stop / user callback) from monitor-hit
notifications.

Control breakpoints (``break_at``) are implemented with the same
Kessler-style patching the MRS uses for write checks, so the debugger
can stop a program and then watch frame-local variables at a live
frame.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from repro.asm.symtab import SymbolError, SymEntry
from repro.errors import ReproError
from repro.isa.instructions import to_signed
from repro.core.regions import MonitoredRegion
from repro.instrument.plan import OptimizationPlan
from repro.isa import instructions as I
from repro.isa.registers import FP
from repro.minic.codegen import compile_source
from repro.optimizer.pipeline import build_plan
from repro.session import DebugSession

TRAP_BREAKPOINT = 0x48

_INDEX_RE = re.compile(r"^(\w+)\[(\d+)\]$")


class DebuggerError(ReproError):
    """Raised for unresolvable names or invalid debugger requests."""


class Watchpoint:
    """One active data breakpoint — plain, conditional or transition.

    *predicate* is a compiled
    :class:`~repro.watchpoints.predicate.Predicate` (None for the
    plain/legacy kinds); *when* selects transition-edge firing
    (``"rise"`` / ``"fall"`` / ``"change"``, None for level-triggered);
    *access* filters hit kinds (``"read"`` / ``"write"`` /
    ``"readWrite"``, None for the historical any-access behaviour).
    The ``shadow`` / ``truth`` / ``stats`` fields belong to the
    :class:`~repro.watchpoints.engine.WatchpointEngine` and are seeded
    at arm time.
    """

    def __init__(self, debugger: "Debugger", name: str, entry: SymEntry,
                 region: MonitoredRegion, action: str,
                 condition: Optional[Callable[[int], bool]],
                 callback: Optional[Callable], func: Optional[str],
                 predicate=None, when: Optional[str] = None,
                 access: Optional[str] = None,
                 addr: Optional[int] = None,
                 size: Optional[int] = None):
        from repro.watchpoints.engine import WatchStats

        self.debugger = debugger
        self.name = name
        self.entry = entry
        self.region = region
        self.action = action
        self.condition = condition
        self.callback = callback
        self.func = func
        self.predicate = predicate
        self.when = when
        self.access = access
        #: exact watched byte range (the region is word-rounded and
        #: may be shared; the engine's byte-range guard uses these)
        self.addr = region.start if addr is None else addr
        self.size = region.size if size is None else size
        self.hits: List[Tuple[int, int, int]] = []  # (addr, size, value)
        self.enabled = True
        #: pruner verdict (repro.analysis.prune): True when no write
        #: site can change the predicate's truth, so the engine may
        #: answer hits from a seed-time cache
        self.invariant = False
        # engine state (per-watchpoint; checkpointed by value)
        self.shadow: Dict[int, int] = {}
        self.truth: Optional[bool] = None
        self.record_truth: Optional[bool] = None
        self.cached_truth: Optional[bool] = None
        self.stats = WatchStats()
        self.disarm_error = None

    @property
    def kind(self) -> str:
        """"transition", "conditional" or "plain"."""
        if self.when is not None:
            return "transition"
        if self.predicate is not None or self.condition is not None:
            return "conditional"
        return "plain"

    def hit_count(self) -> int:
        return len(self.hits)

    def last_value(self) -> Optional[int]:
        return self.hits[-1][2] if self.hits else None

    def delete(self) -> None:
        self.debugger.unwatch(self)


class Breakpoint:
    """One control breakpoint, patched at a function entry."""

    def __init__(self, func_name: str, addr: int, block_addr: int,
                 original: I.Instruction,
                 callback: Optional[Callable]):
        self.func_name = func_name
        self.addr = addr
        self.block_addr = block_addr
        self.original = original
        self.callback = callback
        self.hits = 0


class Debugger:
    """A data-breakpoint debugging session on one program."""

    def __init__(self, session: DebugSession):
        from repro.watchpoints.engine import WatchpointEngine

        self.session = session
        self.mrs = session.mrs
        self.cpu = session.cpu
        self.symtab = session.program.symtab
        self.engine = WatchpointEngine(self)
        self.watchpoints: List[Watchpoint] = []
        #: (start, size) -> [region, refcount]: watchpoints on the same
        #: storage share one monitored region (regions must not overlap)
        self._region_refs: Dict[Tuple[int, int], list] = {}
        self.breakpoints: Dict[int, Breakpoint] = {}
        self.stop_reason: Optional[str] = None
        self.stopped_watch: Optional[Watchpoint] = None
        self._started = False
        self.log: List[str] = []
        self._recorder = None
        self._replay = None
        self.mrs.add_callback(self._on_hit)
        self.cpu.trap_handlers[TRAP_BREAKPOINT] = self._on_breakpoint
        self.mrs.enable()
        # a session-level entry rewind restores the machine and MRS but
        # not debugger-side statistics; reset them so repeated runs
        # report clean numbers
        session.add_rewind_hook(self._on_session_rewind)

    # -- construction ------------------------------------------------------

    @classmethod
    def for_source(cls, c_source: str, lang: str = "C",
                   strategy: str = "BitmapInlineRegisters",
                   optimize: Optional[str] = "full",
                   monitor_reads: bool = False,
                   faults=None, fast_path=None) -> "Debugger":
        """Compile, instrument and attach a debugger to mini-C source.

        *optimize* is any :func:`~repro.optimizer.pipeline.build_plan`
        mode (``"sym"``, ``"full"``, ``"ipa"``) or None; *faults*
        reaches the plan build (e.g. the ``analysis.unsound`` point);
        *fast_path* picks the execution engine (None = CPU default).
        """
        asm = compile_source(c_source, lang=lang)
        plan: Optional[OptimizationPlan] = None
        if optimize:
            _stmts, plan = build_plan(asm, mode=optimize, faults=faults)
        session = DebugSession.from_asm(asm, strategy=strategy, plan=plan,
                                        monitor_reads=monitor_reads,
                                        fast_path=fast_path)
        return cls(session)

    # -- name resolution -------------------------------------------------------

    def resolve(self, expression: str, func: Optional[str] = None
                ) -> Tuple[SymEntry, int, int]:
        """Resolve a watch expression to (entry, address, size).

        Supported forms: ``g``, ``a[3]``, ``s.f`` (field stabs), and —
        when *func*'s frame is live (stopped at a breakpoint in it) —
        frame-local names.
        """
        name = expression.strip()
        index: Optional[int] = None
        match = _INDEX_RE.match(name)
        if match:
            name, index = match.group(1), int(match.group(2))
        try:
            entry = self.symtab.lookup(name, func)
        except SymbolError:
            raise DebuggerError("no symbol %r (func=%r)" % (name, func))
        if entry.kind == "register":
            raise DebuggerError(
                "%s lives in a register; registers cannot be aliased so "
                "watch assignments to it with a control breakpoint "
                "instead (§2)" % name)
        if entry.is_frame_relative():
            if func is None:
                raise DebuggerError("%r is frame-local; pass func=" % name)
            base = (self.cpu.regs.read(FP) + entry.offset) & 0xFFFFFFFF
        else:
            base = entry.address
        size = entry.size
        if index is not None:
            elem = entry.elem or 4
            if index * elem >= entry.size:
                raise DebuggerError("%s[%d] out of range" % (name, index))
            base += index * elem
            size = elem
        return entry, base, size

    # -- data breakpoints ---------------------------------------------------------

    def watch(self, expression: str, func: Optional[str] = None,
              action: str = "log",
              condition: Optional[Callable[[int], bool]] = None,
              callback: Optional[Callable] = None,
              expr: Optional[str] = None, when: Optional[str] = None,
              access: Optional[str] = None) -> Watchpoint:
        """Create a data breakpoint on *expression*.

        ``action``: "log" (record hits), "print" (also append to
        ``self.log``), "stop" (suspend execution), or "call" (invoke
        *callback*).  *condition* filters hits by the newly written
        value (legacy callable form).

        ``expr`` is a predicate in the watchpoint predicate language
        (``$value > 100 && limit != 0``), compiled once at arm time;
        ``when`` turns the watchpoint into a *transition* watchpoint
        firing only on the selected truth edge (``"rise"`` /
        ``"fall"`` / ``"change"``); ``access`` filters hit kinds
        (``"read"`` / ``"write"`` / ``"readWrite"``; None fires on
        anything the region reports, the historical behaviour).
        """
        from repro.errors import PredicateCompileError, PredicateError
        from repro.watchpoints.engine import ACCESS_KINDS, EDGES
        from repro.watchpoints.predicate import compile_predicate

        if when is not None and when not in EDGES:
            raise DebuggerError(
                "unknown transition edge %r (have: %s)"
                % (when, ", ".join(EDGES)))
        if when is not None and expr is None:
            raise DebuggerError(
                "a transition watchpoint needs a predicate (expr=)")
        if access is not None and access not in ACCESS_KINDS:
            raise DebuggerError(
                "unknown access kind %r (have: %s)"
                % (access, ", ".join(ACCESS_KINDS)))
        entry, addr, size = self.resolve(expression, func)
        predicate = None
        if expr is not None:
            # compile (and thereby validate) before touching the MRS:
            # a bad predicate must fail at arm time with nothing armed
            predicate = compile_predicate(expr, symtab=self.symtab,
                                          func=func)
        # §4.2 protocol: patch known writes first, then create the region
        self.mrs.pre_monitor(entry.name, func)
        key = (addr, (size + 3) & ~3)
        ref = self._region_refs.get(key)
        if ref is None:
            # a watch placed while stopped mid-run must re-insert checks
            # in loops whose pre-headers already executed this entry
            region = self.mrs.create_region(*key,
                                            mid_run=self._started)
            ref = [region, 0]
            self._region_refs[key] = ref
        ref[1] += 1
        region = ref[0]
        watchpoint = Watchpoint(self, expression, entry, region, action,
                                condition, callback, func,
                                predicate=predicate, when=when,
                                access=access, addr=addr, size=size)
        if predicate is not None and predicate.const is None:
            # dependency pruning: when the ipa pass left a may-write
            # fact for every site and none aliases the predicate's
            # read footprint, its truth is invariant — the engine
            # caches it at seed time
            from repro.analysis.prune import predicate_invariant
            inst = self.session.inst
            watchpoint.invariant = predicate_invariant(
                predicate, inst.plan, self.symtab,
                sites=[s.site for s in inst.sites])
        self.watchpoints.append(watchpoint)
        try:
            self.engine.seed(watchpoint)
        except (PredicateError, PredicateCompileError):
            # the predicate faults on *current* memory: roll the arm
            # back so nothing half-armed remains
            self.unwatch(watchpoint)
            raise
        if self._recorder is not None:
            self._recorder.on_monitor_change()
        return watchpoint

    def unwatch(self, watchpoint: Watchpoint) -> None:
        if watchpoint not in self.watchpoints:
            return
        self.watchpoints.remove(watchpoint)
        region = watchpoint.region
        key = (region.start, region.size)
        ref = self._region_refs.get(key)
        if ref is not None:
            ref[1] -= 1
            if ref[1] <= 0:
                self.mrs.delete_region(region)
                del self._region_refs[key]
        self.mrs.post_monitor(watchpoint.entry.name, watchpoint.func)
        if self._recorder is not None:
            self._recorder.on_monitor_change()

    def _on_hit(self, addr: int, size: int, is_read: bool) -> None:
        self.engine.on_hit(addr, size, is_read)

    def _fire(self, watchpoint: Watchpoint, addr: int, size: int,
              value: int) -> None:
        """Dispatch one firing hit's action (the engine decided it)."""
        watchpoint.hits.append((addr, size, value))
        if watchpoint.action == "print":
            self.log.append("%s = %d" % (watchpoint.name, value))
        elif watchpoint.action == "stop":
            self.stop_reason = "watch"
            self.stopped_watch = watchpoint
            self.cpu.stop()
            self.cpu.exit_code = None
        elif watchpoint.action == "call" and watchpoint.callback:
            watchpoint.callback(watchpoint, addr, size, value)

    # -- control breakpoints ---------------------------------------------------------

    def break_at(self, func_name: str,
                 callback: Optional[Callable] = None) -> Breakpoint:
        """Stop when *func_name* is entered (after its prologue save)."""
        program = self.session.program
        func = program.function_named(func_name)
        # patch the instruction after the save so %fp is established
        addr = func.address + 4
        original = self.cpu.code.at(addr)
        if original is None or isinstance(
                original, (I.BranchInsn, I.CallInsn, I.JmplInsn)):
            raise DebuggerError("cannot place breakpoint in %s"
                                % func_name)
        trap = I.TrapInsn(TRAP_BREAKPOINT)
        trap.tag = "patch"
        back = I.BranchInsn("a", addr + 4, annul=True)
        back.tag = "patch"
        block_addr = self.cpu.code.append_block([trap, original, back])
        jump = I.BranchInsn("a", block_addr, annul=True)
        jump.tag = "patch"
        self.cpu.code.patch(addr, jump)
        breakpoint = Breakpoint(func_name, addr, block_addr, original,
                                callback)
        self.breakpoints[block_addr] = breakpoint
        return breakpoint

    def clear_breakpoint(self, breakpoint: Breakpoint) -> None:
        self.cpu.code.patch(breakpoint.addr, breakpoint.original)
        self.breakpoints.pop(breakpoint.block_addr, None)

    def _on_breakpoint(self, cpu) -> None:
        breakpoint = self.breakpoints.get(cpu.pc)
        if breakpoint is None:
            return
        breakpoint.hits += 1
        if breakpoint.callback is not None:
            breakpoint.callback(self, breakpoint)
        else:
            self.stop_reason = "breakpoint:%s" % breakpoint.func_name
            self.cpu.stop()
            self.cpu.exit_code = None

    # -- inspection ---------------------------------------------------------------

    def evaluate(self, expression: str, func: Optional[str] = None):
        """Read the current value of a watchable expression.

        Returns ``(entry, address, value)``; *value* is an int for
        word-sized storage and a list of up to 16 leading words for
        larger storage (arrays, structs).
        """
        entry, addr, size = self.resolve(expression, func)
        if size == 4:
            return entry, addr, to_signed(self.cpu.mem.read_word(addr))
        words = [to_signed(self.cpu.mem.read_word(addr + offset))
                 for offset in range(0, min(size, 64), 4)]
        return entry, addr, words

    def disassemble(self, func_name: str) -> str:
        """Disassemble *func_name* as currently patched, marking the pc.

        Shows inserted checks (tagged), write-site ids, and any active
        Kessler patches — what the MRS actually did to the code.
        """
        from repro.machine.disasm import disassemble_function

        return disassemble_function(self.session.program, self.cpu.code,
                                    func_name, mark=self.cpu.pc)

    # -- checkpoint / replay (§5) -------------------------------------------------

    def checkpoint(self):
        """Snapshot the debuggee for replayed execution (§5).

        Watchpoints may be added or removed between :meth:`restore` and
        the next :meth:`run` — the classic replay loop narrows in on a
        corruption across repeated re-executions.
        """
        from repro.machine.checkpoint import Checkpoint

        snapshot = Checkpoint(self.cpu, output=self.session.output,
                              mrs=self.mrs)
        extra = (list(self.watchpoints),
                 [list(w.hits) for w in self.watchpoints],
                 list(self.log), self._started,
                 {key: list(ref) for key, ref in
                  self._region_refs.items()},
                 self.engine.states(self.watchpoints))
        return (snapshot, extra)

    def restore(self, checkpoint, discard_recording: bool = True) -> None:
        """Rewind the debuggee to a :meth:`checkpoint` — including the
        watchpoint set as it stood then.

        An *external* restore moves the debuggee to a point the active
        recording knows nothing about, so the recording is discarded
        (the replay engine's own keyframe restores pass
        ``discard_recording=False``).
        """
        if discard_recording:
            self.stop_record()
        snapshot, extra = checkpoint
        (watchpoints, hits, log, started, region_refs) = extra[:5]
        snapshot.restore(self.cpu, output=self.session.output,
                         mrs=self.mrs)
        self.watchpoints = list(watchpoints)
        for watchpoint, saved in zip(self.watchpoints, hits):
            watchpoint.hits = list(saved)
        if len(extra) > 5:
            # engine state (transition truth, $old shadow, counters)
            # rewinds with the machine, so replayed execution re-fires
            # predicates exactly as the recording did
            self.engine.restore_states(self.watchpoints, extra[5])
        self.log = list(log)
        self._started = started
        self._region_refs = {key: list(ref)
                             for key, ref in region_refs.items()}
        self.stop_reason = None
        self.stopped_watch = None

    def _on_session_rewind(self) -> None:
        """Reset the statistics a session entry rewind cannot see."""
        for watchpoint in self.watchpoints:
            watchpoint.hits = []
        # memory is back at entry state: re-seed shadows and
        # transition truth from it (and reset the engine counters)
        self.engine.reseed_all()
        for breakpoint in self.breakpoints.values():
            breakpoint.hits = 0
        self.log = []
        self.stop_reason = None
        self.stopped_watch = None
        self.stop_record()

    # -- record / time travel (§5, the replay workload) ---------------------------

    def record(self, stride: Optional[int] = None,
               max_keyframes: Optional[int] = None,
               max_trace: Optional[int] = None):
        """Start recording for time travel; returns the
        :class:`~repro.replay.recorder.Recorder`.

        Subsequent :meth:`run`/:meth:`step` calls capture keyframes
        every *stride* instructions and log every monitor hit, enabling
        :meth:`reverse_continue`, :meth:`reverse_step` and
        :meth:`last_write`.
        """
        from repro.replay import (DEFAULT_MAX_KEYFRAMES,
                                  DEFAULT_MAX_TRACE, DEFAULT_STRIDE,
                                  Recorder, ReplayController, ReplayError)
        if self._recorder is not None:
            raise ReplayError("recording already active")
        recorder = Recorder(
            self,
            stride=stride if stride is not None else DEFAULT_STRIDE,
            max_keyframes=(max_keyframes if max_keyframes is not None
                           else DEFAULT_MAX_KEYFRAMES),
            max_trace=max_trace if max_trace is not None
            else DEFAULT_MAX_TRACE)
        recorder.start()
        # pin every transition watchpoint's truth as the baseline the
        # trace re-evaluation (reverse_continue) simulates forward from
        self.engine.mark_record_start()
        self._recorder = recorder
        self._replay = ReplayController(self, recorder)
        return recorder

    @property
    def recording(self) -> bool:
        return self._recorder is not None

    @property
    def recorder(self):
        return self._recorder

    def archive_recording(self, store,
                          wall_time_s: Optional[float] = None,
                          **meta):
        """Ingest the active recording into a persistent
        :class:`~repro.store.TraceStore`; *meta* fields (workload,
        scale, seed, ...) are stamped into the trace's run-identity
        header first.  Returns the store's
        :class:`~repro.store.IngestResult`."""
        from repro.replay import ReplayError
        if self._recorder is None:
            raise ReplayError(
                "no active recording to archive; call record() first",
                reason="not_recording")
        return store.ingest_recorder(self._recorder,
                                     wall_time_s=wall_time_s, **meta)

    def stop_record(self) -> None:
        """Discard the active recording (idempotent)."""
        if self._recorder is not None:
            self._recorder.detach()
            self._recorder = None
            self._replay = None

    def _require_replay(self):
        from repro.replay import ReplayError
        if self._replay is None:
            raise ReplayError(
                "no active recording; call record() before time travel",
                reason="not_recording")
        return self._replay

    def reverse_continue(self) -> str:
        """Run backwards to the most recent write to a watched region;
        returns "watch" or "replay-start"."""
        return self._require_replay().reverse_continue()

    def reverse_step(self, count: int = 1) -> str:
        """Step *count* instructions backwards; returns "step" or
        "replay-start" when clamped at the recording's start."""
        return self._require_replay().reverse_step(count)

    def last_write(self, expression: str, func: Optional[str] = None):
        """Most recent write to *expression*'s storage at or before the
        current point in time, as a
        :class:`~repro.replay.controller.LastWrite` (or None if never
        written while recorded)."""
        replay = self._require_replay()
        _entry, addr, size = self.resolve(expression, func)
        return replay.last_write_to(addr, size, expression=expression,
                                    func=func)

    # -- execution -----------------------------------------------------------------

    def run(self, max_instructions: int = 400_000_000) -> str:
        """Run or resume; returns the stop reason ("exited", "watch",
        "breakpoint:<func>").  Under an active recording, execution is
        driven through the recorder (keyframes + trace capture)."""
        if self._recorder is not None and self._recorder.active:
            self.stop_reason = None
            self.stopped_watch = None
            reason = self._recorder.resume(max_instructions)
            if self.stop_reason is None:
                self.stop_reason = reason
            return self.stop_reason
        return self._run_raw(max_instructions)

    def _run_raw(self, max_instructions: int = 400_000_000) -> str:
        self.stop_reason = None
        self.stopped_watch = None
        if not self._started:
            self._started = True
            self.cpu.pc = self.session.loaded.entry
            self.cpu.npc = self.cpu.pc + 4
            self.session.mark_started()
        self.cpu.run(start=None, max_instructions=max_instructions)
        if self.stop_reason is None:
            self.stop_reason = "exited"
        return self.stop_reason

    def step(self, count: int = 1) -> str:
        """Execute up to *count* instructions; returns the stop reason
        ("exited", "watch", "breakpoint:<func>", or "step" when the
        count ran out with the program still live)."""
        reason = self._step_raw(count)
        if self._recorder is not None and self._recorder.active and \
                self._recorder.mode == "record":
            recorder = self._recorder
            recorder.end_index = max(recorder.end_index,
                                     self.cpu.instructions)
            recorder.end_progress = max(recorder.end_progress,
                                        recorder._progress())
        return reason

    def _step_raw(self, count: int = 1) -> str:
        self.stop_reason = None
        self.stopped_watch = None
        cpu = self.cpu
        if not self._started:
            self._started = True
            cpu.pc = self.session.loaded.entry
            cpu.npc = cpu.pc + 4
            self.session.mark_started()
        # run_steps() is bit-exact with *count* single steps: monitor
        # checks, breakpoints and watch traps all live in trap/patch
        # instructions, which never compile into fast-path blocks
        cpu.run_steps(count)
        if not cpu.running and cpu.exit_code is not None:
            self.stop_reason = "exited"
        elif self.stop_reason is None:
            self.stop_reason = "step"
        return self.stop_reason

    @property
    def output(self) -> List[str]:
        return self.session.output
