"""Interactive command-line debugger: ``python -m repro debug FILE.c``.

A small gdb-flavoured command loop over :class:`repro.debugger.Debugger`
so data breakpoints can be explored by hand:

.. code-block:: text

    (pdb93) watch balance          # data breakpoint, stop on write
    (pdb93) trace table[3]         # data breakpoint, log only
    (pdb93) cond balance "$value < 0"          # conditional stop
    (pdb93) trans balance "$value > 100" rise  # transition stop
    (pdb93) break main             # control breakpoint
    (pdb93) run                    # run / continue
    (pdb93) print balance          # read a variable
    (pdb93) info                   # watchpoints, hits, stats
    (pdb93) disasm bump            # patched code, checks tagged
    (pdb93) checkpoint             # snapshot for replay
    (pdb93) restore                # rewind to the snapshot
    (pdb93) record                 # start time-travel recording
    (pdb93) rc                     # reverse-continue to the last write
    (pdb93) rs 10                  # step 10 instructions backwards
    (pdb93) lastwrite balance      # who wrote this last?
    (pdb93) quit
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional

from repro.debugger.debugger import Debugger, DebuggerError
from repro.errors import (PredicateCompileError, PredicateError,
                          ReplayError)


class DebuggerRepl:
    """One interactive session; commands are line strings."""

    PROMPT = "(pdb93) "

    def __init__(self, debugger: Debugger,
                 write: Optional[Callable[[str], None]] = None):
        self.debugger = debugger
        self._write = write if write is not None else _stdout_write
        self._checkpoint = None
        self._finished = False
        self._commands: Dict[str, Callable[[List[str]], None]] = {
            "watch": self._cmd_watch,
            "trace": self._cmd_trace,
            "cond": self._cmd_cond,
            "trans": self._cmd_trans,
            "unwatch": self._cmd_unwatch,
            "break": self._cmd_break,
            "run": self._cmd_run,
            "continue": self._cmd_run,
            "c": self._cmd_run,
            "step": self._cmd_step,
            "s": self._cmd_step,
            "print": self._cmd_print,
            "p": self._cmd_print,
            "info": self._cmd_info,
            "disasm": self._cmd_disasm,
            "checkpoint": self._cmd_checkpoint,
            "restore": self._cmd_restore,
            "record": self._cmd_record,
            "rc": self._cmd_reverse_continue,
            "reverse-continue": self._cmd_reverse_continue,
            "rs": self._cmd_reverse_step,
            "reverse-step": self._cmd_reverse_step,
            "lastwrite": self._cmd_last_write,
            "help": self._cmd_help,
        }

    # -- driver -----------------------------------------------------------

    def execute(self, line: str) -> bool:
        """Run one command; returns False when the session should end."""
        parts = shlex.split(line)
        if not parts:
            return True
        name, args = parts[0], parts[1:]
        if name in ("quit", "q", "exit"):
            return False
        handler = self._commands.get(name)
        if handler is None:
            self._write("unknown command %r (try: help)" % name)
            return True
        try:
            handler(args)
        except (DebuggerError, ReplayError, PredicateCompileError,
                PredicateError) as exc:
            self._write("error: %s" % exc)
        return True

    def loop(self, input_fn: Callable[[str], str]) -> None:
        while True:
            try:
                line = input_fn(self.PROMPT)
            except EOFError:
                break
            if not self.execute(line):
                break

    # -- commands -----------------------------------------------------------

    def _cmd_watch(self, args: List[str]) -> None:
        self._add_watch(args, action="stop")

    def _cmd_trace(self, args: List[str]) -> None:
        self._add_watch(args, action="log")

    def _cmd_cond(self, args: List[str]) -> None:
        """``cond EXPR PREDICATE [func]`` — conditional data
        breakpoint: stop only when the predicate (over ``$value``,
        ``$old``, ``$addr``, ``$size`` and globals) holds."""
        if len(args) < 2:
            self._write('usage: cond EXPR "PREDICATE" [func]')
            return
        func = args[2] if len(args) > 2 else None
        self._add_watch([args[0]] + ([func] if func else []),
                        action="stop", expr=args[1])

    def _cmd_trans(self, args: List[str]) -> None:
        """``trans EXPR PREDICATE [edge] [func]`` — transition data
        breakpoint: stop when the predicate's truth value changes on
        the selected edge (rise / fall / change; default change)."""
        from repro.watchpoints import EDGES
        if len(args) < 2:
            self._write('usage: trans EXPR "PREDICATE" '
                        '[rise|fall|change] [func]')
            return
        when = "change"
        rest = args[2:]
        if rest and rest[0] in EDGES:
            when, rest = rest[0], rest[1:]
        func = rest[0] if rest else None
        self._add_watch([args[0]] + ([func] if func else []),
                        action="stop", expr=args[1], when=when)

    def _add_watch(self, args: List[str], action: str,
                   expr: Optional[str] = None,
                   when: Optional[str] = None) -> None:
        if not args:
            self._write("usage: watch EXPR [func]")
            return
        func = args[1] if len(args) > 1 else None
        watchpoint = self.debugger.watch(args[0], func=func,
                                         action=action, expr=expr,
                                         when=when)
        label = "watchpoint" if action == "stop" else "trace"
        if watchpoint.kind != "plain":
            label = "%s %s" % (watchpoint.kind, label)
        detail = ""
        if expr is not None:
            detail = " if %s" % expr
            if when is not None:
                detail += " (on %s)" % when
        self._write("%s #%d on %s%s (region 0x%08x..0x%08x)"
                    % (label,
                       self.debugger.watchpoints.index(watchpoint),
                       args[0], detail, watchpoint.region.start,
                       watchpoint.region.end))

    def _cmd_unwatch(self, args: List[str]) -> None:
        if not args:
            self._write("usage: unwatch NUMBER")
            return
        index = int(args[0])
        if not 0 <= index < len(self.debugger.watchpoints):
            self._write("no watchpoint #%d" % index)
            return
        self.debugger.watchpoints[index].delete()
        self._write("deleted watchpoint #%d" % index)

    def _cmd_break(self, args: List[str]) -> None:
        if not args:
            self._write("usage: break FUNCTION")
            return
        breakpoint = self.debugger.break_at(args[0])
        self._write("breakpoint at %s (0x%08x)"
                    % (args[0], breakpoint.addr))

    def _cmd_run(self, args: List[str]) -> None:
        if self._finished:
            self._write("program has exited (use restore to replay)")
            return
        reason = self.debugger.run()
        output = "".join(self.debugger.output)
        if output:
            self._write("program output so far: %s" % output.strip())
        if reason == "exited":
            self._finished = True
            self._write("program exited")
        elif reason == "watch":
            watchpoint = self.debugger.stopped_watch
            self._write("stopped: %s = %s"
                        % (watchpoint.name, watchpoint.last_value()))
        else:
            self._write("stopped: %s" % reason)

    def _cmd_step(self, args: List[str]) -> None:
        """Execute N instructions (default 1), then show the pc."""
        if self._finished:
            self._write("program has exited (use restore to replay)")
            return
        count = int(args[0]) if args else 1
        reason = self.debugger.step(count)
        if reason == "exited":
            self._finished = True
            self._write("program exited")
            return
        cpu = self.debugger.cpu
        insn = cpu.code.at(cpu.pc)
        self._write("pc=0x%08x: %s" % (cpu.pc, insn))

    def _cmd_print(self, args: List[str]) -> None:
        if not args:
            self._write("usage: print EXPR [func]")
            return
        func = args[1] if len(args) > 1 else None
        entry, _addr, value = self.debugger.evaluate(args[0], func)
        if isinstance(value, list):
            suffix = " ..." if entry.size > 64 else ""
            self._write("%s = {%s}%s"
                        % (args[0], ", ".join(map(str, value)), suffix))
        else:
            self._write("%s = %d" % (args[0], value))

    def _cmd_info(self, args: List[str]) -> None:
        debugger = self.debugger
        if not debugger.watchpoints and not debugger.breakpoints:
            self._write("no watchpoints or breakpoints")
        for index, watchpoint in enumerate(debugger.watchpoints):
            stats = watchpoint.stats
            detail = ""
            if watchpoint.predicate is not None:
                detail = " if %s" % watchpoint.predicate.source
                if watchpoint.when is not None:
                    detail += " (on %s)" % watchpoint.when
                detail += " [%d eval, %d suppressed]" % (
                    stats.evals, stats.suppressed)
            if not watchpoint.enabled:
                detail += (" DISARMED: %s" % watchpoint.disarm_error
                           if watchpoint.disarm_error is not None
                           else " disabled")
            self._write("#%d %-6s %-16s %d hit(s)%s"
                        % (index, watchpoint.action, watchpoint.name,
                           watchpoint.hit_count(), detail))
        for breakpoint in debugger.breakpoints.values():
            self._write("break %-16s %d hit(s)"
                        % (breakpoint.func_name, breakpoint.hits))
        cpu = debugger.cpu
        self._write("pc=0x%08x  %d instructions, %d cycles"
                    % (cpu.pc, cpu.instructions, cpu.cycles))

    def _cmd_disasm(self, args: List[str]) -> None:
        if not args:
            self._write("usage: disasm FUNCTION")
            return
        try:
            self._write(self.debugger.disassemble(args[0]))
        except KeyError:
            self._write("no function %r" % args[0])

    def _cmd_checkpoint(self, args: List[str]) -> None:
        self._checkpoint = self.debugger.checkpoint()
        self._write("checkpoint taken at pc=0x%08x"
                    % self.debugger.cpu.pc)

    def _cmd_restore(self, args: List[str]) -> None:
        if self._checkpoint is None:
            self._write("no checkpoint (use: checkpoint)")
            return
        self.debugger.restore(self._checkpoint)
        self._finished = False
        self._write("restored to pc=0x%08x" % self.debugger.cpu.pc)

    def _cmd_record(self, args: List[str]) -> None:
        if self.debugger.recording:
            self._write("already recording")
            return
        stride = int(args[0]) if args else None
        recorder = self.debugger.record(stride=stride)
        self._write("recording (keyframe stride %d instructions)"
                    % recorder.stride)

    def _cmd_reverse_continue(self, args: List[str]) -> None:
        reason = self.debugger.reverse_continue()
        self._finished = False
        if reason == "watch":
            watchpoint = self.debugger.stopped_watch
            self._write("stopped backwards: %s = %s (instruction %d)"
                        % (watchpoint.name, watchpoint.last_value(),
                           self.debugger.cpu.instructions))
        else:
            self._write("at the start of the recording")

    def _cmd_reverse_step(self, args: List[str]) -> None:
        count = int(args[0]) if args else 1
        reason = self.debugger.reverse_step(count)
        self._finished = False
        cpu = self.debugger.cpu
        if reason == "replay-start":
            self._write("at the start of the recording")
            return
        insn = cpu.code.at(cpu.pc)
        self._write("pc=0x%08x: %s" % (cpu.pc, insn))

    def _cmd_last_write(self, args: List[str]) -> None:
        if not args:
            self._write("usage: lastwrite EXPR [func]")
            return
        func = args[1] if len(args) > 1 else None
        answer = self.debugger.last_write(args[0], func)
        if answer is None:
            self._write("%s was never written while recorded" % args[0])
            return
        from repro.isa.instructions import to_signed
        self._write("%s last written at pc=0x%08x (instruction %d): "
                    "%d -> %d" % (args[0], answer.pc, answer.index,
                                  to_signed(answer.old),
                                  to_signed(answer.new)))

    def _cmd_help(self, args: List[str]) -> None:
        self._write("commands: watch trace cond trans unwatch break "
                    "run/continue step print info disasm checkpoint "
                    "restore record rc rs lastwrite quit")
        self._write('  cond EXPR "PRED" [func]: stop when PRED holds '
                    '($value, $old, $addr, $size, globals)')
        self._write('  trans EXPR "PRED" [rise|fall|change] [func]: '
                    "stop when PRED's truth changes")


def _stdout_write(text: str) -> None:
    print(text)


def run_repl(source: str, lang: str = "C",
             strategy: str = "BitmapInlineRegisters",
             optimize: Optional[str] = "full") -> None:
    """Start an interactive session on mini-C *source*."""
    debugger = Debugger.for_source(source, lang=lang, strategy=strategy,
                                   optimize=optimize)
    repl = DebuggerRepl(debugger)
    print("Practical Data Breakpoints — interactive debugger "
          "(type 'help')")
    repl.loop(input)
