"""Fault isolation (§5): restrict which code may write a data structure.

"Data breakpoints can be combined with control breakpoints to support
fault isolation.  Using this technique, programmers can prevent a
subset of their program's code from accessing a given data structure.
For example, a programmer could detect corruption of library data
structures such as those used by a memory allocator."

The isolator watches a region and attributes every hit to the write
site (and thus the function) that produced it; writes from functions
outside the allow-list are violations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.instrument.rewriter import InstrumentResult
from repro.isa.registers import REGISTER_IDS

_I7 = REGISTER_IDS["%i7"]


def attribute_hit(cpu, inst: InstrumentResult) -> Optional[int]:
    """Best-effort mapping of a monitor-hit trap to its write site.

    For inlined checks the trap lies just after the checked store; for
    procedure-call checks the call site is in ``%i7`` of the routine's
    window.  Scan backwards from there for the nearest site-carrying
    instruction.
    """
    code = cpu.code
    candidates = [cpu.pc]
    candidates.append(cpu.regs.read(_I7))
    for start in candidates:
        try:
            index = code.index_of(start & ~3)
        except Exception:
            continue
        for back in range(0, 80):
            if index - back < 0:
                break
            insn = code.insns[index - back]
            if insn is not None and insn.site is not None and \
                    insn.tag == "orig":
                return insn.site
    return None


class Violation:
    __slots__ = ("site", "func", "addr", "size")

    def __init__(self, site: Optional[int], func: str, addr: int,
                 size: int):
        self.site = site
        self.func = func
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return "<violation: %s wrote 0x%x (%d bytes) at site %s>" % (
            self.func, self.addr, self.size, self.site)


class FaultIsolator:
    """Enforce an allow-list of functions for writes to a region."""

    def __init__(self, debugger, allowed_functions: List[str]):
        self.debugger = debugger
        self.allowed: Set[str] = set(allowed_functions)
        self.violations: List[Violation] = []
        self._site_func: Dict[int, str] = {
            site.site: site.func for site in debugger.session.inst.sites}

    def protect(self, expression: str, func: Optional[str] = None):
        """Watch *expression* and attribute every write."""
        return self.debugger.watch(expression, func=func, action="call",
                                   callback=self._on_write)

    def _on_write(self, watchpoint, addr: int, size: int,
                  value: int) -> None:
        cpu = self.debugger.cpu
        site = attribute_hit(cpu, self.debugger.session.inst)
        func = self._site_func.get(site, "<unknown>")
        if func not in self.allowed:
            self.violations.append(Violation(site, func, addr, size))
