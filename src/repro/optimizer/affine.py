"""Expression DAGs for loop optimization (§4.3-§4.4).

Three related services:

* **invariance** — is an SSA value loop-invariant?
* **monotonic detection** — find header phis whose latch value adds a
  constant each iteration ("the value of each monotonic variable must
  increase or decrease monotonically during the execution of the loop");
* **expression DAG walking / code generation** — "to generate code for
  the moved checks, the optimizer walks the expression DAG for a,
  generating statements until it reaches loop invariant or constant
  operands".  Generated code computes values into the MRS-reserved
  registers in the loop pre-header.

Loads encountered while walking a DAG are re-evaluated optimistically,
exactly like the configuration the paper measured ("our implementation
does not check for either overflow or aliases", §4.6.2); the alias-list
machinery of §4.5 is modelled by reporting the alias addresses we relied
on (see ``ExprGen.alias_slots``), and can be enabled by clients.
"""

from __future__ import annotations

from repro.errors import ReproError

from typing import Dict, List, Optional, Tuple

from repro.ir.build import Block
from repro.ir.loops import Loop
from repro.ir.ssa import SsaInfo
from repro.ir.tac import Const, IrOp, SsaVar, SymAddr, walk_to_def
from repro.isa.registers import FP, register_name


# ---------------------------------------------------------------------------
# Invariance
# ---------------------------------------------------------------------------

_FOLD_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "smul": lambda a, b: a * b,
    "sll": lambda a, b: a << (b & 31),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}


def fold_constant(value, depth: int = 12):
    """If *value* is a compile-time constant (through moves, asserts and
    constant arithmetic — e.g. the ``n - 1`` loop bound the compiler
    materializes into a register), return its integer value."""
    if depth <= 0:
        return None
    if isinstance(value, Const):
        return value.value
    if not isinstance(value, SsaVar):
        return None
    value = walk_to_def(value)
    if isinstance(value, Const):
        return value.value
    if not isinstance(value, SsaVar) or value.def_op is None:
        return None
    op = value.def_op
    if op.kind == "move":
        return fold_constant(op.uses[0], depth - 1)
    if op.kind == "alu" and op.op in _FOLD_OPS:
        left = fold_constant(op.uses[0], depth - 1)
        right = fold_constant(op.uses[1], depth - 1)
        if left is not None and right is not None:
            return _FOLD_OPS[op.op](left, right)
    return None


def resolve_value(value, _active=None):
    """Resolve *value* through moves, asserts, and degenerate phis.

    Assert definitions preserve their operand's value, so a variable
    that is only re-defined by asserts inside a loop (e.g. the loop
    bound ``n`` in ``i < n``) is still the same value; the phis that SSA
    inserts to merge those assert versions are *degenerate* — every
    non-self operand resolves to the same underlying value — and are
    seen through here.
    """
    if _active is None:
        _active = set()
    value = walk_to_def(value)
    if not isinstance(value, SsaVar) or value.def_op is None:
        return value
    op = value.def_op
    if op.kind != "phi" or id(value) in _active:
        return value
    _active.add(id(value))
    resolved = set()
    result = None
    for operand in op.uses:
        inner = resolve_value(operand, _active)
        if inner is value:
            continue  # self-reference through the loop
        if isinstance(inner, SsaVar) and id(inner) in _active:
            continue
        key = id(inner) if isinstance(inner, SsaVar) else inner
        resolved.add(key if not isinstance(key, (Const, SymAddr))
                     else repr(key))
        result = inner
    _active.discard(id(value))
    if len(resolved) == 1 and result is not None:
        return result
    return value


def is_invariant(value, loop: Loop) -> bool:
    """Is *value* unchanged for the duration of *loop*?

    Constants and symbol addresses always are; an SSA variable is
    invariant when its (value-resolved) definition lies outside the
    loop body (including entry-undefined variables).
    """
    if isinstance(value, SsaVar) and fold_constant(value) is not None:
        return True
    value = resolve_value(value)
    if isinstance(value, (Const, SymAddr)):
        return True
    if isinstance(value, SsaVar):
        if value.def_op is None or value.def_op.block is None:
            return True
        return value.def_op.block.bid not in loop.body
    return False


# ---------------------------------------------------------------------------
# Monotonic variables
# ---------------------------------------------------------------------------

class MonotonicVar:
    """One monotonic variable of a loop (§4.3)."""

    __slots__ = ("phi", "entry_value", "step", "direction")

    def __init__(self, phi: IrOp, entry_value, step: int):
        self.phi = phi
        #: value on loop entry (the phi operand from outside the loop)
        self.entry_value = entry_value
        self.step = step
        self.direction = "inc" if step > 0 else "dec"

    def __repr__(self) -> str:
        return "<mono %r %+d>" % (self.phi.defs[0], self.step)


def find_monotonic_vars(loop: Loop) -> Dict[int, MonotonicVar]:
    """Monotonic variables of *loop*, keyed by id() of the phi's SSA var."""
    result: Dict[int, MonotonicVar] = {}
    header = loop.header
    for phi in header.phis:
        dest = phi.defs[0]
        entry_values = []
        latch_values = []
        for pred, value in zip(header.preds, phi.uses):
            if pred.bid in loop.body:
                latch_values.append(value)
            else:
                entry_values.append(value)
        if len(entry_values) != 1 or not latch_values:
            continue
        steps = [_constant_step(value, dest) for value in latch_values]
        if any(step is None or step == 0 for step in steps):
            continue
        if all(step > 0 for step in steps) or \
                all(step < 0 for step in steps):
            result[id(dest)] = MonotonicVar(phi, entry_values[0],
                                            steps[0])
    return result


def _constant_step(latch_value, phi_var: SsaVar) -> Optional[int]:
    """If latch_value == phi_var + c (through moves/asserts), return c."""
    total = 0
    value = latch_value
    for _ in range(16):
        value = walk_to_def(value)
        if value is phi_var:
            return total
        if not isinstance(value, SsaVar) or value.def_op is None:
            return None
        op = value.def_op
        if op.kind == "alu" and op.op in ("add", "sub"):
            left, right = op.uses
            if isinstance(right, Const):
                total += right.value if op.op == "add" else -right.value
                value = left
                continue
            if op.op == "add" and isinstance(left, Const):
                total += left.value
                value = right
                continue
        return None
    return None


def resolve_monotonic(value, monotonic: Dict[int, MonotonicVar]
                      ) -> Optional[MonotonicVar]:
    """If *value* is a (possibly asserted/copied) monotonic phi, find it."""
    base = walk_to_def(value)
    if isinstance(base, SsaVar):
        return monotonic.get(id(base))
    return None


# ---------------------------------------------------------------------------
# Affine decomposition: value = sum(coef * atom) + const
# ---------------------------------------------------------------------------

class Affine:
    __slots__ = ("terms", "const")

    def __init__(self):
        #: id(atom SsaVar/SymAddr) -> (atom, coefficient)
        self.terms: Dict[int, Tuple[object, int]] = {}
        self.const = 0

    def add_term(self, atom, coef: int) -> None:
        key = id(atom)
        if key in self.terms:
            old_atom, old_coef = self.terms[key]
            new_coef = old_coef + coef
            if new_coef:
                self.terms[key] = (old_atom, new_coef)
            else:
                del self.terms[key]
        else:
            self.terms[key] = (atom, coef)

    def scale(self, factor: int) -> None:
        self.terms = {k: (atom, coef * factor)
                      for k, (atom, coef) in self.terms.items()}
        self.const *= factor

    def merge(self, other: "Affine", sign: int) -> None:
        for atom, coef in other.terms.values():
            self.add_term(atom, sign * coef)
        self.const += sign * other.const


def decompose_affine(value, loop: Loop,
                     monotonic: Dict[int, MonotonicVar],
                     depth: int = 24) -> Optional[Affine]:
    """Decompose *value* into an affine sum whose atoms are either
    loop-invariant values or monotonic variables of *loop*."""
    affine = Affine()
    if _decompose(value, loop, monotonic, affine, 1, depth):
        return affine
    return None


def _decompose(value, loop: Loop, monotonic, affine: Affine,
               coef: int, depth: int) -> bool:
    if depth <= 0:
        return False
    if isinstance(value, Const):
        affine.const += coef * value.value
        return True
    if isinstance(value, SymAddr):
        affine.add_term(value, coef)
        return True
    if value is None:
        return True
    if not isinstance(value, SsaVar):
        return False
    folded = fold_constant(value)
    if folded is not None:
        affine.const += coef * folded
        return True
    mono = resolve_monotonic(value, monotonic)
    if mono is not None:
        affine.add_term(walk_to_def(value), coef)
        return True
    if is_invariant(value, loop):
        affine.add_term(value, coef)
        return True
    op = value.def_op
    if op is None:
        affine.add_term(value, coef)
        return True
    if op.kind == "move":
        return _decompose(op.uses[0], loop, monotonic, affine, coef,
                          depth - 1)
    if op.kind == "assert":
        position = op.defs.index(value)
        return _decompose(op.uses[position], loop, monotonic, affine,
                          coef, depth - 1)
    if op.kind == "alu":
        left, right = op.uses
        if op.op == "add":
            return (_decompose(left, loop, monotonic, affine, coef,
                               depth - 1)
                    and _decompose(right, loop, monotonic, affine, coef,
                                   depth - 1))
        if op.op == "sub":
            return (_decompose(left, loop, monotonic, affine, coef,
                               depth - 1)
                    and _decompose(right, loop, monotonic, affine,
                                   -coef, depth - 1))
        if op.op == "sll":
            shift = fold_constant(right)
            if shift is not None:
                return _decompose(left, loop, monotonic, affine,
                                  coef << shift, depth - 1)
        if op.op == "smul":
            factor = fold_constant(right)
            if factor is not None:
                return _decompose(left, loop, monotonic, affine,
                                  coef * factor, depth - 1)
            factor = fold_constant(left)
            if factor is not None:
                return _decompose(right, loop, monotonic, affine,
                                  coef * factor, depth - 1)
    return False


# ---------------------------------------------------------------------------
# Expression trees and pre-header code generation
# ---------------------------------------------------------------------------

class ExprGenError(ReproError):
    """The expression cannot be recomputed in the pre-header."""


class ExprGen:
    """Generates assembly evaluating SSA values at a loop pre-header.

    Values are recomputed from their defining ops, bottoming out at
    constants, symbol addresses, registers that still hold the wanted
    SSA version at the pre-header, and promoted variables' home slots.
    """

    def __init__(self, ssa: SsaInfo, preheader_exit_block: Block,
                 promoted, regs: Tuple[str, ...] = ("%g4", "%g6", "%g7")):
        self.ssa = ssa
        self.block = preheader_exit_block
        self.promoted = promoted
        self.regs = regs
        self.lines: List[str] = []
        #: memory addresses whose loads the generated code re-executes —
        #: the §4.5 alias list (reported to the plan for optional
        #: alias-region creation)
        self.alias_slots: List[str] = []

    # -- leaf access -------------------------------------------------------------

    def _holds_at_preheader(self, var: SsaVar) -> bool:
        return self.ssa.exit_version.get((self.block.bid, var.name)) \
            is var

    def gen_value(self, value, target: str, depth: int = 20,
                  avoid=frozenset()) -> None:
        """Emit lines leaving *value* in register *target*.  Registers
        in *avoid* hold live values and are never used as scratch."""
        if depth <= 0:
            raise ExprGenError("expression too deep")
        if isinstance(value, Const):
            self.lines.append("set %d, %s" % (value.value, target))
            return
        if isinstance(value, SymAddr):
            suffix = "+%d" % value.addend if value.addend else ""
            self.lines.append("set %s%s, %s" % (value.name, suffix,
                                                target))
            return
        if not isinstance(value, SsaVar):
            raise ExprGenError("cannot evaluate %r" % (value,))
        folded = fold_constant(value)
        if folded is not None:
            self.lines.append("set %d, %s" % (folded, target))
            return
        name = value.name
        if self._holds_at_preheader(value):
            if name[0] == "r":
                if name[1] != FP and not self._register_stable(name[1]):
                    raise ExprGenError("register %s not stable"
                                       % register_name(name[1]))
                self.lines.append("mov %s, %s"
                                  % (register_name(name[1]), target))
                return
            if name[0] == "v":
                self._gen_slot_load(name, target)
                return
        op = value.def_op
        if op is None:
            raise ExprGenError("no definition for %r" % value)
        if op.kind == "move":
            self.gen_value(op.uses[0], target, depth - 1, avoid)
            return
        if op.kind == "assert":
            position = op.defs.index(value)
            self.gen_value(op.uses[position], target, depth - 1, avoid)
            return
        if op.kind == "phi" and name[0] == "v":
            # a promoted variable's current value always lives in its
            # home slot (every IR def came from a real store)
            self._gen_slot_load(name, target)
            return
        if op.kind == "alu":
            self._gen_alu(op, target, depth, avoid)
            return
        if op.kind == "ld":
            self._gen_load(op, target, depth, avoid)
            return
        resolved = resolve_value(value)
        if resolved is not value:
            self.gen_value(resolved, target, depth - 1, avoid)
            return
        raise ExprGenError("cannot re-evaluate %s op" % op.kind)

    def _register_stable(self, rid: int) -> bool:
        # Only %fp is guaranteed stable between the defining point and
        # the pre-header for re-reads; other registers are used only via
        # the exit-version check in gen_value (which is exact).
        return True

    def _temp(self, target: str, avoid=()) -> str:
        for reg in self.regs:
            if reg != target and reg not in avoid:
                return reg
        raise ExprGenError("no free temporary register")

    def _gen_slot_load(self, name: Tuple, target: str) -> None:
        entry = self.promoted.get(name)
        if entry is None:
            raise ExprGenError("unpromoted pseudo %r" % (name,))
        if entry.kind in ("local", "param"):
            self.lines.append("ld [%%fp%+d], %s" % (entry.offset, target))
            self.alias_slots.append("%%fp%+d" % entry.offset)
        else:
            self.lines.append("set %s+%d, %s"
                              % (entry.label, entry.label_offset, target))
            self.lines.append("ld [%s], %s" % (target, target))
            self.alias_slots.append("%s+%d" % (entry.label,
                                               entry.label_offset))

    def _gen_alu(self, op: IrOp, target: str, depth: int,
                 avoid=frozenset()) -> None:
        left, right = op.uses
        mnemonic = {"add": "add", "sub": "sub", "and": "and", "or": "or",
                    "xor": "xor", "sll": "sll", "srl": "srl",
                    "sra": "sra", "smul": "smul",
                    "sdiv": "sdiv"}.get(op.op)
        if mnemonic is None:
            raise ExprGenError("cannot re-evaluate alu %s" % op.op)
        if isinstance(right, Const) and -4096 <= right.value <= 4095:
            self.gen_value(left, target, depth - 1, avoid)
            self.lines.append("%s %s, %d, %s"
                              % (mnemonic, target, right.value, target))
            return
        self.gen_value(left, target, depth - 1, avoid)
        temp = self._temp(target, avoid)
        self.gen_value(right, temp, depth - 1,
                       frozenset(avoid) | {target})
        self.lines.append("%s %s, %s, %s" % (mnemonic, target, temp,
                                             target))

    def _gen_load(self, op: IrOp, target: str, depth: int,
                  avoid=frozenset()) -> None:
        base, index, disp = op.mem
        self.gen_value(base, target, depth - 1, avoid)
        if index is not None:
            temp = self._temp(target, avoid)
            self.gen_value(index, temp, depth - 1,
                           frozenset(avoid) | {target})
            self.lines.append("add %s, %s, %s" % (target, temp, target))
            if disp:
                self.lines.append("add %s, %d, %s" % (target, disp,
                                                      target))
            self.lines.append("ld [%s], %s" % (target, target))
        else:
            self.lines.append("ld [%s%+d], %s" % (target, disp, target)
                              if disp else "ld [%s], %s"
                              % (target, target))
        self.alias_slots.append("<dynamic>")

    # -- affine evaluation -----------------------------------------------------

    def gen_affine(self, affine: Affine, target: str,
                   substitute: Optional[Dict[int, object]] = None
                   ) -> None:
        """Emit lines computing an affine sum into *target*.

        *substitute* maps id(atom) -> replacement value (used to plug a
        monotonic variable's entry value or assert bound in)."""
        substitute = substitute or {}
        first = True
        temp = self._temp(target)
        for key, (atom, coef) in affine.terms.items():
            value = substitute.get(key, atom)
            where = target if first else temp
            self.gen_value(value, where,
                           avoid=frozenset() if first
                           else frozenset({target}))
            if coef != 1:
                scratch = self._temp(where, avoid={target, temp})
                self._scale(where, coef, scratch)
            if not first:
                self.lines.append("add %s, %s, %s" % (target, temp,
                                                      target))
            first = False
        if first:
            self.lines.append("set %d, %s" % (affine.const, target))
        elif affine.const:
            if -4096 <= affine.const <= 4095:
                self.lines.append("add %s, %d, %s"
                                  % (target, affine.const, target))
            else:
                self.lines.append("set %d, %s" % (affine.const, temp))
                self.lines.append("add %s, %s, %s" % (target, temp,
                                                      target))

    def _scale(self, reg: str, coef: int,
               scratch: Optional[str] = None) -> None:
        if coef == 0:
            self.lines.append("mov 0, %s" % reg)
        elif coef > 0 and coef & (coef - 1) == 0:
            self.lines.append("sll %s, %d, %s"
                              % (reg, coef.bit_length() - 1, reg))
        elif -4096 <= coef <= 4095:
            self.lines.append("smul %s, %d, %s" % (reg, coef, reg))
        elif scratch is not None:
            self.lines.append("set %d, %s" % (coef, scratch))
            self.lines.append("smul %s, %s, %s" % (reg, scratch, reg))
        else:
            raise ExprGenError("cannot scale by %d without scratch"
                               % coef)

    def take_lines(self) -> List[str]:
        lines = self.lines
        self.lines = []
        return lines
