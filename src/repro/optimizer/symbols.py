"""Symbol-table pattern matching support (§4.2).

Collects the ``.stabs`` debugging records *before assembly* (the
optimizer runs between compiler and assembler, so data addresses are
still symbolic) and answers the question pattern matching asks: does
this address expression — ``%fp + c`` or ``data_label + c`` — fall
inside a known variable?

A *known write* (exact static target inside some variable's storage)
can run unchecked: the MRS re-inserts its check with ``PreMonitor``
when any symbol covering that address is monitored, and aliased writes
through pointers are still caught by the ordinary checks against the
bitmap (§4.2).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.asm.ast import Directive, Reg, Statement, Sym


class StaticSym(NamedTuple):
    """One pre-assembly symbol: frame-relative or data-label-relative."""

    name: str
    kind: str                 # local | param | global | register
    func: Optional[str]       # scope, None for globals
    offset: int               # %fp offset (local/param)
    label: str                # data label (global)
    label_offset: int         # offset within the label (field stabs)
    size: int
    elem: Optional[int]

    def is_scalar(self) -> bool:
        return self.size == 4 and self.elem is None


class StaticSymbols:
    """All ``.stabs`` records of a statement list, pre-assembly."""

    def __init__(self):
        #: function -> its local/param entries
        self.locals: Dict[str, List[StaticSym]] = {}
        #: data label -> global entries anchored there
        self.globals_by_label: Dict[str, List[StaticSym]] = {}
        #: (func|None, name) -> entry
        self.by_name: Dict[Tuple[Optional[str], str], StaticSym] = {}
        #: functions whose locals may be aliased (address escapes)
        self.register_vars: Dict[str, List[str]] = {}

    def add(self, entry: StaticSym) -> None:
        if entry.kind in ("local", "param"):
            self.locals.setdefault(entry.func or "", []).append(entry)
        elif entry.kind == "global":
            self.globals_by_label.setdefault(entry.label, []).append(entry)
        self.by_name[(entry.func, entry.name)] = entry

    # -- pattern matching ------------------------------------------------------

    def locals_covering(self, func: str, offset: int,
                        width: int) -> List[StaticSym]:
        """Entries of *func* whose storage covers [offset, offset+width)."""
        found = []
        for entry in self.locals.get(func, ()):
            if entry.offset <= offset and \
                    offset + width <= entry.offset + entry.size:
                found.append(entry)
        return found

    def globals_covering(self, label: str, offset: int,
                         width: int) -> List[StaticSym]:
        found = []
        for entry in self.globals_by_label.get(label, ()):
            if entry.label_offset <= offset and \
                    offset + width <= entry.label_offset + entry.size:
                found.append(entry)
        return found

    def exact_local_scalar(self, func: str,
                           offset: int) -> Optional[StaticSym]:
        for entry in self.locals.get(func, ()):
            if entry.offset == offset and entry.is_scalar():
                return entry
        return None

    def exact_global_scalar(self, label: str,
                            offset: int) -> Optional[StaticSym]:
        for entry in self.globals_by_label.get(label, ()):
            if entry.label_offset == offset and entry.is_scalar():
                return entry
        return None


def collect_static_symbols(statements: List[Statement]) -> StaticSymbols:
    """Scan ``.proc``/``.stabs`` directives into a StaticSymbols table."""
    symbols = StaticSymbols()
    func: Optional[str] = None
    for stmt in statements:
        if not isinstance(stmt, Directive):
            continue
        if stmt.name == "proc":
            arg = stmt.args[0]
            func = arg.name if isinstance(arg, Sym) else str(arg)
        elif stmt.name == "endproc":
            func = None
        elif stmt.name == "stabs":
            entry = _parse_stab(stmt, func)
            if entry is not None:
                symbols.add(entry)
    return symbols


def _parse_stab(stmt: Directive, func: Optional[str]
                ) -> Optional[StaticSym]:
    args = stmt.args
    name = str(args[0])
    kind = args[1].name if isinstance(args[1], Sym) else str(args[1])
    if kind in ("local", "param"):
        offset = int(args[2])
        size = int(args[3])
        elem = int(args[4]) if len(args) > 4 else None
        return StaticSym(name, kind, func, offset, "", 0, size, elem)
    if kind == "global":
        sym = args[2]
        if not isinstance(sym, Sym):
            return None
        size = int(args[3])
        elem = int(args[4]) if len(args) > 4 else None
        return StaticSym(name, "global", None, 0, sym.name, sym.addend,
                         size, elem)
    if kind == "register":
        if isinstance(args[2], Reg):
            return StaticSym(name, "register", func, 0, "", 0, 4, None)
    return None
