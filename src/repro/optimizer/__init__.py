"""Write-check elimination (§4).

``build_plan`` runs symbol-table pattern matching and (in "full" mode)
loop optimization, producing the OptimizationPlan the rewriter applies.
"""

from repro.optimizer.pipeline import build_plan

__all__ = ["build_plan"]
