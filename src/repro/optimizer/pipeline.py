"""Optimizer driver: assembly statements -> OptimizationPlan (§4).

Modes:

* ``"sym"``  — symbol-table pattern matching only (Table 2's "Sym"):
  known writes run unchecked (re-inserted by ``PreMonitor``), at the
  cost of %fp-definition and indirect-jump verification;
* ``"full"`` — symbol matching plus loop optimization (Table 2's
  "Full"): loop-invariant check motion and monotonic range checks;
* ``"ipa"``  — everything "full" does, then the interprocedural
  points-to/range pass of :mod:`repro.analysis` eliminates stores
  whose addresses provably stay within named static data even when
  they flow through callees.

The plan is consumed by :class:`repro.instrument.rewriter.Rewriter`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.asm.ast import Statement
from repro.asm.parser import parse
from repro.core.layout import DEFAULT_LAYOUT, MonitorLayout
from repro.errors import OptimizeModeError
from repro.faults import FaultPlan
from repro.instrument.plan import ELIM_SYMBOL, OptimizationPlan
from repro.instrument.rewriter import _find_lang
from repro.instrument.writes import enumerate_write_sites
from repro.ir.build import apply_promotion, build_ir
from repro.ir.loops import find_loops
from repro.ir.ssa import convert_to_ssa
from repro.optimizer.asserts import insert_asserts
from repro.optimizer.loopopt import LoopOptimizer
from repro.optimizer.symbols import collect_static_symbols

#: every mode build_plan accepts, in increasing aggressiveness
VALID_MODES = ("sym", "full", "ipa")


def build_plan(statements_or_source, mode: str = "full",
               layout: Optional[MonitorLayout] = None,
               optimistic_loads: bool = True,
               guard_aliases: bool = False,
               guard_overflow: bool = False,
               faults: Optional[FaultPlan] = None
               ) -> Tuple[List[Statement], OptimizationPlan]:
    """Analyze a program and build its optimization plan.

    Returns ``(statements, plan)`` — the statements must be passed on to
    the rewriter unchanged (write-site numbering is shared through
    them).  ``faults`` exposes the ``analysis.unsound`` injection point
    of the ipa pass to the soundness-auditor tests.
    """
    if mode not in VALID_MODES:
        raise OptimizeModeError("unknown optimization mode",
                                mode=mode, valid=VALID_MODES)
    if isinstance(statements_or_source, str):
        statements = parse(statements_or_source)
    else:
        statements = statements_or_source
    layout = layout if layout is not None else DEFAULT_LAYOUT
    lang = _find_lang(statements)

    enumerate_write_sites(statements, lang)  # stamps stmt.site
    symbols = collect_static_symbols(statements)
    funcs, escaped_labels = build_ir(statements, symbols)

    plan = OptimizationPlan()
    plan.reset_stats()
    plan.reserved_registers = 4 if mode == "sym" else 5

    # -- §4.2 symbol-table pattern matching ------------------------------
    sym_stats = plan.stats_for("symbol")
    for func in funcs:
        for access in func.accesses:
            if access.kind != "st":
                continue
            site = access.op.site
            if site is None:
                continue
            sym_stats.seen += 1
            if not access.covering:
                continue
            plan.merge_site(site, ELIM_SYMBOL,
                            why="symbol: stabs match %s"
                            % ", ".join(sorted(
                                entry.name
                                for entry in access.covering)))
            sym_stats.eliminated += 1
            for entry in access.covering:
                key = (entry.func or "", entry.name)
                sites = plan.symbol_sites.setdefault(key, [])
                if site not in sites:
                    sites.append(site)

    # the supporting obligations: verify %fp definitions and indirect
    # jumps so the control-flow assumptions of the analysis hold
    for func in funcs:
        if func.save_stmt_index >= 0:
            plan.fp_push_indices.append(func.save_stmt_index)
        for ret_index in func.ret_stmt_indices:
            plan.fp_check_indices.append(ret_index)
            plan.jmp_check_indices.append(ret_index)

    # -- §4.3/§4.4 loop optimization ---------------------------------------
    ssa_infos = []
    if mode in ("full", "ipa"):
        plan.promoted = apply_promotion(funcs, escaped_labels)
        loop_stats = plan.stats_for("loop")
        loop_stats.seen = sym_stats.seen - sym_stats.eliminated
        next_loop_id = 0
        for func in funcs:
            insert_asserts(func)
            ssa = convert_to_ssa(func)
            if not ssa.order:
                continue
            ssa_infos.append(ssa)
            loops = find_loops(func, ssa.order)
            optimizer = LoopOptimizer(func, ssa, layout, plan,
                                      statements, next_loop_id,
                                      optimistic_loads, guard_aliases,
                                      guard_overflow)
            next_loop_id = optimizer.optimize(loops)
        for loop_id, sites in plan.loop_sites.items():
            for site in sites:
                loop_stats.eliminated += 1
                loop_stats.guarded += 1
                plan.why_eliminated.setdefault(
                    site, "loop %d: %s check hoisted to pre-header "
                    "guard" % (loop_id, plan.eliminate.get(site, "?")))

    # -- interprocedural elimination (repro.analysis) ----------------------
    if mode == "ipa":
        from repro.analysis import run_ipa_pass
        run_ipa_pass(statements, funcs, ssa_infos, symbols, plan,
                     faults=faults)

    return statements, plan


def optimize_and_instrument(asm_source: str, mode: str = "full",
                            strategy: str = "BitmapInlineRegisters",
                            layout: Optional[MonitorLayout] = None,
                            optimistic_loads: bool = True):
    """Convenience: build a plan and an InstrumentResult in one step."""
    from repro.instrument.rewriter import Rewriter
    from repro.instrument.strategies import make_strategy

    statements, plan = build_plan(asm_source, mode, layout,
                                  optimistic_loads)
    lang = _find_lang(statements)
    strat = make_strategy(strategy, layout)
    rewriter = Rewriter(strat, plan)
    return rewriter.rewrite(statements, lang)
