"""Loop-based write-check elimination (§4.3-§4.4).

For each natural loop (inner to outer) and each still-checked write in
it, the optimizer asks Figure 4 (:mod:`repro.optimizer.bounds`) for the
address's bound classes:

* loop-invariant address -> eliminate the in-loop check and emit a
  standard write check in the pre-header;
* monotonic address -> eliminate the check and emit a *range check* in
  the pre-header against the superpage count table (§4.3's "efficient
  data structure ... at most three memory accesses").

If a pre-header check succeeds at runtime it traps to the MRS
(``ta 0x45`` with the loop id in ``%g6``), which re-inserts the
eliminated checks via their Kessler patches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.layout import MonitorLayout
from repro.instrument.plan import (ELIM_LOOP_INVARIANT, ELIM_RANGE,
                                   OptimizationPlan, PreheaderCheck)
from repro.ir.build import FuncIr
from repro.ir.cfg import dominates
from repro.ir.loops import Loop, preheader_anchor
from repro.ir.ssa import SsaInfo
from repro.ir.tac import Const, IrOp, SsaVar, SymAddr, walk_to_def
from repro.optimizer.affine import (Affine, ExprGen, ExprGenError,
                                    MonotonicVar, decompose_affine,
                                    find_monotonic_vars, is_invariant,
                                    resolve_monotonic)
from repro.optimizer.bounds import classify_address, propagate_bounds

TRAP_PREHEADER_HIT = 0x45


class LoopOptimizer:
    """Optimizes the loops of one function."""

    def __init__(self, func: FuncIr, ssa: SsaInfo,
                 layout: MonitorLayout, plan: OptimizationPlan,
                 statements, next_loop_id: int,
                 optimistic_loads: bool = True,
                 guard_aliases: bool = False,
                 guard_overflow: bool = False):
        self.func = func
        self.ssa = ssa
        self.layout = layout
        self.plan = plan
        self.statements = statements
        self.next_loop_id = next_loop_id
        self.optimistic_loads = optimistic_loads
        #: §4.5 alias safety: refuse an optimization whose pre-header
        #: code re-reads memory that a store in the loop might alias.
        #: The paper's measured configuration ran without this ("does
        #: not check for ... aliases"); enabling it trades eliminated
        #: checks for static soundness against in-loop bound mutation.
        self.guard_aliases = guard_aliases
        #: §4.5.1 overflow safety: reject range checks whose statically
        #: evaluable bounds leave the 32-bit address space.
        self.guard_overflow = guard_overflow
        self._label_counter = 0

    # -- driver --------------------------------------------------------------

    def optimize(self, loops: List[Loop]) -> int:
        """Process loops inner-to-outer; returns the next free loop id."""
        for loop in loops:
            self._optimize_loop(loop)
        return self.next_loop_id

    def _optimize_loop(self, loop: Loop) -> None:
        anchor = preheader_anchor(self.func, loop, self.statements)
        if anchor is None:
            return
        preheader_block = self._entry_pred(loop)
        if preheader_block is None:
            return
        monotonic = find_monotonic_vars(loop)
        table = propagate_bounds(loop, self.ssa.order, monotonic,
                                 self.optimistic_loads)
        has_unknown_store = self._loop_has_unknown_store(loop)
        loop_id = None
        li_lines: List[str] = []
        range_lines: List[str] = []
        eliminated: List[int] = []

        for op in self._loop_stores(loop):
            if op.site is None or op.site in self.plan.eliminate:
                continue
            base, index, disp = op.mem
            kind = classify_address(table, [base, index,
                                            Const(disp) if disp else None])
            if kind is None:
                continue
            if loop_id is None:
                loop_id = self.next_loop_id
            if kind == "li":
                result = self._gen_li_check(op, preheader_block, loop_id)
            else:
                result = self._gen_range_check(op, loop, monotonic,
                                               preheader_block, loop_id)
            if result is None:
                continue
            lines, alias_slots = result
            if self.guard_aliases and alias_slots and has_unknown_store:
                # §4.5: a store in the loop may alias the memory the
                # pre-header re-reads; keep the in-loop check
                continue
            if kind == "li":
                li_lines.extend(lines)
                self.plan.merge_site(op.site, ELIM_LOOP_INVARIANT)
            else:
                range_lines.extend(lines)
                self.plan.merge_site(op.site, ELIM_RANGE)
            eliminated.append(op.site)

        if not eliminated:
            return
        self.next_loop_id = loop_id + 1
        self.plan.loop_sites[loop_id] = eliminated
        if li_lines:
            self.plan.preheaders.append(
                PreheaderCheck(loop_id, "li", anchor,
                               self._guarded(li_lines, "li")))
        if range_lines:
            self.plan.preheaders.append(
                PreheaderCheck(loop_id, "range", anchor,
                               self._guarded(range_lines, "range")))

    # -- helpers ---------------------------------------------------------------

    def _entry_pred(self, loop: Loop):
        entries = [p for p in loop.header.preds
                   if p.bid not in loop.body]
        if len(entries) != 1:
            return None
        return entries[0]

    def _loop_stores(self, loop: Loop) -> List[IrOp]:
        stores = []
        for block in self.ssa.order:
            if block.bid not in loop.body:
                continue
            for op in block.ops:
                if op.kind == "st":
                    stores.append(op)
        return stores

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return ".Lph_%s_%d_%d" % (hint, self.next_loop_id,
                                  self._label_counter)

    def _guarded(self, body: List[str], kind: str) -> List[str]:
        """Wrap check lines with the disabled-flag branch; tag the first
        instruction distinctly so executions can be counted."""
        skip = self._label("skip" + kind)
        lines = ["tst %g2",
                 ".tag preheader",
                 "bne %s" % skip,
                 "nop"]
        lines += body
        lines.append("%s:" % skip)
        return lines

    # -- loop-invariant checks ----------------------------------------------------

    def _gen_li_check(self, op: IrOp, preheader_block,
                      loop_id: int):
        base, index, disp = op.mem
        gen = ExprGen(self.ssa, preheader_block, self.plan.promoted)
        try:
            gen.gen_value(base, "%g4")
            if index is not None:
                gen.gen_value(index, "%g6", avoid=frozenset({"%g4"}))
                gen.lines.append("add %g4, %g6, %g4")
            if disp:
                gen.lines.append("add %%g4, %d, %%g4" % disp)
        except ExprGenError:
            return None
        lines = gen.take_lines()
        ok = self._label("liok")
        mask = self.layout.segment_words - 1
        lines += [
            "srl %%g4, %d, %%g6" % self.layout.seg_shift,
            "sll %g6, 2, %g6",
            "ld [%g5+%g6], %g7",
            "tst %g7",
            "be %s" % ok,
            "nop",
            # full bitmap bit test (scratch %g6, %m0)
            "srl %g4, 2, %g6",
            "and %%g6, %d, %%g6" % mask,
            "srl %g6, 5, %m0",
            "sll %m0, 2, %m0",
            "ld [%g7+%m0], %g7",
            "and %g6, 31, %g6",
            "srl %g7, %g6, %g7",
            "andcc %g7, 1, %g0",
            "be %s" % ok,
            "nop",
            "mov %d, %%g6" % loop_id,
            "ta 0x%x" % TRAP_PREHEADER_HIT,
            "%s:" % ok,
        ]
        return lines, gen.alias_slots

    # -- range checks -----------------------------------------------------------

    def _gen_range_check(self, op: IrOp, loop: Loop,
                         monotonic: Dict[int, MonotonicVar],
                         preheader_block, loop_id: int):
        base, index, disp = op.mem
        affine = Affine()
        for part, sign in ((base, 1), (index, 1)):
            if part is None:
                continue
            partial = decompose_affine(part, loop, monotonic)
            if partial is None:
                return None
            affine.merge(partial, sign)
        affine.const += disp

        lo_subst: Dict[int, object] = {}
        hi_subst: Dict[int, object] = {}
        lo_adjust = hi_adjust = 0
        saw_monotonic = False
        for key, (atom, coef) in affine.terms.items():
            mono = resolve_monotonic(atom, monotonic) \
                if isinstance(atom, SsaVar) else None
            if mono is None:
                if isinstance(atom, SsaVar) and \
                        not is_invariant(atom, loop):
                    return None
                continue
            saw_monotonic = True
            if coef <= 0:
                return None  # negative scaling handled conservatively
            bound = self._assert_bound(op, loop, mono)
            if bound is None:
                return None
            bound_value, bound_adjust = bound
            if mono.direction == "inc":
                lo_subst[key] = mono.entry_value
                hi_subst[key] = bound_value
                hi_adjust += coef * bound_adjust
            else:
                hi_subst[key] = mono.entry_value
                lo_subst[key] = bound_value
                lo_adjust += coef * bound_adjust
        if not saw_monotonic:
            return None
        if self.guard_overflow and not self._bounds_fit(
                affine, lo_subst, hi_subst, lo_adjust, hi_adjust):
            return None

        gen = ExprGen(self.ssa, preheader_block, self.plan.promoted)
        try:
            lo_affine = _shifted(affine, lo_adjust)
            gen.gen_affine(lo_affine, "%g4", lo_subst)
            gen.regs = ("%g7", "%g6", "%m0")
            hi_affine = _shifted(affine, hi_adjust)
            saved = gen.lines
            gen.lines = []
            gen.gen_affine(hi_affine, "%g7", hi_subst)
            hi_lines = gen.lines
            gen.lines = saved + hi_lines
        except ExprGenError:
            return None
        lines = gen.take_lines()

        hit = self._label("rhit")
        ok = self._label("rok")
        lines += [
            "srl %%g4, %d, %%g4" % self.layout.superpage_shift,
            "srl %%g7, %d, %%g7" % self.layout.superpage_shift,
            "sub %g7, %g4, %g6",
            "cmp %g6, 1",
            "bgu %s" % hit,          # >2 superpages: conservative hit
            "nop",
            "set %d, %%g6" % self.layout.superpage_table_base,
            "sll %g4, 2, %g4",
            "ld [%g6+%g4], %g4",
            "tst %g4",
            "bne %s" % hit,
            "nop",
            "sll %g7, 2, %g7",
            "ld [%g6+%g7], %g7",
            "tst %g7",
            "be %s" % ok,
            "nop",
            "%s:" % hit,
            "mov %d, %%g6" % loop_id,
            "ta 0x%x" % TRAP_PREHEADER_HIT,
            "%s:" % ok,
        ]
        return lines, gen.alias_slots

    def _loop_has_unknown_store(self, loop: Loop) -> bool:
        """Is there a store in the loop whose target no analysis
        resolved (and which could therefore alias anything)?"""
        for op in self._loop_stores(loop):
            if op.site is not None and \
                    op.site not in self.plan.eliminate and \
                    op.site not in self._symbol_known_sites():
                return True
        return False

    def _symbol_known_sites(self):
        if not hasattr(self, "_known_cache"):
            known = set()
            for sites in self.plan.symbol_sites.values():
                known.update(sites)
            self._known_cache = known
        return self._known_cache

    def _bounds_fit(self, affine, lo_subst, hi_subst, lo_adjust,
                    hi_adjust) -> bool:
        """§4.5.1 overflow guard: when both bounds fold to integers,
        require them inside the 32-bit address space and ordered."""
        from repro.optimizer.affine import fold_constant
        from repro.ir.tac import SymAddr

        def static_value(substitution, adjust):
            total = affine.const + adjust
            for key, (atom, coef) in affine.terms.items():
                value = substitution.get(key, atom)
                if isinstance(value, SymAddr):
                    return None  # symbolic base: cannot overflow the
                                 # scaled index without folding
                folded = fold_constant(value) \
                    if not isinstance(value, int) else value
                if folded is None:
                    return None
                total += coef * folded
            return total

        lo = static_value(lo_subst, lo_adjust)
        hi = static_value(hi_subst, hi_adjust)
        if lo is None or hi is None:
            return True  # not statically evaluable: accept (paper mode)
        return -(1 << 31) <= lo <= hi < (1 << 32)

    def _usable_bound(self, value, loop: Loop) -> bool:
        """Can *value* serve as a pre-header-evaluable bound?

        Invariant values always can.  In the paper's optimistic
        configuration, a value loaded from an invariant address inside
        the loop also can (re-reading it in the pre-header assumes the
        loop does not alias it — the §4.5 alias list records the slot).
        """
        if is_invariant(value, loop):
            return True
        if not self.optimistic_loads:
            return False
        base = walk_to_def(value)
        if not isinstance(base, SsaVar) or base.def_op is None:
            return False
        op = base.def_op
        if op.kind != "ld" or op.mem is None:
            return False
        parts = [p for p in (op.mem[0], op.mem[1]) if p is not None]
        return all(is_invariant(p, loop) for p in parts)

    def _assert_bound(self, store: IrOp, loop: Loop,
                      mono: MonotonicVar) -> Optional[Tuple[object, int]]:
        """Find an assert bounding *mono* on the side its direction
        needs, valid at *store*.  Returns (bound value, adjust) where
        adjust corrects strict comparisons (i < n  =>  i <= n-1)."""
        want = ("lt", "le") if mono.direction == "inc" else ("gt", "ge")
        phi_var = mono.phi.defs[0]
        best: Optional[Tuple[object, int]] = None
        for block in self.ssa.order:
            if block.bid not in loop.body:
                continue
            for op in block.ops:
                if op.kind != "assert" or op.mem is None:
                    continue
                left, right = op.mem
                relation = op.relation
                if isinstance(left, SsaVar) and \
                        walk_to_def(left) is phi_var:
                    this, other = left, right
                elif isinstance(right, SsaVar) and \
                        walk_to_def(right) is phi_var:
                    # mirror the relation: (a REL b) == (b REL' a)
                    relation = {"lt": "gt", "le": "ge", "gt": "lt",
                                "ge": "le", "eq": "eq",
                                "ne": "ne"}[relation]
                    this, other = right, left
                else:
                    continue
                if relation not in want:
                    continue
                if not self._usable_bound(other, loop):
                    continue
                if not dominates(block, store.block):
                    continue
                adjust = 0
                if relation == "lt":
                    adjust = -1
                elif relation == "gt":
                    adjust = 1
                best = (other, adjust)
                return best
        return best


def _shifted(affine: Affine, delta: int) -> Affine:
    clone = Affine()
    clone.terms = dict(affine.terms)
    clone.const = affine.const + delta
    return clone
