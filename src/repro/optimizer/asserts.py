"""Assert definitions (§4.3.1).

"The post-processor converts the SPARC condition code and conditional
branch instructions into IR assert statements": for a conditional
branch whose condition codes come from a compare, each successor block
(when it has a unique predecessor) learns a relation between the
compared operands.  The assert re-defines both operands, so SSA
renaming gives each a fresh version whose bounds can be refined —
"the purpose of this re-definition is to determine precisely, for each
use of a variable, the symbolic lower and upper bounds of the value of
the variable".

Must run *before* SSA conversion.
"""

from __future__ import annotations

from typing import List

from repro.ir.build import CC, FuncIr, negate_relation
from repro.ir.tac import Const, IrOp, SymAddr

#: relations refined by asserts (signed compares only)
_USEFUL = {"lt", "le", "gt", "ge", "eq", "ne"}


def insert_asserts(func: FuncIr) -> int:
    """Insert assert ops; returns how many were inserted."""
    inserted = 0
    for block in func.blocks:
        if not block.ops:
            continue
        last = block.ops[-1]
        if last.kind != "branch":
            continue
        relation = last.relation
        if relation not in _USEFUL:
            continue
        operands = _find_cmp_operands(block)
        if operands is None:
            continue
        last.mem = operands
        left, right = operands
        if len(block.succs) < 2:
            continue
        taken, fallthrough = block.succs[0], block.succs[1]
        if taken is not fallthrough:
            _place(taken, block, relation, left, right)
            _place(fallthrough, block, negate_relation(relation), left,
                   right)
            inserted += 1
    return inserted


def _place(succ, pred, relation: str, left, right) -> None:
    # the relation only holds on entry via this edge, so the target must
    # have no other predecessors
    if len(succ.preds) != 1 or succ.preds[0] is not pred:
        return
    defs: List = []
    uses: List = []
    for operand in (left, right):
        if isinstance(operand, tuple):
            defs.append(operand)
            uses.append(operand)
        else:
            defs.append(None)
            uses.append(operand)
    # drop None placeholders but keep positional pairing via parallel lists
    real_defs = [d for d in defs if d is not None]
    if not real_defs:
        return
    op = IrOp("assert", list(defs), list(uses),
              succ.header_stmt_index, relation=relation)
    op.block = succ
    # remove None defs (constants are not re-defined) while keeping the
    # def/use positional correspondence used by walk_to_def
    keep = [index for index, d in enumerate(defs) if d is not None]
    op.defs = [defs[i] for i in keep]
    op.uses = [uses[i] for i in keep]
    #: mem records the full relation (left, right) including constants
    op.mem = (left, right)
    succ.ops.insert(0, op)


def _find_cmp_operands(block):
    """Locate the compare feeding this block's terminating branch and
    trace its operands through in-block copies.

    Runs after symbol promotion, so a compare of a freshly loaded
    promoted variable asserts on the *pseudo-variable* itself — every
    later use of the variable in the loop body then sees the refined
    bounds (the payoff of §4.2's pseudo-operand substitution).
    """
    for position in range(len(block.ops) - 1, -1, -1):
        op = block.ops[position]
        if CC not in op.defs:
            continue
        is_cmp = (op.kind == "alu" and op.op == "sub" and
                  not any(d != CC and isinstance(d, tuple) and
                          d[0] == "r" and d[1] != 0 for d in op.defs))
        if not is_cmp:
            return None
        left = _trace_copy(block, position, op.uses[0])
        right = _trace_copy(block, position, op.uses[1])
        return (left, right)
    return None


def _trace_copy(block, cmp_position, value):
    """Pre-SSA, in-block copy tracing with redefinition barriers."""
    if not isinstance(value, tuple):
        return value
    current = value
    barrier = cmp_position
    for position in range(cmp_position - 1, -1, -1):
        op = block.ops[position]
        if current not in op.defs:
            continue
        if op.kind != "move" or not isinstance(
                op.uses[0], (tuple, Const, SymAddr)):
            return current
        source = op.uses[0]
        if isinstance(source, (Const, SymAddr)):
            return source
        redefined = any(source in block.ops[mid].defs
                        for mid in range(position + 1, barrier))
        if redefined:
            return current
        current = source
        barrier = position
    return current
