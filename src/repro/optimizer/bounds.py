"""Bound propagation — the paper's Figure 4 algorithm (§4.3.2).

Every SSA variable used in the current loop is tagged with bounds
``(L, U)`` drawn from the ordered lattice

    C  >  LI  >  M  >  A  >  BOT          (paper: L_C > L_LI > L_M > L_A > ⊥)

* ``C``  — bound derived from constants only;
* ``LI`` — from loop invariants (or constants);
* ``M``  — from the variable's own monotonic extreme (needs a range
  check in the pre-header rather than a standard check);
* ``A``  — from an assert definition (§4.3.1);
* ``BOT`` — no known bound.

The algorithm is the fixed-point worklist of Figure 4: each defining
statement recomputes its destination's bounds from its operands, the
``max`` combiner keeps only improvements, and changed destinations put
their uses back on the worklist.

A write is *bounded* when both its bounds exceed BOT; §4.4 then picks
the optimization: ``l >= LI and u >= LI`` -> the address is loop
invariant (standard pre-header check); ``l == M and u >= A`` (or the
mirror) -> monotonic (pre-header range check).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.build import Block
from repro.ir.loops import Loop
from repro.ir.tac import Const, IrOp, SsaVar, SymAddr
from repro.optimizer.affine import (MonotonicVar, fold_constant,
                                    is_invariant)

BOT, A, M, LI, C = 0, 1, 2, 3, 4
CLASS_NAMES = {BOT: "bot", A: "A", M: "M", LI: "LI", C: "C"}

Bounds = Tuple[int, int]


class BoundTable:
    """Per-loop bounds for SSA variables (values default per §4.3.2)."""

    def __init__(self, loop: Loop, monotonic: Dict[int, MonotonicVar],
                 optimistic_loads: bool = True):
        self.loop = loop
        self.monotonic = monotonic
        self.optimistic_loads = optimistic_loads
        self._table: Dict[int, Bounds] = {}

    def initial(self, value) -> Bounds:
        if isinstance(value, (Const, SymAddr)):
            return (C, C)
        if not isinstance(value, SsaVar):
            return (BOT, BOT)
        mono = self.monotonic.get(id(value))
        if mono is not None:
            return (M, BOT) if mono.direction == "inc" else (BOT, M)
        if is_invariant(value, self.loop):
            return (LI, LI)
        return (BOT, BOT)

    def get(self, value) -> Bounds:
        if isinstance(value, SsaVar):
            found = self._table.get(id(value))
            if found is not None:
                return found
        return self.initial(value)

    def raise_to(self, var: SsaVar, bounds: Bounds) -> bool:
        old = self.get(var)
        new = (max(old[0], bounds[0]), max(old[1], bounds[1]))
        if new != old:
            self._table[id(var)] = new
            return True
        return False


def _value_class(table: BoundTable, value) -> int:
    """How good is *value itself* as a bound expression?"""
    if isinstance(value, (Const,)):
        return C
    if isinstance(value, SymAddr):
        return C
    if isinstance(value, SsaVar):
        if fold_constant(value) is not None:
            return C
        if is_invariant(value, table.loop):
            return LI
    return BOT


def _transfer(op: IrOp, table: BoundTable) -> List[Tuple[SsaVar, Bounds]]:
    """Bounds computed for *op*'s destinations from its operands."""
    results: List[Tuple[SsaVar, Bounds]] = []
    if op.kind == "move":
        dest = op.defs[0]
        if isinstance(dest, SsaVar):
            results.append((dest, table.get(op.uses[0])))
        return results
    if op.kind == "phi":
        dest = op.defs[0]
        if isinstance(dest, SsaVar) and id(dest) not in table.monotonic:
            lowers = [table.get(use)[0] for use in op.uses]
            uppers = [table.get(use)[1] for use in op.uses]
            results.append((dest, (min(lowers), min(uppers))))
        return results
    if op.kind == "assert":
        left, right = op.mem
        relation = op.relation
        for dest in op.defs:
            if not isinstance(dest, SsaVar):
                continue
            position = op.defs.index(dest)
            source = op.uses[position]
            lower, upper = table.get(source)
            this_is_left = _same(source, left)
            other = right if this_is_left else left
            other_class = max(_value_class(table, other),
                              min(A, table.get(other)[0]),
                              min(A, table.get(other)[1]))
            refinement = min(A, other_class)
            if relation == "eq":
                lower = max(lower, refinement)
                upper = max(upper, refinement)
            elif this_is_left:
                if relation in ("lt", "le"):
                    upper = max(upper, refinement)
                elif relation in ("gt", "ge"):
                    lower = max(lower, refinement)
            else:
                if relation in ("lt", "le"):
                    lower = max(lower, refinement)
                elif relation in ("gt", "ge"):
                    upper = max(upper, refinement)
            results.append((dest, (lower, upper)))
        return results
    if op.kind == "alu":
        dest = next((d for d in op.defs
                     if isinstance(d, SsaVar) and d.name != ("cc",)),
                    None)
        if dest is None:
            return results
        left, right = op.uses
        l1, u1 = table.get(left)
        l2, u2 = table.get(right)
        if op.op in ("add", "sll", "smul"):
            # the paper's "simple conjunction rule"
            results.append((dest, (min(l1, l2), min(u1, u2))))
        elif op.op == "sub":
            # upper bound of a-b needs a's upper and b's lower
            results.append((dest, (min(l1, u2), min(u1, l2))))
        else:
            results.append((dest, (BOT, BOT)))
        return results
    if op.kind == "ld":
        dest = op.defs[0]
        if isinstance(dest, SsaVar) and table.optimistic_loads:
            parts = [p for p in (op.mem[0], op.mem[1]) if p is not None]
            if all(is_invariant(p, table.loop) or
                   not isinstance(p, SsaVar) for p in parts):
                results.append((dest, (LI, LI)))
        return results
    return results


def _same(value, other) -> bool:
    return value is other


def propagate_bounds(loop: Loop, blocks: List[Block],
                     monotonic: Dict[int, MonotonicVar],
                     optimistic_loads: bool = True) -> BoundTable:
    """Run Figure 4 to a fixed point over the ops of *loop*."""
    table = BoundTable(loop, monotonic, optimistic_loads)

    ops: List[IrOp] = []
    uses_of: Dict[int, List[IrOp]] = {}
    for block in blocks:
        if block.bid not in loop.body:
            continue
        for op in block.all_ops():
            ops.append(op)
    for op in ops:
        for use in op.uses:
            if isinstance(use, SsaVar):
                uses_of.setdefault(id(use), []).append(op)

    work = list(ops)
    in_work = {id(op) for op in work}
    iterations = 0
    while work:
        iterations += 1
        if iterations > 100000:
            break  # safety net; the lattice is finite so this never fires
        op = work.pop()
        in_work.discard(id(op))
        for dest, bounds in _transfer(op, table):
            if table.raise_to(dest, bounds):
                for user in uses_of.get(id(dest), ()):
                    if id(user) not in in_work:
                        work.append(user)
                        in_work.add(id(user))
    return table


def classify_address(table: BoundTable, parts: List) -> Optional[str]:
    """§4.4: decide the optimization for a write whose address is the
    sum of *parts* (base, optional index, constant displacement)."""
    lower = upper = C
    for part in parts:
        if part is None:
            continue
        part_lower, part_upper = table.get(part)
        lower = min(lower, part_lower)
        upper = min(upper, part_upper)
    if lower >= LI and upper >= LI:
        return "li"
    if (lower == M and upper >= A) or (upper == M and lower >= A):
        return "range"
    return None
