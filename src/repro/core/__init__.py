"""The paper's contribution: the monitored region service.

Segmented bitmap (§3), superpage range index (§4.3), monitor library
generation, Kessler-style dynamic check patches, and the
``MonitoredRegionService`` front object (§2).
"""

from repro.core.regions import MonitoredRegion, RegionSet
from repro.core.service import MonitoredRegionService

__all__ = ["MonitoredRegion", "RegionSet", "MonitoredRegionService"]
