"""The Monitored Region Service (§2).

``MonitoredRegionService`` is the debugger-side object that owns the
monitor data structures inside the debuggee (segmented bitmap, superpage
counts), the reserved-register state, the monitor-hit trap handlers, and
dynamic code patching (Kessler patches for eliminated checks, §4).

Interface, following the paper:

* :meth:`create_region` / :meth:`delete_region` — the §2
  ``CreateMonitoredRegion`` / ``DeleteMonitoredRegion`` operations;
* :meth:`add_callback` — registers a §2 ``NotificationCallBack``;
* :meth:`pre_monitor` / :meth:`post_monitor` — the §4.2 operations that
  re-insert / remove checks on *known* write instructions for a symbol;
* :meth:`enable` / :meth:`disable` — the global disabled flag (§2.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.asm.loader import LoadedProgram
from repro.core.bitmap import SegmentedBitmap
from repro.core.ranges import SuperpageIndex
from repro.core.regions import MonitoredRegion, RegionSet
from repro.core.runtime_asm import INVALID_SEGMENT, NUM_WRITE_TYPES
from repro.instrument.rewriter import InstrumentResult
from repro.isa import instructions as I
from repro.isa.registers import REGISTER_IDS

TRAP_MONITOR_HIT = 0x42
TRAP_PREHEADER_HIT = 0x45
TRAP_JMP_CHECK = 0x46

_G2 = REGISTER_IDS["%g2"]
_G3 = REGISTER_IDS["%g3"]
_G4 = REGISTER_IDS["%g4"]
_G5 = REGISTER_IDS["%g5"]
_G6 = REGISTER_IDS["%g6"]

#: callback signature: (target_address, size_bytes, is_read)
NotificationCallBack = Callable[[int, int, bool], None]


class MrsError(Exception):
    """Raised for invalid MRS operations."""


class MonitoredRegionService:
    def __init__(self, loaded: LoadedProgram,
                 instrumentation: InstrumentResult):
        if instrumentation.program is None:
            raise MrsError("instrumentation must be assembled before "
                           "attaching the MRS")
        self.loaded = loaded
        self.cpu = loaded.cpu
        self.inst = instrumentation
        self.layout = instrumentation.layout
        self.bitmap = SegmentedBitmap(self.cpu.mem, self.layout)
        self.superpages = SuperpageIndex(self.cpu.mem, self.layout)
        self.regions = RegionSet()
        #: every (addr, size, is_read) notification, in order
        self.hits: List[Tuple[int, int, bool]] = []
        self.callbacks: List[NotificationCallBack] = []
        #: per-loop count of pre-header check hits
        self.preheader_hits: Dict[int, int] = {}
        #: per-site activation reason counts ("symbol"/"loop")
        self._active_reasons: Dict[int, Dict[str, int]] = {}
        self.enabled = False
        self._install()

    # -- setup --------------------------------------------------------------

    def _install(self) -> None:
        regs = self.cpu.regs
        regs.write(_G2, 1)  # disabled until enable()
        regs.write(_G3, 0)
        regs.write(_G5, self.layout.seg_table_base)
        for k in range(NUM_WRITE_TYPES):
            regs.write(REGISTER_IDS["%%m%d" % k], INVALID_SEGMENT)
        if self.inst.plan.uses_shadow_stack:
            # %m1 doubles as the %fp shadow-stack pointer (§4.2); the
            # rewriter guarantees no Cache strategy is in use then
            regs.write(REGISTER_IDS["%m1"], self.layout.shadow_base)
        self.cpu.trap_handlers[TRAP_MONITOR_HIT] = self._on_hit
        self.cpu.trap_handlers[TRAP_PREHEADER_HIT] = self._on_preheader
        self.cpu.trap_handlers[TRAP_JMP_CHECK] = self._on_jmp_check

    # -- trap handlers ----------------------------------------------------------

    def _on_hit(self, cpu) -> None:
        addr = cpu.regs.read(_G4)
        code = cpu.regs.read(_G6)
        size = code & 0xFF
        is_read = bool(code & 0x100)
        self.hits.append((addr, size, is_read))
        for callback in self.callbacks:
            callback(addr, size, is_read)

    def _on_preheader(self, cpu) -> None:
        """A loop pre-header check succeeded: the loop may write a
        monitored region, so re-insert the eliminated in-loop checks."""
        loop_id = cpu.regs.read(_G6)
        self.preheader_hits[loop_id] = \
            self.preheader_hits.get(loop_id, 0) + 1
        for site in self.inst.plan.loop_sites.get(loop_id, ()):
            # idempotent: the pre-header fires once per loop entry but
            # the site needs only one "loop" activation
            if "loop" not in self._active_reasons.get(site, {}):
                self._activate(site, "loop")

    def _on_jmp_check(self, cpu) -> None:
        """Indirect-jump verification (§4.2): the target must be a known
        function entry or a return into the caller's code."""
        target = cpu.regs.read(_G6)
        program = self.inst.program
        if program is None:
            return
        text_lo = program.text_base
        text_hi = text_lo + 4 * len(program.insns)
        if not (text_lo <= target < text_hi):
            from repro.machine.traps import DebuggeeFault
            raise DebuggeeFault("indirect jump to 0x%x outside text"
                                % target)

    # -- the §2 interface ---------------------------------------------------------

    def add_callback(self, callback: NotificationCallBack) -> None:
        self.callbacks.append(callback)

    def enable(self) -> None:
        self.cpu.regs.write(_G2, 0)
        self.enabled = True

    def disable(self) -> None:
        self.cpu.regs.write(_G2, 1)
        self.enabled = False

    def create_region(self, start: int, size: int,
                      mid_run: bool = False) -> MonitoredRegion:
        """§2 ``CreateMonitoredRegion``.

        Pass ``mid_run=True`` when the debuggee is stopped *inside*
        running code (e.g. at a breakpoint): loops whose pre-header
        checks already executed this entry would otherwise miss the new
        region until their next entry, so their eliminated checks are
        conservatively re-inserted.
        """
        region = MonitoredRegion(start, size)
        self.regions.add(region)
        touched = self.bitmap.set_region(region)
        self.superpages.add_region(region)
        self._invalidate_caches(touched)
        if mid_run:
            self.activate_loop_checks()
        return region

    def activate_loop_checks(self) -> int:
        """Conservatively re-insert every loop-eliminated check (they
        retract when the last region is deleted).  Returns the number of
        sites activated."""
        activated = 0
        for loop_id, sites in self.inst.plan.loop_sites.items():
            for site in sites:
                if "loop" not in self._active_reasons.get(site, {}):
                    self._activate(site, "loop")
                    activated += 1
        return activated

    def delete_region(self, region: MonitoredRegion) -> None:
        self.regions.remove(region)
        self.bitmap.clear_region(region)
        self.superpages.remove_region(region)
        if len(self.regions) == 0:
            # no regions left: retract all loop-activated checks
            for site in list(self._active_reasons):
                self._deactivate(site, "loop")

    # -- §4.2 PreMonitor / PostMonitor -----------------------------------------

    def pre_monitor(self, symbol: str, func: Optional[str] = None) -> int:
        """Re-insert checks on the known writes of *symbol*.

        Returns the number of sites patched.  The caller should follow
        with :meth:`create_region` on the symbol's storage, since the
        symbol can also be written through aliases (§4.2).
        """
        sites = self._symbol_site_list(symbol, func)
        for site in sites:
            self._activate(site, "symbol")
        return len(sites)

    def post_monitor(self, symbol: str, func: Optional[str] = None) -> int:
        sites = self._symbol_site_list(symbol, func)
        for site in sites:
            self._deactivate(site, "symbol")
        return len(sites)

    def _symbol_site_list(self, symbol: str,
                          func: Optional[str]) -> List[int]:
        plan = self.inst.plan
        if func is not None:
            return plan.symbol_sites.get((func, symbol), [])
        sites: List[int] = []
        for (_func, name), site_list in plan.symbol_sites.items():
            if name == symbol:
                sites.extend(site_list)
        return sites

    # -- dynamic patching --------------------------------------------------------

    def _activate(self, site: int, reason: str) -> None:
        info = self.inst.patchable.get(site)
        if info is None:
            return  # site was never eliminated; its inline check stands
        reasons = self._active_reasons.setdefault(site, {})
        if not reasons:
            branch = I.BranchInsn("a", info.patch_addr, annul=True)
            branch.tag = "patch"
            self.cpu.code.patch(info.addr, branch)
            info.active = True
        reasons[reason] = reasons.get(reason, 0) + 1

    def _deactivate(self, site: int, reason: str) -> None:
        info = self.inst.patchable.get(site)
        if info is None:
            return
        reasons = self._active_reasons.get(site)
        if not reasons or reason not in reasons:
            return
        reasons[reason] -= 1
        if reasons[reason] <= 0:
            del reasons[reason]
        if not reasons:
            self.cpu.code.patch(info.addr, info.original_insn)
            info.active = False
            del self._active_reasons[site]

    def active_sites(self) -> List[int]:
        return sorted(self._active_reasons)

    # -- cache invalidation -------------------------------------------------------

    def _invalidate_caches(self, touched_segments) -> None:
        """Creating a region in segment S invalidates any %m cache
        holding S: the caches may only name unmonitored segments (§3.1).
        """
        regs = self.cpu.regs
        for k in range(NUM_WRITE_TYPES):
            rid = REGISTER_IDS["%%m%d" % k]
            if regs.read(rid) in touched_segments:
                regs.write(rid, INVALID_SEGMENT)

    # -- introspection -------------------------------------------------------------

    def hit_count(self) -> int:
        return len(self.hits)

    def space_overhead(self) -> Tuple[int, int]:
        """(bitmap bytes allocated, program data+text bytes) for §3."""
        program = self.inst.program
        program_bytes = program.text_size() + program.data_size()
        return self.bitmap.bitmap_bytes_allocated(), program_bytes
