"""The Monitored Region Service (§2).

``MonitoredRegionService`` is the debugger-side object that owns the
monitor data structures inside the debuggee (segmented bitmap, superpage
counts), the reserved-register state, the monitor-hit trap handlers, and
dynamic code patching (Kessler patches for eliminated checks, §4).

Interface, following the paper:

* :meth:`create_region` / :meth:`delete_region` — the §2
  ``CreateMonitoredRegion`` / ``DeleteMonitoredRegion`` operations;
* :meth:`add_callback` — registers a §2 ``NotificationCallBack``;
* :meth:`pre_monitor` / :meth:`post_monitor` — the §4.2 operations that
  re-insert / remove checks on *known* write instructions for a symbol;
* :meth:`enable` / :meth:`disable` — the global disabled flag (§2.1).

Every one of those entry points is **transactional**: mutations are
journaled (:mod:`repro.core.transactions`) and any failure — injected
via a :class:`~repro.faults.FaultPlan` or real — rolls the bitmap,
superpage counts, region set, patch state and reserved registers back
to the pre-call state bit-identically, then surfaces as an
:class:`~repro.errors.MrsTransactionError` subclass carrying structured
context (region, symbol, patch site, pc).  Argument errors detected
before any mutation (overlap, alignment, unknown region) still raise
:class:`~repro.core.regions.RegionError` directly.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.asm.loader import LoadedProgram
from repro.core.bitmap import SegmentedBitmap
from repro.core.patches import PatchManager
from repro.core.ranges import SuperpageIndex
from repro.core.regions import MonitoredRegion, RegionError, RegionSet
from repro.core.runtime_asm import INVALID_SEGMENT, NUM_WRITE_TYPES
from repro.core.transactions import UndoJournal
from repro.errors import (MonitorPatchError, MrsError, MrsTransactionError,
                          RegionCreateError, RegionDeleteError)
from repro.faults import (FaultPlan, SERVICE_CREATE, SERVICE_DELETE,
                          SERVICE_POST_MONITOR, SERVICE_PRE_MONITOR)
from repro.instrument.rewriter import InstrumentResult
from repro.isa.registers import REGISTER_IDS

TRAP_MONITOR_HIT = 0x42
TRAP_PREHEADER_HIT = 0x45
TRAP_JMP_CHECK = 0x46

_G2 = REGISTER_IDS["%g2"]
_G3 = REGISTER_IDS["%g3"]
_G4 = REGISTER_IDS["%g4"]
_G5 = REGISTER_IDS["%g5"]
_G6 = REGISTER_IDS["%g6"]

#: callback signature: (target_address, size_bytes, is_read)
NotificationCallBack = Callable[[int, int, bool], None]

__all__ = ["MonitoredRegionService", "MrsError", "NotificationCallBack",
           "TRAP_MONITOR_HIT", "TRAP_PREHEADER_HIT", "TRAP_JMP_CHECK"]


class MonitoredRegionService:
    def __init__(self, loaded: LoadedProgram,
                 instrumentation: InstrumentResult,
                 faults: Optional[FaultPlan] = None):
        if instrumentation.program is None:
            raise MrsError("instrumentation must be assembled before "
                           "attaching the MRS")
        self.loaded = loaded
        self.cpu = loaded.cpu
        self.inst = instrumentation
        self.layout = instrumentation.layout
        self.faults = faults
        self.bitmap = SegmentedBitmap(self.cpu.mem, self.layout,
                                      faults=faults)
        self.superpages = SuperpageIndex(self.cpu.mem, self.layout)
        self.regions = RegionSet()
        self.patches = PatchManager(self.cpu, instrumentation.patchable,
                                    faults=faults)
        #: every (addr, size, is_read) notification, in order
        self.hits: List[Tuple[int, int, bool]] = []
        self.callbacks: List[NotificationCallBack] = []
        #: per-loop count of pre-header check hits
        self.preheader_hits: Dict[int, int] = {}
        self.enabled = False
        #: serialises the public entry points: the region set, bitmap,
        #: superpage counts and patch table are shared mutable state, so
        #: concurrent server sessions driving one service must not
        #: interleave mutations (reentrant: entry points nest, e.g.
        #: ``create_region`` -> ``activate_loop_checks``)
        self._lock = threading.RLock()
        self._install()

    # -- compatibility: the patch refcounts used to live on the service ------

    @property
    def _active_reasons(self) -> Dict[int, Dict[str, int]]:
        return self.patches.reasons

    @_active_reasons.setter
    def _active_reasons(self, value: Dict[int, Dict[str, int]]) -> None:
        self.patches.reasons = value

    # -- setup --------------------------------------------------------------

    def _install(self) -> None:
        regs = self.cpu.regs
        regs.write(_G2, 1)  # disabled until enable()
        regs.write(_G3, 0)
        regs.write(_G5, self.layout.seg_table_base)
        for k in range(NUM_WRITE_TYPES):
            regs.write(REGISTER_IDS["%%m%d" % k], INVALID_SEGMENT)
        if self.inst.plan.uses_shadow_stack:
            # %m1 doubles as the %fp shadow-stack pointer (§4.2); the
            # rewriter guarantees no Cache strategy is in use then
            regs.write(REGISTER_IDS["%m1"], self.layout.shadow_base)
        self.cpu.trap_handlers[TRAP_MONITOR_HIT] = self._on_hit
        self.cpu.trap_handlers[TRAP_PREHEADER_HIT] = self._on_preheader
        self.cpu.trap_handlers[TRAP_JMP_CHECK] = self._on_jmp_check

    # -- trap handlers ----------------------------------------------------------

    def _on_hit(self, cpu) -> None:
        addr = cpu.regs.read(_G4)
        code = cpu.regs.read(_G6)
        size = code & 0xFF
        is_read = bool(code & 0x100)
        self.hits.append((addr, size, is_read))
        for callback in self.callbacks:
            callback(addr, size, is_read)

    def _on_preheader(self, cpu) -> None:
        """A loop pre-header check succeeded: the loop may write a
        monitored region, so re-insert the eliminated in-loop checks."""
        loop_id = cpu.regs.read(_G6)
        with self._lock:
            self.preheader_hits[loop_id] = \
                self.preheader_hits.get(loop_id, 0) + 1
            for site in self.inst.plan.loop_sites.get(loop_id, ()):
                # idempotent: the pre-header fires once per loop entry but
                # the site needs only one "loop" activation
                if not self.patches.has_reason(site, "loop"):
                    self._activate(site, "loop")

    def _on_jmp_check(self, cpu) -> None:
        """Indirect-jump verification (§4.2): the target must be a known
        function entry or a return into the caller's code."""
        target = cpu.regs.read(_G6)
        program = self.inst.program
        if program is None:
            return
        text_lo = program.text_base
        text_hi = text_lo + 4 * len(program.insns)
        if not (text_lo <= target < text_hi):
            from repro.machine.traps import DebuggeeFault
            raise DebuggeeFault("indirect jump to 0x%x outside text"
                                % target, target=target, pc=cpu.pc)

    # -- the §2 interface ---------------------------------------------------------

    def add_callback(self, callback: NotificationCallBack) -> None:
        with self._lock:
            self.callbacks.append(callback)

    def enable(self) -> None:
        with self._lock:
            self.cpu.regs.write(_G2, 0)
            self.enabled = True

    def disable(self) -> None:
        """Set the global disabled flag (§2.1).  Idempotent."""
        with self._lock:
            self.cpu.regs.write(_G2, 1)
            self.enabled = False

    def _rollback(self, journal: UndoJournal) -> None:
        """Undo a failed operation with fault injection suspended, so a
        pathological schedule cannot break the recovery path itself."""
        if self.faults is not None:
            with self.faults.suspended():
                journal.rollback()
        else:
            journal.rollback()

    def create_region(self, start: int, size: int,
                      mid_run: bool = False) -> MonitoredRegion:
        """§2 ``CreateMonitoredRegion`` — transactional.

        Pass ``mid_run=True`` when the debuggee is stopped *inside*
        running code (e.g. at a breakpoint): loops whose pre-header
        checks already executed this entry would otherwise miss the new
        region until their next entry, so their eliminated checks are
        conservatively re-inserted.

        On any failure after validation, every touched structure is
        rolled back and :class:`RegionCreateError` is raised with the
        original failure chained.
        """
        region = MonitoredRegion(start, size)   # validates, mutates nothing
        with self._lock:
            if self.faults is not None:
                self.faults.trip(SERVICE_CREATE, region=region.key(),
                                 pc=self.cpu.pc)
            journal = UndoJournal()
            try:
                self.regions.add(region, journal)
                touched = self.bitmap.set_region(region, journal)
                self.superpages.add_region(region, journal)
                self._invalidate_caches(touched, journal)
                if mid_run:
                    self.activate_loop_checks(journal)
            except RegionError:
                self._rollback(journal)
                raise
            except Exception as exc:
                self._rollback(journal)
                raise RegionCreateError(
                    "CreateMonitoredRegion(0x%x, %d) failed; state rolled "
                    "back" % (start, size), region=(start, size),
                    pc=self.cpu.pc) from exc
            journal.commit()
            return region

    def activate_loop_checks(self,
                             journal: Optional[UndoJournal] = None) -> int:
        """Conservatively re-insert every loop-eliminated check (they
        retract when the last region is deleted).  Returns the number of
        sites activated."""
        with self._lock:
            activated = 0
            for loop_id, sites in self.inst.plan.loop_sites.items():
                for site in sites:
                    if not self.patches.has_reason(site, "loop"):
                        self._activate(site, "loop", journal)
                        activated += 1
            return activated

    def delete_region(self, region: MonitoredRegion) -> None:
        """§2 ``DeleteMonitoredRegion`` — transactional.

        Deleting a region that is unknown or already deleted raises a
        clear :class:`RegionError` before anything is touched, so a
        confused caller cannot corrupt the bitmap counts.
        """
        with self._lock:
            if region not in self.regions:
                raise RegionError(
                    "cannot delete %r: not currently monitored (unknown or "
                    "already deleted)" % (region,),
                    region=getattr(region, "key", lambda: region)())
            if self.faults is not None:
                self.faults.trip(SERVICE_DELETE, region=region.key(),
                                 pc=self.cpu.pc)
            journal = UndoJournal()
            try:
                self.regions.remove(region, journal)
                self.bitmap.clear_region(region, journal)
                self.superpages.remove_region(region, journal)
                if len(self.regions) == 0:
                    # no regions left: retract all loop-activated checks
                    for site in list(self.patches.reasons):
                        self._deactivate(site, "loop", journal)
            except Exception as exc:
                self._rollback(journal)
                raise RegionDeleteError(
                    "DeleteMonitoredRegion(%r) failed; state rolled back"
                    % (region,), region=region.key(),
                    pc=self.cpu.pc) from exc
            journal.commit()

    # -- §4.2 PreMonitor / PostMonitor -----------------------------------------

    def pre_monitor(self, symbol: str, func: Optional[str] = None) -> int:
        """Re-insert checks on the known writes of *symbol* —
        transactional across all of the symbol's sites.

        Returns the number of sites patched.  The caller should follow
        with :meth:`create_region` on the symbol's storage, since the
        symbol can also be written through aliases (§4.2).
        """
        with self._lock:
            sites = self._symbol_site_list(symbol, func)
            if self.faults is not None:
                self.faults.trip(SERVICE_PRE_MONITOR, symbol=symbol,
                                 sites=len(sites), pc=self.cpu.pc)
            journal = UndoJournal()
            try:
                for site in sites:
                    self._activate(site, "symbol", journal)
            except Exception as exc:
                self._rollback(journal)
                raise MonitorPatchError(
                    "PreMonitor(%r) failed; patches rolled back" % symbol,
                    symbol=symbol, pc=self.cpu.pc) from exc
            journal.commit()
            return len(sites)

    def post_monitor(self, symbol: str, func: Optional[str] = None) -> int:
        """Remove :meth:`pre_monitor` patches for *symbol* —
        transactional, and a no-op for sites not currently activated
        (double ``PostMonitor`` is harmless)."""
        with self._lock:
            sites = self._symbol_site_list(symbol, func)
            if self.faults is not None:
                self.faults.trip(SERVICE_POST_MONITOR, symbol=symbol,
                                 sites=len(sites), pc=self.cpu.pc)
            journal = UndoJournal()
            try:
                for site in sites:
                    self._deactivate(site, "symbol", journal)
            except Exception as exc:
                self._rollback(journal)
                raise MonitorPatchError(
                    "PostMonitor(%r) failed; patches rolled back" % symbol,
                    symbol=symbol, pc=self.cpu.pc) from exc
            journal.commit()
            return len(sites)

    def _symbol_site_list(self, symbol: str,
                          func: Optional[str]) -> List[int]:
        plan = self.inst.plan
        if func is not None:
            return plan.symbol_sites.get((func, symbol), [])
        sites: List[int] = []
        for (_func, name), site_list in plan.symbol_sites.items():
            if name == symbol:
                sites.extend(site_list)
        return sites

    # -- dynamic patching (delegated to the PatchManager) -----------------------

    def _activate(self, site: int, reason: str,
                  journal: Optional[UndoJournal] = None) -> None:
        self.patches.activate(site, reason, journal)

    def _deactivate(self, site: int, reason: str,
                    journal: Optional[UndoJournal] = None) -> None:
        self.patches.deactivate(site, reason, journal)

    def active_sites(self) -> List[int]:
        return self.patches.active_sites()

    # -- cache invalidation -------------------------------------------------------

    def _invalidate_caches(self, touched_segments,
                           journal: Optional[UndoJournal] = None) -> None:
        """Creating a region in segment S invalidates any %m cache
        holding S: the caches may only name unmonitored segments (§3.1).
        """
        regs = self.cpu.regs
        for k in range(NUM_WRITE_TYPES):
            rid = REGISTER_IDS["%%m%d" % k]
            if regs.read(rid) in touched_segments:
                if journal is not None:
                    journal.record_register(regs, rid)
                regs.write(rid, INVALID_SEGMENT)

    # -- introspection -------------------------------------------------------------

    def hit_count(self) -> int:
        return len(self.hits)

    def space_overhead(self) -> Tuple[int, int]:
        """(bitmap bytes allocated, program data+text bytes) for §3."""
        program = self.inst.program
        program_bytes = program.text_size() + program.data_size()
        return self.bitmap.bitmap_bytes_allocated(), program_bytes
