"""Address-space layout of the monitor library's data structures.

The monitor data structures live *in the address space of the program
being debugged* (§2.1).  This module fixes where, and how segment
numbers / bitmap indices are derived from target addresses:

* ``segment number = target_address >> seg_shift`` where
  ``seg_shift = log2(segment_bytes)`` (§3: "Right shifting the target
  address by log2(SEGMENT-SIZE) bits yields its segment number").
* the segment table is an array of segment pointers indexed by segment
  number; a null pointer means the segment contains no monitored words
  (our encoding of the paper's *unmonitored* flag — see DESIGN.md);
* bitmap segments are allocated lazily from an arena;
* a small superpage-count table supports the §4.3 range checks: one
  region count per 2^25-byte span, so a range check needs at most three
  memory accesses.
"""

from __future__ import annotations

SEG_TABLE_BASE = 0xA0000000
SUPERPAGE_TABLE_BASE = 0xA4000000
SHADOW_BASE = 0xA6000000       # %fp shadow stack for symbol-opt checking
ARENA_BASE = 0xA8000000
SUPERPAGE_SHIFT = 25           # 2^25-byte superpages (§4.3)

#: paper's choice: "all experiments ... performed with a 128 word
#: segment size" (§3.1)
DEFAULT_SEGMENT_WORDS = 128


class MonitorLayout:
    """Derived constants for one choice of segment size."""

    def __init__(self, segment_words: int = DEFAULT_SEGMENT_WORDS):
        if segment_words < 32 or segment_words & (segment_words - 1):
            raise ValueError("segment size must be a power of two >= 32")
        self.segment_words = segment_words
        self.segment_bytes = segment_words * 4
        self.seg_shift = self.segment_bytes.bit_length() - 1
        #: words of bitmap per segment (one bit per program word)
        self.bitmap_words = segment_words // 32
        self.seg_table_base = SEG_TABLE_BASE
        self.superpage_table_base = SUPERPAGE_TABLE_BASE
        self.superpage_shift = SUPERPAGE_SHIFT
        self.arena_base = ARENA_BASE
        self.shadow_base = SHADOW_BASE
        self.num_segments = (1 << 32) >> self.seg_shift

    def segment_of(self, addr: int) -> int:
        return (addr & 0xFFFFFFFF) >> self.seg_shift

    def seg_table_entry(self, segment: int) -> int:
        """Address of the segment-table slot for *segment*."""
        return self.seg_table_base + 4 * segment

    def word_index_in_segment(self, addr: int) -> int:
        return (addr >> 2) & (self.segment_words - 1)

    def superpage_of(self, addr: int) -> int:
        return (addr & 0xFFFFFFFF) >> self.superpage_shift

    def superpage_entry(self, superpage: int) -> int:
        return self.superpage_table_base + 4 * superpage

    def table_bytes(self) -> int:
        """Size of the (eagerly addressed, lazily touched) segment table."""
        return 4 * self.num_segments

    def __repr__(self) -> str:
        return "<MonitorLayout %d-word segments, shift %d>" % (
            self.segment_words, self.seg_shift)


DEFAULT_LAYOUT = MonitorLayout()
