"""Monitored regions (§2).

A monitored region is a contiguous, word-aligned, non-overlapping span
of memory.  :class:`RegionSet` is the host-side bookkeeping shared by the
segmented bitmap, the superpage range index and the tests' naive oracle.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError


class RegionError(ReproError):
    """Raised for invalid region arguments (alignment, overlap, unknown
    region on delete, ...)."""


class MonitoredRegion:
    """``[start, start+size)``, word aligned (§2)."""

    __slots__ = ("start", "size")

    def __init__(self, start: int, size: int):
        if start & 3:
            raise RegionError("region start 0x%x not word aligned" % start)
        if size <= 0 or size & 3:
            raise RegionError("region size %d not a positive multiple of 4"
                              % size)
        self.start = start & 0xFFFFFFFF
        self.size = size

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def overlaps(self, other: "MonitoredRegion") -> bool:
        return self.start < other.end and other.start < self.end

    def words(self) -> Iterator[int]:
        return iter(range(self.start, self.end, 4))

    def key(self) -> Tuple[int, int]:
        return (self.start, self.size)

    def __eq__(self, other) -> bool:
        return (isinstance(other, MonitoredRegion)
                and self.key() == other.key())

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return "<region 0x%x..0x%x>" % (self.start, self.end)


class RegionSet:
    """A set of non-overlapping monitored regions with membership queries.

    This is also the reference ("oracle") implementation the property
    tests compare the segmented bitmap against.
    """

    def __init__(self):
        self._regions: Dict[Tuple[int, int], MonitoredRegion] = {}

    def add(self, region: MonitoredRegion, journal=None) -> None:
        for existing in self._regions.values():
            if region.overlaps(existing):
                raise RegionError("%r overlaps %r" % (region, existing),
                                  region=region.key(),
                                  existing=existing.key())
        if journal is not None:
            journal.record_dict_entry(self._regions, region.key())
        self._regions[region.key()] = region

    def remove(self, region: MonitoredRegion, journal=None) -> None:
        if region.key() not in self._regions:
            raise RegionError(
                "%r is not monitored (unknown or already deleted)"
                % region, region=region.key())
        if journal is not None:
            journal.record_dict_entry(self._regions, region.key())
        del self._regions[region.key()]

    def __contains__(self, region: MonitoredRegion) -> bool:
        return isinstance(region, MonitoredRegion) and \
            region.key() in self._regions

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[MonitoredRegion]:
        return iter(self._regions.values())

    def find(self, addr: int, size: int = 1) -> Optional[MonitoredRegion]:
        """Region intersecting ``[addr, addr+size)``, if any."""
        for region in self._regions.values():
            if addr < region.end and region.start < addr + size:
                return region
        return None

    def hit(self, addr: int, size: int = 1) -> bool:
        return self.find(addr, size) is not None

    def intersects_range(self, lo: int, hi: int) -> bool:
        """Any region intersecting the inclusive byte range [lo, hi]?"""
        for region in self._regions.values():
            if lo < region.end and region.start <= hi:
                return True
        return False

    def regions(self) -> List[MonitoredRegion]:
        return sorted(self._regions.values(), key=MonitoredRegion.key)
