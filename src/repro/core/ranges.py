"""Superpage range index: efficient checks on contiguous address ranges.

§4.3 requires "an efficient data structure to implement range checks.
For ranges of 2^25 bytes or less, the lookup requires at most three
memory accesses."  We maintain, in debuggee memory, a table of monitored-
region counts per 2^25-byte *superpage*.  A range of <= 2^25 bytes spans
at most two superpages, so the generated pre-header range check loads at
most two counts (plus one shift/index computation that may read the
second count) — within the paper's three-access budget.

The check is conservative: a nonzero count means "the range *may*
intersect a monitored region", which makes the MRS restore the
eliminated in-loop checks.  That is always sound and only costs
performance when a region shares a 32 MB superpage with the loop's
target range.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.layout import MonitorLayout
from repro.core.regions import MonitoredRegion
from repro.core.transactions import UndoJournal
from repro.machine.memory import Memory


class SuperpageIndex:
    """Debugger-side maintenance of the superpage count table."""

    def __init__(self, memory: Memory, layout: MonitorLayout):
        self.memory = memory
        self.layout = layout
        self._counts: Dict[int, int] = {}

    def _superpages(self, region: MonitoredRegion) -> range:
        first = self.layout.superpage_of(region.start)
        last = self.layout.superpage_of(region.end - 1)
        return range(first, last + 1)

    def add_region(self, region: MonitoredRegion,
                   journal: Optional[UndoJournal] = None) -> None:
        for page in self._superpages(region):
            count = self._counts.get(page, 0) + 1
            if journal is not None:
                journal.record_dict_entry(self._counts, page)
                journal.record_memory_word(
                    self.memory, self.layout.superpage_entry(page))
            self._counts[page] = count
            self.memory.write_word(self.layout.superpage_entry(page), count)

    def remove_region(self, region: MonitoredRegion,
                      journal: Optional[UndoJournal] = None) -> None:
        for page in self._superpages(region):
            count = self._counts.get(page, 0) - 1
            if count < 0:
                raise ValueError("superpage count underflow")
            if journal is not None:
                journal.record_dict_entry(self._counts, page)
                journal.record_memory_word(
                    self.memory, self.layout.superpage_entry(page))
            self._counts[page] = count
            self.memory.write_word(self.layout.superpage_entry(page), count)

    def range_may_hit(self, lo: int, hi: int) -> bool:
        """Host-side mirror of the generated range check."""
        first = self.layout.superpage_of(lo)
        last = self.layout.superpage_of(hi)
        return any(self._counts.get(page, 0) for page in
                   range(first, last + 1))
