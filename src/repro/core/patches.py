"""Dynamic Kessler-patch management (§4), extracted from the MRS.

``PatchManager`` owns the runtime half of write-check elimination: when
``PreMonitor`` (or a loop pre-header hit) needs an eliminated check
back, the manager replaces the write instruction with an annulled
branch to its pre-assembled patch block, and restores the original
instruction once the last activation reason is dropped.  Activations
are reference-counted per (site, reason) exactly as the service always
did; the manager adds two robustness properties:

* **fault injection**: installs and removals call
  :data:`~repro.faults.PATCH_INSTALL` / :data:`~repro.faults.PATCH_REMOVE`
  trip points before mutating code space, so a half-installed patch can
  be provoked deterministically in tests;
* **journaling**: when the caller passes an
  :class:`~repro.core.transactions.UndoJournal`, every mutation
  (refcount dicts, code-space slot, ``SiteRuntimeInfo.active``) is
  recorded first, so a failed multi-site ``PreMonitor`` rolls back to a
  bit-identical patch state.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.transactions import UndoJournal
from repro.faults import FaultPlan, PATCH_INSTALL, PATCH_REMOVE
from repro.isa import instructions as I


class PatchManager:
    """Installs and removes dynamic write-check patches on one debuggee."""

    def __init__(self, cpu, patchable, faults: Optional[FaultPlan] = None):
        self.cpu = cpu
        #: site id -> SiteRuntimeInfo for every eliminated site
        self.patchable = patchable
        #: site id -> {reason: refcount} for currently active sites
        self.reasons: Dict[int, Dict[str, int]] = {}
        self.faults = faults

    # -- queries -----------------------------------------------------------

    def active_sites(self) -> List[int]:
        return sorted(self.reasons)

    def is_active(self, site: int) -> bool:
        return site in self.reasons

    def has_reason(self, site: int, reason: str) -> bool:
        return reason in self.reasons.get(site, {})

    # -- install / remove --------------------------------------------------

    def activate(self, site: int, reason: str,
                 journal: Optional[UndoJournal] = None) -> None:
        """Reference-count an activation; install the patch on 0 -> 1."""
        info = self.patchable.get(site)
        if info is None:
            return  # site was never eliminated; its inline check stands
        if self.faults is not None:
            self.faults.trip(PATCH_INSTALL, site=site, addr=info.addr,
                             patch_addr=info.patch_addr, reason=reason,
                             pc=self.cpu.pc)
        if journal is not None:
            journal.record_dict_entry(self.reasons, site, clone=dict)
        reasons = self.reasons.setdefault(site, {})
        if not reasons:
            if journal is not None:
                journal.record_code(self.cpu.code, info.addr)
                journal.record_attr(info, "active")
            branch = I.BranchInsn("a", info.patch_addr, annul=True)
            branch.tag = "patch"
            self.cpu.code.patch(info.addr, branch)
            info.active = True
        reasons[reason] = reasons.get(reason, 0) + 1

    def deactivate(self, site: int, reason: str,
                   journal: Optional[UndoJournal] = None) -> None:
        """Drop one activation reference; restore the original on 1 -> 0.

        A deactivation with no matching activation is a no-op (double
        ``PostMonitor`` must be harmless), and deliberately does not
        count as a fault-injection occurrence.
        """
        info = self.patchable.get(site)
        if info is None:
            return
        reasons = self.reasons.get(site)
        if not reasons or reason not in reasons:
            return
        if self.faults is not None:
            self.faults.trip(PATCH_REMOVE, site=site, addr=info.addr,
                             reason=reason, pc=self.cpu.pc)
        if journal is not None:
            journal.record_dict_entry(self.reasons, site, clone=dict)
        reasons[reason] -= 1
        if reasons[reason] <= 0:
            del reasons[reason]
        if not reasons:
            if journal is not None:
                journal.record_code(self.cpu.code, info.addr)
                journal.record_attr(info, "active")
            self.cpu.code.patch(info.addr, info.original_insn)
            info.active = False
            del self.reasons[site]

    # -- checkpoint support ------------------------------------------------

    def sync_active_flags(self) -> None:
        """Make ``SiteRuntimeInfo.active`` agree with the refcounts
        (used after checkpoint restore rewrites code space)."""
        for site, info in self.patchable.items():
            info.active = site in self.reasons
