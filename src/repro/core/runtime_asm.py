"""Monitor library, generated as assembly and run in the simulator.

§2.1: "The runtime *monitor library* contains the data structures
necessary to check whether a target address represents a monitor hit."
Running the library inside the simulator (rather than modelling it
host-side) means its loads go through the simulated cache and its
``save`` pushes a real register window — the costs Table 1 compares.

Register protocol (see DESIGN.md):

* ``%g2`` — global *disabled* flag (1 = no breakpoints active);
* ``%g3`` — *check-in-progress* flag (§2.1);
* ``%g4`` — target address of the checked write;
* ``%g5`` — segment-table base (reserved-register strategies);
* ``%g6``/``%g7`` — scratch; ``%g6`` carries the access size to the
  ``ta 0x42`` monitor-hit trap (bit 8 set for read checks);
* ``%m0``-``%m3`` — per-write-type segment caches (§3.1).

Entry points generated here:

* ``__mrs_check_{w,r}{1,4,8}`` — procedure-call segmented-bitmap lookup
  (pushes a register window; used by the *Bitmap* strategy and by
  re-inserted Kessler patches; the width-8 variant tests two adjacent
  bits for aligned ``std``);
* ``__mrs_miss_<k>_{w,r}{1,4,8}`` — segment-cache miss handler for write
  type ``k`` (expects the segment number in ``%g6``); only updates the
  cache when the segment has no monitored regions (§3.1).
"""

from __future__ import annotations

from typing import List

from repro.core.layout import MonitorLayout

TRAP_MONITOR_HIT = 0x42
#: bit 8 of %g6 marks the access as a read (access-anomaly extension, §5)
READ_FLAG = 0x100

#: write types (§3.1): per-type segment caches live in %m0..%m3
WRITE_TYPE_STACK = 0
WRITE_TYPE_BSS = 1
WRITE_TYPE_HEAP = 2
WRITE_TYPE_BSS_VAR = 3
WRITE_TYPE_NAMES = {WRITE_TYPE_STACK: "STACK", WRITE_TYPE_BSS: "BSS",
                    WRITE_TYPE_HEAP: "HEAP", WRITE_TYPE_BSS_VAR: "BSS-VAR"}
NUM_WRITE_TYPES = 4

#: value no shifted address can equal; used to invalidate segment caches
INVALID_SEGMENT = 0xFFFFFFFF


def size_code(width: int, is_read: bool) -> int:
    return width | (READ_FLAG if is_read else 0)


def _full_lookup(lines: List[str], layout: MonitorLayout, seg_ptr: str,
                 scratch_a: str, scratch_b: str, done_label: str,
                 width: int, is_read: bool) -> None:
    """Emit the bit test given a non-null segment pointer in *seg_ptr*.

    Clobbers the two scratch registers; falls into the hit report and
    branches to *done_label* on a miss.  Doubleword accesses test two
    adjacent bits in one lookup — an aligned ``std`` covers an even word
    index, so both bits always share a bitmap word (§3: "one-word and
    two-word checks incur identical overhead").
    """
    mask = layout.segment_words - 1
    bit_mask = 3 if width == 8 else 1
    lines += [
        "\tsrl %%g4, 2, %s" % scratch_a,
        "\tand %s, %d, %s" % (scratch_a, mask, scratch_a),
        "\tsrl %s, 5, %s" % (scratch_a, scratch_b),
        "\tsll %s, 2, %s" % (scratch_b, scratch_b),
        "\tld [%s+%s], %s" % (seg_ptr, scratch_b, scratch_b),
        "\tand %s, 31, %s" % (scratch_a, scratch_a),
        "\tsrl %s, %s, %s" % (scratch_b, scratch_a, scratch_b),
        "\tandcc %s, %d, %%g0" % (scratch_b, bit_mask),
        "\tbe %s" % done_label,
        "\tnop",
        "\tmov %d, %%g6" % size_code(width, is_read),
        "\tta 0x%x" % TRAP_MONITOR_HIT,
    ]


def check_routine(layout: MonitorLayout, width: int,
                  is_read: bool = False) -> List[str]:
    """Procedure-call bitmap lookup (§3 "Bitmap"): addr in %g4."""
    kind = "r" if is_read else "w"
    name = "__mrs_check_%s%d" % (kind, width)
    done = name + "_done"
    lines = [
        "%s:" % name,
        "\tsave %sp, -96, %sp",
        "\tmov 1, %g3",
        "\tset %d, %%l0" % layout.seg_table_base,
        "\tsrl %%g4, %d, %%l1" % layout.seg_shift,
        "\tsll %l1, 2, %l1",
        "\tld [%l0+%l1], %l2",
        "\ttst %l2",
        "\tbe %s" % done,
        "\tnop",
    ]
    _full_lookup(lines, layout, "%l2", "%l3", "%l4", done, width, is_read)
    lines += [
        "%s:" % done,
        "\tmov 0, %g3",
        "\tret",
        "\trestore",
    ]
    return lines


def miss_routine(layout: MonitorLayout, write_type: int, width: int,
                 is_read: bool = False) -> List[str]:
    """Segment-cache miss handler (§3.1 "Cache"): segment number in %g6.

    Updates the per-type cache register only when the missed segment has
    no monitored regions; otherwise performs the full lookup.
    """
    kind = "r" if is_read else "w"
    name = "__mrs_miss_%d_%s%d" % (write_type, kind, width)
    full = name + "_full"
    done = name + "_done"
    cache_reg = "%%m%d" % write_type
    lines = [
        "%s:" % name,
        "\t.tag miss_entry",     # first insn tagged so cache-miss
        "\tsave %sp, -96, %sp",  # executions can be counted (Figure 3)
        "\t.tag lib",
        "\tmov 1, %g3",
        "\tset %d, %%l0" % layout.seg_table_base,
        "\tsll %g6, 2, %l1",
        "\tld [%l0+%l1], %l2",
        "\ttst %l2",
        "\tbne %s" % full,
        "\tnop",
        "\tmov %%g6, %s" % cache_reg,
        "\tba %s" % done,
        "\tnop",
        "%s:" % full,
    ]
    _full_lookup(lines, layout, "%l2", "%l3", "%l4", done, width, is_read)
    lines += [
        "%s:" % done,
        "\tmov 0, %g3",
        "\tret",
        "\trestore",
    ]
    return lines


def library_source(layout: MonitorLayout, with_cache: bool = False,
                   with_reads: bool = False) -> str:
    """Assembly text of the monitor library."""
    lines: List[str] = ["\t.text", "\t.tag lib"]
    kinds = [(4, False), (1, False), (8, False)]
    if with_reads:
        kinds += [(4, True), (1, True), (8, True)]
    for width, is_read in kinds:
        lines += check_routine(layout, width, is_read)
    if with_cache:
        for write_type in range(NUM_WRITE_TYPES):
            for width, is_read in kinds:
                lines += miss_routine(layout, write_type, width, is_read)
    lines.append("\t.tag orig")
    return "\n".join(lines) + "\n"
