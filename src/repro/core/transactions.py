"""Undo journal backing the MRS's transactional operations.

Region create/delete and dynamic patch install touch several structures
— debuggee memory (bitmap blocks, segment table, superpage counts),
host-side dicts, reserved registers and code space — and a failure
half-way through any of them would silently break the soundness
invariant.  Each §2/§4.2 entry point therefore records a fine-grained
undo entry *before* every mutation; on any injected or real failure the
journal rolls the world back to the pre-call state, bit-identically.

Rollback deliberately bypasses the public mutators (it pokes
``Memory.words`` and dicts directly): the undo path must not itself
pass through fault-injection points, and restoring a word that did not
exist before must *remove* the entry rather than store a zero, so the
sparse-memory representation — not just its read view — is restored
exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class UndoJournal:
    """LIFO log of undo closures for one transactional operation."""

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: List[Callable[[], None]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, undo: Callable[[], None]) -> None:
        """Append a raw undo closure (runs during :meth:`rollback`)."""
        self._entries.append(undo)

    # -- typed helpers (capture state BEFORE the caller mutates) -----------

    def record_memory_word(self, memory, addr: int) -> None:
        """Capture the raw word at *addr*, including its absence."""
        words: Dict[int, int] = memory.words
        index = addr >> 2
        if index in words:
            old = words[index]

            def undo() -> None:
                words[index] = old
        else:
            def undo() -> None:
                words.pop(index, None)
        self._entries.append(undo)

    def record_dict_entry(self, mapping: Dict[Any, Any], key: Any,
                          clone: Optional[Callable[[Any], Any]] = None
                          ) -> None:
        """Capture ``mapping[key]`` (or its absence).

        Pass *clone* when the value is mutable and will be mutated in
        place (e.g. a nested refcount dict), so rollback restores a
        snapshot rather than the mutated object.
        """
        if key in mapping:
            old = mapping[key]
            if clone is not None:
                old = clone(old)

            def undo() -> None:
                mapping[key] = old
        else:
            def undo() -> None:
                mapping.pop(key, None)
        self._entries.append(undo)

    def record_attr(self, obj: Any, name: str) -> None:
        """Capture a plain attribute value."""
        old = getattr(obj, name)
        self._entries.append(lambda: setattr(obj, name, old))

    def record_register(self, regs, rid: int) -> None:
        """Capture one register's value by id."""
        old = regs.read(rid)
        self._entries.append(lambda: regs.write(rid, old))

    def record_code(self, code, addr: int) -> None:
        """Capture the instruction slot at *addr* in a CodeSpace."""
        index = code.index_of(addr)
        insns = code.insns
        old = insns[index]

        def undo() -> None:
            insns[index] = old
        self._entries.append(undo)

    # -- outcomes ----------------------------------------------------------

    def rollback(self) -> int:
        """Undo every recorded mutation, newest first.

        Returns the number of entries undone.  The journal is empty
        afterwards and may be reused.
        """
        count = len(self._entries)
        while self._entries:
            self._entries.pop()()
        return count

    def commit(self) -> None:
        """Discard the log: the operation completed."""
        self._entries.clear()
