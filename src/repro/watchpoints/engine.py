"""The watchpoint evaluation engine.

Sits between the MRS notification callback and the debugger's action
dispatch.  For every monitor hit the engine walks the armed
watchpoints and decides — per watchpoint — whether the hit *fires*:

1. **access filter** — read watchpoints ignore writes and vice versa
   (``access=None`` keeps the historical behaviour: fire on anything
   the region reports);
2. **byte-range guard** — the MRS region is word-rounded and may be
   shared by several watchpoints; a hit outside this watchpoint's
   exact byte range is rejected before any debuggee memory is read,
   as is a hit whose predicate constant-folded to false;
3. **predicate evaluation** — the compiled
   :class:`~repro.watchpoints.predicate.Predicate` runs against a
   lazily-built :class:`~repro.watchpoints.predicate.EvalContext`;
   only the facts the predicate's dependency set names are
   materialised (``$old`` comes from the engine's per-watchpoint
   shadow words, seeded at arm time — §2.1 write checks run after the
   store lands, so the overwritten value cannot be read back);
4. **transition edge** — a transition watchpoint compares the new
   truth value against its shadow truth and fires only on the
   requested edge (``rise`` / ``fall`` / ``change``).

Every decision is counted (``hits`` / ``guarded`` / ``evals`` /
``suppressed`` / ``fired`` / ``errors`` per watchpoint), and a
:class:`~repro.errors.PredicateError` raised mid-evaluation *disarms*
the watchpoint — recorded on ``watchpoint.disarm_error`` and in the
debugger log — rather than crashing the session.

The engine's per-watchpoint state (shadow truth, shadow words,
counters, disarm status) is snapshotted by value into every debugger
checkpoint, so replay keyframe restores rewind it and re-execution
re-fires transitions deterministically.  For ``reverse_continue`` the
engine re-evaluates predicates *from the recorded write trace* — each
:class:`~repro.replay.trace.WriteRecord` carries the old and new word
— simulating transition truth forward from the truth value captured
when recording started.  Predicates that dereference arbitrary memory
(their historical heap state is gone) and transitions whose baseline
was lost to trace-ring eviction fall back to the conservative legacy
answer: any matching access to the watched bytes counts as a firing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PredicateError
from repro.isa.instructions import to_signed
from repro.watchpoints.predicate import (EvalContext, Predicate,
                                         memory_reader)

__all__ = ["ACCESS_KINDS", "EDGES", "WatchStats", "WatchpointEngine",
           "access_allows", "edge_fires"]

#: selectable transition edges (false→true, true→false, either)
EDGES = ("rise", "fall", "change")
#: selectable access filters (None = any access, the historical default)
ACCESS_KINDS = ("read", "write", "readWrite")


def edge_fires(when: str, previous: bool, current: bool) -> bool:
    """Does the *previous* → *current* truth change match edge *when*?"""
    if when == "rise":
        return current and not previous
    if when == "fall":
        return previous and not current
    return previous != current  # "change"


def access_allows(access: Optional[str], is_read: bool) -> bool:
    """Does this watchpoint's access filter admit this hit kind?"""
    if access is None or access == "readWrite":
        return True
    return is_read if access == "read" else not is_read


class WatchStats:
    """Per-watchpoint hit-path counters."""

    __slots__ = ("hits", "guarded", "evals", "suppressed", "fired",
                 "errors", "pruned")

    def __init__(self, hits: int = 0, guarded: int = 0, evals: int = 0,
                 suppressed: int = 0, fired: int = 0, errors: int = 0,
                 pruned: int = 0):
        self.hits = hits              #: notifications overlapping the region
        self.guarded = guarded        #: rejected without reading memory
        self.evals = evals            #: predicate evaluations executed
        self.suppressed = suppressed  #: evaluated but did not fire
        self.fired = fired            #: dispatched the watchpoint action
        self.errors = errors          #: PredicateErrors (each disarms)
        self.pruned = pruned          #: answered from the invariant cache

    def as_tuple(self) -> Tuple[int, int, int, int, int, int, int]:
        return (self.hits, self.guarded, self.evals, self.suppressed,
                self.fired, self.errors, self.pruned)

    @classmethod
    def from_tuple(cls, values) -> "WatchStats":
        return cls(*values)

    def as_dict(self) -> Dict[str, int]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return "<WatchStats %s>" % (
            " ".join("%s=%d" % (slot, getattr(self, slot))
                     for slot in self.__slots__))


class WatchpointEngine:
    """Predicate/transition evaluation over one debugger's hits."""

    def __init__(self, debugger):
        self.debugger = debugger

    # -- arming ------------------------------------------------------------

    def seed(self, watchpoint) -> None:
        """Initialise *watchpoint*'s engine state from current memory.

        Seeds the ``$old`` shadow words over the watched byte range
        and — for transition watchpoints — the initial truth value, so
        the first edge is measured against the state at arm time, not
        against an arbitrary default.  A predicate that faults on
        current memory raises :class:`~repro.errors.PredicateError`
        here, at arm time.
        """
        mem = self.debugger.cpu.mem
        start = watchpoint.addr & ~3
        end = (watchpoint.addr + watchpoint.size + 3) & ~3
        watchpoint.shadow = {word: mem.read_word(word)
                             for word in range(start, end, 4)}
        watchpoint.stats = WatchStats()
        watchpoint.disarm_error = None
        watchpoint.truth = None
        watchpoint.cached_truth = None
        predicate = watchpoint.predicate
        if predicate is not None and watchpoint.when is not None:
            if predicate.const is not None:
                watchpoint.truth = bool(predicate.const)
            else:
                current = to_signed(mem.read_word(start))
                ctx = EvalContext(value=current, old=current,
                                  addr=watchpoint.addr,
                                  size=watchpoint.size,
                                  read_word=memory_reader(mem))
                watchpoint.truth = predicate.truth(ctx)
        watchpoint.record_truth = watchpoint.truth
        if predicate is not None and predicate.const is None and \
                getattr(watchpoint, "invariant", False):
            # the pruner proved no write site can alias the predicate's
            # read set and it observes no per-hit facts: its truth is
            # fixed from arm time on.  Evaluate once, answer hits from
            # the cache (WatchStats.pruned counts them).
            ctx = EvalContext(addr=watchpoint.addr,
                              size=watchpoint.size,
                              read_word=memory_reader(mem))
            watchpoint.cached_truth = predicate.truth(ctx)

    def reseed_all(self) -> None:
        """Re-initialise every watchpoint (after a session rewind the
        debuggee memory is back at entry state).  A predicate that now
        faults disarms its watchpoint instead of propagating."""
        for watchpoint in self.debugger.watchpoints:
            if watchpoint.disarm_error is not None:
                # a fresh run gets a fresh chance; a still-broken
                # predicate will disarm again at its first fault
                watchpoint.enabled = True
            try:
                self.seed(watchpoint)
            except PredicateError as exc:
                self.disarm(watchpoint, exc)

    # -- the hit fast path -------------------------------------------------

    def on_hit(self, addr: int, size: int, is_read: bool) -> None:
        """Dispatch one MRS notification through every watchpoint."""
        debugger = self.debugger
        for watchpoint in debugger.watchpoints:
            if not watchpoint.enabled:
                continue
            region = watchpoint.region
            if not (addr < region.end and region.start < addr + size):
                continue
            stats = watchpoint.stats
            stats.hits += 1
            if not access_allows(watchpoint.access, is_read) or not (
                    addr < watchpoint.addr + watchpoint.size
                    and watchpoint.addr < addr + size):
                stats.guarded += 1
            else:
                try:
                    fired, value = self._evaluate(watchpoint, addr,
                                                  size)
                except PredicateError as exc:
                    self.disarm(watchpoint, exc)
                    self._update_shadow(watchpoint, addr, size, is_read)
                    continue
                if fired:
                    stats.fired += 1
                    debugger._fire(watchpoint, addr, size, value)
                else:
                    stats.suppressed += 1
            self._update_shadow(watchpoint, addr, size, is_read)

    def _evaluate(self, watchpoint, addr: int,
                  size: int) -> Tuple[bool, Optional[int]]:
        """Decide whether one in-range hit fires; returns
        ``(fired, value)`` where *value* is the (signed) word at the
        accessed address when it was read, else None."""
        mem = self.debugger.cpu.mem
        predicate: Optional[Predicate] = watchpoint.predicate
        stats = watchpoint.stats
        value: Optional[int] = None

        def current_value() -> int:
            nonlocal value
            if value is None:
                value = to_signed(mem.read_word(addr & ~3))
            return value

        if predicate is None:
            # the historical path: unconditional, or filtered by the
            # legacy condition callable on the new value
            current_value()
            if watchpoint.condition is not None:
                stats.evals += 1
                if not watchpoint.condition(value):
                    return False, value
            return True, value
        if predicate.const is not None and watchpoint.when is not None:
            # a constant predicate can never change truth: no edges
            stats.guarded += 1
            return False, None
        if predicate.const is not None and not predicate.const:
            # constant-false conditional: rejected without any read
            stats.guarded += 1
            return False, None
        cached = getattr(watchpoint, "cached_truth", None)
        if cached is not None:
            # invariant predicate (see repro.analysis.prune): answer
            # from the seed-time truth without touching memory
            stats.pruned += 1
            if watchpoint.when is not None:
                return False, None  # truth never changes: no edges
            if cached:
                current_value()
                if watchpoint.condition is not None and \
                        not watchpoint.condition(value):
                    return False, value
            return bool(cached), value
        stats.evals += 1
        ctx = EvalContext(addr=addr, size=size)
        if predicate.needs_value:
            ctx.value = current_value()
        if predicate.needs_old:
            word = addr & ~3
            raw = watchpoint.shadow.get(word)
            ctx.old = to_signed(raw if raw is not None
                                else mem.read_word(word))
        if predicate.needs_memory:
            ctx.read_word = memory_reader(mem)
        truth = predicate.truth(ctx)
        if watchpoint.when is None:
            fired = truth
        else:
            fired = edge_fires(watchpoint.when, watchpoint.truth, truth)
            watchpoint.truth = truth
        if fired:
            current_value()
            if watchpoint.condition is not None and \
                    not watchpoint.condition(value):
                return False, value
        return fired, value

    def _update_shadow(self, watchpoint, addr: int, size: int,
                       is_read: bool) -> None:
        """Refresh the ``$old`` shadow words a write just changed —
        even for hits the filters rejected, so the next evaluated hit
        sees the true previous value."""
        if is_read:
            return
        shadow = watchpoint.shadow
        mem = self.debugger.cpu.mem
        for word in range(addr & ~3, (addr + size + 3) & ~3, 4):
            if word in shadow:
                shadow[word] = mem.read_word(word)

    def disarm(self, watchpoint, exc: PredicateError) -> None:
        """A predicate fault: disable the watchpoint, keep the session."""
        watchpoint.enabled = False
        watchpoint.disarm_error = exc
        watchpoint.stats.errors += 1
        self.debugger.log.append(
            "watchpoint %s disarmed: %s" % (watchpoint.name, exc))

    # -- checkpoint integration --------------------------------------------

    def states(self, watchpoints) -> List[tuple]:
        """Snapshot per-watchpoint engine state by value (watchpoint
        objects are shared across checkpoints by reference)."""
        return [(watchpoint.enabled, watchpoint.truth,
                 watchpoint.record_truth, dict(watchpoint.shadow),
                 watchpoint.stats.as_tuple(), watchpoint.disarm_error)
                for watchpoint in watchpoints]

    def restore_states(self, watchpoints, states) -> None:
        for watchpoint, state in zip(watchpoints, states):
            (watchpoint.enabled, watchpoint.truth,
             watchpoint.record_truth, shadow, stats,
             watchpoint.disarm_error) = state
            watchpoint.shadow = dict(shadow)
            watchpoint.stats = WatchStats.from_tuple(stats)

    def mark_record_start(self) -> None:
        """Recording begins: pin every watchpoint's transition truth as
        the baseline trace re-evaluation simulates forward from."""
        for watchpoint in self.debugger.watchpoints:
            watchpoint.record_truth = watchpoint.truth

    # -- trace re-evaluation (reverse_continue) ----------------------------

    def latest_trace_firing(self, records: Iterable, now: int,
                            trace_dropped: int = 0):
        """The most recent recorded access before instruction *now*
        that fires any armed watchpoint under its predicate/transition
        semantics; returns ``(record, watchpoint)`` or None.

        Later watchpoints win ties on the same record, matching the
        pre-predicate ``reverse_continue`` precedence.
        """
        records = list(records)
        best = None
        for order, watchpoint in enumerate(self.debugger.watchpoints):
            if not watchpoint.enabled:
                continue
            for record, fired in self._trace_decisions(
                    watchpoint, records, trace_dropped):
                if not fired or record.stop_index >= now:
                    continue
                key = (record.stop_index, order)
                if best is None or key > best[0]:
                    best = (key, record, watchpoint)
        if best is None:
            return None
        return best[1], best[2]

    def _trace_decisions(self, watchpoint, records,
                         trace_dropped: int):
        """Yield ``(record, fired)`` over *records* in forward order,
        re-evaluating the predicate from each record's old/new words
        and simulating transition truth from the recording baseline."""
        predicate: Optional[Predicate] = watchpoint.predicate
        conservative = (
            predicate is None
            # historical memory is gone; the trace only has the word
            or predicate.needs_memory
            # the edge baseline was lost (armed before this recording,
            # or the trace ring evicted the records leading up to it)
            or (watchpoint.when is not None
                and (trace_dropped or watchpoint.record_truth is None)))
        truth = watchpoint.record_truth
        for record in records:
            if not self._trace_access(watchpoint.access, record.is_read):
                continue
            if not (record.addr < watchpoint.addr + watchpoint.size
                    and watchpoint.addr < record.addr + record.size):
                continue
            if conservative:
                yield record, True
                continue
            ctx = EvalContext(value=to_signed(record.new),
                              old=to_signed(record.old),
                              addr=record.addr, size=record.size)
            try:
                current = predicate.truth(ctx)
            except PredicateError:
                # the live engine disarmed here: stop at the fault
                yield record, True
                continue
            if watchpoint.when is None:
                yield record, current
            else:
                yield record, edge_fires(watchpoint.when, truth,
                                         current)
                truth = current

    @staticmethod
    def _trace_access(access: Optional[str], is_read: bool) -> bool:
        """Which trace records can stop ``reverse_continue`` for this
        access filter.  ``None`` means writes only — the documented
        pre-predicate contract ("the most recent *write*") — while an
        explicit ``read``/``readWrite`` filter opts into read stops."""
        if access == "read":
            return is_read
        if access == "readWrite":
            return True
        return not is_read
