"""The watchpoint predicate language.

A predicate is one mini-C expression over the state of a data
breakpoint hit, compiled **once** at arm time into a tree of
closed-over Python evaluators — never interpreted per hit, and never
``eval``'d.  The grammar is exactly the mini-C expression grammar
(:mod:`repro.minic.cparser` is reused wholesale), extended with four
hit-scoped special variables:

``$value``
    the word at the accessed address *after* the access;
``$old``
    the word at the accessed address *before* the access (from the
    engine's shadow copy — §2.1 write checks run after the store
    lands, so the overwritten value cannot be read back);
``$addr`` / ``$size``
    the accessed address and width in bytes.

Plain identifiers resolve through the debuggee's symbol table at
compile time (globals, ``a[i]`` with a computed index, ``s.f`` field
stabs); their loads happen at evaluation time against live debuggee
memory.  Anything unresolvable — an undefined symbol, a register or
frame-local variable, a function call — is a structured
:class:`~repro.errors.PredicateCompileError` at *arm* time, carrying
the offending token, so a bad predicate is rejected when the
watchpoint is set rather than exploding at its first hit.

Two compile-time properties make the hit fast path cheap:

* **constant folding** — any pure subtree of literals collapses to
  its value during compilation; a predicate that folds to a constant
  never touches debuggee memory at all;
* **dependency tracking** — the compiler records which of
  ``{"value", "old", "mem"}`` the predicate can touch, so the
  evaluation engine skips the memory reads a predicate cannot
  observe (the byte-range guard rejects most hits before *any*
  debuggee memory is read).

Runtime failures — division by zero, a dereference outside mapped
memory, an out-of-range index — raise structured
:class:`~repro.errors.PredicateError`; the engine converts those into
a disarm of the offending watchpoint, not a dead session.
"""

from __future__ import annotations

import re
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.errors import PredicateCompileError, PredicateError
from repro.isa.instructions import to_signed
from repro.minic import cast as A
from repro.minic.cparser import Parser
from repro.minic.lexer import CompileError

__all__ = ["EvalContext", "Predicate", "SPECIALS", "compile_predicate",
           "condition_to_expr"]

#: the hit-scoped special variables, spelled ``$name`` in source
SPECIALS = ("value", "old", "addr", "size")

_WORD = 0xFFFFFFFF
_MANGLE = "__wp_"
_DOLLAR_RE = re.compile(r"\$([A-Za-z_]\w*|)")
#: the pre-predicate condition dialect (``">= 100"``) still spoken by
#: v1-v3 clients; it desugars to ``$value OP literal``
_LEGACY_COND_RE = re.compile(r"^\s*(==|!=|<=|>=|<|>)\s*(-?\d+)\s*$")


def _wrap(value: int) -> int:
    """Clamp to signed 32-bit two's-complement, like the simulator."""
    return to_signed(value & _WORD)


class EvalContext:
    """Everything a predicate may observe about one hit."""

    __slots__ = ("value", "old", "addr", "size", "read_word")

    def __init__(self, value: int = 0, old: int = 0, addr: int = 0,
                 size: int = 4,
                 read_word: Optional[Callable[[int], int]] = None):
        self.value = value
        self.old = old
        self.addr = addr
        self.size = size
        #: reads one *signed* word of debuggee memory (raises
        #: PredicateError for unmapped/misaligned addresses)
        self.read_word = read_word


class Predicate:
    """One compiled predicate: source text + evaluator + metadata."""

    __slots__ = ("source", "deps", "const", "_fn", "reads",
                 "dynamic_reads", "uses_hit")

    def __init__(self, source: str, fn: Callable[[EvalContext], int],
                 deps: FrozenSet[str], const: Optional[int],
                 reads: Tuple[Tuple[int, int], ...] = (),
                 dynamic_reads: bool = False, uses_hit: bool = False):
        self.source = source
        self._fn = fn
        #: which hit facts the evaluator can touch, from
        #: {"value", "old", "mem"} ($addr/$size are free)
        self.deps = deps
        #: folded value when the whole predicate is a constant
        self.const = const
        #: statically-resolved ``(address, extent)`` byte ranges the
        #: evaluator may load from (an indexed array contributes its
        #: whole extent); the dependency footprint the pruner tests
        #: write-site alias facts against
        self.reads = reads
        #: True when some load's address is computed at hit time (a
        #: ``*expr`` deref) — the footprint is then unbounded
        self.dynamic_reads = dynamic_reads
        #: True when the predicate observes $addr/$size (its value can
        #: differ between hits even with identical memory)
        self.uses_hit = uses_hit

    @property
    def needs_memory(self) -> bool:
        return "mem" in self.deps

    @property
    def needs_value(self) -> bool:
        return "value" in self.deps

    @property
    def needs_old(self) -> bool:
        return "old" in self.deps

    def evaluate(self, ctx: EvalContext) -> int:
        """The predicate's integer value for one hit (C semantics)."""
        if self.const is not None:
            return self.const
        return self._fn(ctx)

    def truth(self, ctx: EvalContext) -> bool:
        return bool(self.evaluate(ctx))

    def __repr__(self) -> str:
        return "<Predicate %r deps=%s%s>" % (
            self.source, "{%s}" % ",".join(sorted(self.deps)),
            " const=%d" % self.const if self.const is not None else "")


def condition_to_expr(text: str) -> str:
    """Desugar a wire-level ``condition`` into predicate source.

    The pre-v4 condition dialect ``"OP literal"`` (e.g. ``">= 100"``)
    becomes ``$value OP literal``; anything else is already predicate
    source and passes through untouched.
    """
    match = _LEGACY_COND_RE.match(text)
    if match is not None:
        return "$value %s %s" % (match.group(1), match.group(2))
    return text


# -- parsing ------------------------------------------------------------------

def _parse(source: str) -> A.Expr:
    """Parse predicate *source* (with ``$name`` specials) to an AST."""

    def mangle(match: "re.Match[str]") -> str:
        name = match.group(1)
        if name not in SPECIALS:
            raise PredicateCompileError(
                "unknown special variable $%s (have: %s)"
                % (name, ", ".join("$" + s for s in SPECIALS)),
                token="$%s" % name, source=source)
        return _MANGLE + name

    mangled = _DOLLAR_RE.sub(mangle, source)
    try:
        parser = Parser(mangled)
        expr = parser.parse_expression()
        trailing = parser.tok
    except CompileError as exc:
        raise PredicateCompileError(
            "cannot parse predicate %r: %s" % (source, exc),
            token=None, source=source) from exc
    if trailing.kind != "eof":
        raise PredicateCompileError(
            "trailing %r after predicate" % trailing.value,
            token=trailing.value, source=source)
    return expr


# -- compilation --------------------------------------------------------------

_Compiled = Tuple[Callable[[EvalContext], int], FrozenSet[str],
                  Optional[int]]

_EMPTY: FrozenSet[str] = frozenset()
_MEM: FrozenSet[str] = frozenset(("mem",))


class _Compiler:
    """Compiles a predicate AST into nested closures.

    *symtab* (a :class:`repro.asm.symtab.SymbolTable`) resolves plain
    identifiers; without one, only the ``$`` specials are available
    (unit tests, address-only predicates).
    """

    def __init__(self, source: str, symtab=None,
                 func: Optional[str] = None):
        self.source = source
        self.symtab = symtab
        self.func = func
        #: (address, extent) ranges compiled loads may touch; only
        #: loads that made it into the fast path are recorded (a
        #: folded-away branch can never execute, hence never read)
        self.reads: List[Tuple[int, int]] = []
        #: a load whose address is computed per hit was compiled
        self.dynamic_reads = False
        #: $addr/$size appeared in a compiled subtree
        self.uses_hit = False

    def error(self, message: str, token: Optional[str]
              ) -> PredicateCompileError:
        return PredicateCompileError(message, token=token,
                                     source=self.source)

    # each _compile_* returns (fn, deps, const); const is not None only
    # when the subtree folded to a literal (then fn ignores the ctx)

    def compile(self, node: A.Expr) -> _Compiled:
        method = getattr(self, "_compile_" + type(node).__name__.lower(),
                         None)
        if method is None:
            raise self.error("%s is not allowed in a predicate"
                             % type(node).__name__, None)
        return method(node)

    @staticmethod
    def _const(value: int) -> _Compiled:
        value = _wrap(value)
        return (lambda ctx: value), _EMPTY, value

    def _compile_num(self, node: A.Num) -> _Compiled:
        return self._const(node.value)

    def _compile_str(self, node: A.Str) -> _Compiled:
        raise self.error("string literals are not allowed in a "
                         "predicate", repr(node.value))

    def _compile_call(self, node: A.Call) -> _Compiled:
        raise self.error("function calls are not allowed in a "
                         "predicate", node.name)

    def _compile_var(self, node: A.Var) -> _Compiled:
        name = node.name
        if name.startswith(_MANGLE):
            special = name[len(_MANGLE):]
            if special == "value":
                return (lambda ctx: ctx.value), frozenset(("value",)), None
            if special == "old":
                return (lambda ctx: ctx.old), frozenset(("old",)), None
            if special == "addr":
                self.uses_hit = True
                return (lambda ctx: ctx.addr), _EMPTY, None
            self.uses_hit = True
            return (lambda ctx: ctx.size), _EMPTY, None
        entry = self._lookup(name)
        if entry.size > 4:
            raise self.error(
                "%s is %d bytes; predicate loads are word-sized "
                "(index or field it)" % (name, entry.size), name)
        address = entry.address
        self.reads.append((address, 4))

        def load(ctx: EvalContext) -> int:
            return ctx.read_word(address)

        return load, _MEM, None

    def _lookup(self, name: str):
        from repro.asm.symtab import SymbolError
        if self.symtab is None:
            raise self.error("undefined symbol %r (no symbol table in "
                             "scope)" % name, name)
        try:
            entry = self.symtab.lookup(name, self.func)
        except SymbolError:
            raise self.error("undefined symbol %r in predicate" % name,
                             name)
        if entry.kind == "register":
            raise self.error(
                "%s lives in a register; predicates read memory — "
                "use $value/$old for the watched storage" % name, name)
        if entry.is_frame_relative():
            raise self.error(
                "%s is frame-local; its frame may be dead at hit time "
                "— use $value/$old or a global" % name, name)
        if entry.address is None:
            raise self.error("%s has no storage address" % name, name)
        return entry

    def _address_of(self, node: A.Expr) -> _Compiled:
        """Compile an lvalue to its *address* (for & and loads)."""
        if isinstance(node, A.Var):
            if node.name.startswith(_MANGLE):
                raise self.error("cannot take the address of a $ "
                                 "special", "$" + node.name[len(_MANGLE):])
            entry = self._lookup(node.name)
            return self._const(entry.address)
        if isinstance(node, A.Field) and isinstance(node.base, A.Var):
            if node.arrow:
                raise self.error("-> is not supported in predicates "
                                 "(dereference explicitly)", node.name)
            entry = self._lookup("%s.%s" % (node.base.name, node.name))
            return self._const(entry.address)
        if isinstance(node, A.Index) and isinstance(node.base, A.Var):
            entry = self._lookup(node.base.name)
            elem = entry.elem or 4
            limit = entry.size
            base_addr = entry.address
            name = node.base.name
            index_fn, index_deps, index_const = self.compile(node.index)
            if index_const is not None:
                offset = index_const * elem
                if not 0 <= offset < limit:
                    raise self.error("%s[%d] is out of range"
                                     % (name, index_const), name)
                return self._const(base_addr + offset)

            def address(ctx: EvalContext) -> int:
                index = index_fn(ctx)
                offset = index * elem
                if not 0 <= offset < limit:
                    raise PredicateError(
                        "%s[%d] is out of range in predicate"
                        % (name, index), reason="bad_index",
                        symbol=name, index=index)
                return base_addr + offset

            # computed index: the load may land anywhere in the array
            self.reads.append((base_addr, limit))
            return address, index_deps | _MEM, None
        raise self.error("cannot take the address of this expression",
                         None)

    def _compile_index(self, node: A.Index) -> _Compiled:
        address_fn, deps, const = self._address_of(node)
        if const is not None:
            addr = const
            self.reads.append((addr, 4))
            return (lambda ctx: ctx.read_word(addr)), _MEM, None
        return (lambda ctx: ctx.read_word(address_fn(ctx))), \
            deps | _MEM, None

    def _compile_field(self, node: A.Field) -> _Compiled:
        address_fn, _deps, const = self._address_of(node)
        addr = const
        self.reads.append((addr, 4))
        return (lambda ctx: ctx.read_word(addr)), _MEM, None

    def _compile_unary(self, node: A.Unary) -> _Compiled:
        if node.op == "&":
            return self._address_of(node.operand)
        if node.op == "*":
            fn, deps, const = self.compile(node.operand)
            if const is not None:
                addr = const
                self.reads.append((addr, 4))
                return (lambda ctx: ctx.read_word(addr)), _MEM, None
            # address computed per hit: unbounded read footprint
            self.dynamic_reads = True
            return (lambda ctx: ctx.read_word(fn(ctx))), \
                deps | _MEM, None
        fn, deps, const = self.compile(node.operand)
        op = node.op
        if const is not None:
            return self._const(_apply_unary(op, const))
        if op == "-":
            return (lambda ctx: _wrap(-fn(ctx))), deps, None
        if op == "!":
            return (lambda ctx: 0 if fn(ctx) else 1), deps, None
        if op == "~":
            return (lambda ctx: _wrap(~fn(ctx))), deps, None
        raise self.error("unsupported unary operator %r" % op, op)

    def _compile_binary(self, node: A.Binary) -> _Compiled:
        op = node.op
        left_fn, left_deps, left_const = self.compile(node.left)
        # short-circuit folding: a constant left side of &&/|| decides
        # whether the right side is even compiled into the fast path
        if op in ("&&", "||") and left_const is not None:
            taken = bool(left_const)
            if (op == "&&" and not taken) or (op == "||" and taken):
                return self._const(0 if op == "&&" else 1)
            right_fn, right_deps, right_const = self.compile(node.right)
            if right_const is not None:
                return self._const(1 if right_const else 0)
            return (lambda ctx: 1 if right_fn(ctx) else 0), \
                right_deps, None
        right_fn, right_deps, right_const = self.compile(node.right)
        deps = left_deps | right_deps
        if op not in ("&&", "||") and _BINARY_OPS.get(op) is None:
            raise self.error("unsupported operator %r" % op, op)
        if left_const is not None and right_const is not None:
            try:
                return self._const(
                    _apply_binary(op, left_const, right_const))
            except PredicateError as exc:
                raise self.error(
                    "constant subexpression faults: %s" % exc, op)
        if op == "&&":
            return (lambda ctx: 1 if (left_fn(ctx) and right_fn(ctx))
                    else 0), deps, None
        if op == "||":
            return (lambda ctx: 1 if (left_fn(ctx) or right_fn(ctx))
                    else 0), deps, None
        apply = _BINARY_OPS[op]
        return (lambda ctx: apply(left_fn(ctx), right_fn(ctx))), \
            deps, None

    def _compile_ternary(self, node: A.Ternary) -> _Compiled:
        cond_fn, cond_deps, cond_const = self.compile(node.cond)
        if cond_const is not None:
            return self.compile(node.then if cond_const
                                else node.other)
        then_fn, then_deps, _then_const = self.compile(node.then)
        other_fn, other_deps, _other_const = self.compile(node.other)
        deps = cond_deps | then_deps | other_deps
        return (lambda ctx: then_fn(ctx) if cond_fn(ctx)
                else other_fn(ctx)), deps, None


def _apply_unary(op: str, value: int) -> int:
    if op == "-":
        return _wrap(-value)
    if op == "!":
        return 0 if value else 1
    return _wrap(~value)  # "~"


def _apply_binary(op: str, left: int, right: int) -> int:
    if op == "&&":
        return 1 if (left and right) else 0
    if op == "||":
        return 1 if (left or right) else 0
    return _BINARY_OPS[op](left, right)


def _div(left: int, right: int) -> int:
    if right == 0:
        raise PredicateError("division by zero in predicate",
                             reason="div_zero", left=left)
    # C semantics: truncation toward zero
    return _wrap(abs(left) // abs(right)
                 * (1 if (left < 0) == (right < 0) else -1))


def _mod(left: int, right: int) -> int:
    if right == 0:
        raise PredicateError("modulo by zero in predicate",
                             reason="div_zero", left=left)
    return _wrap(left - _div(left, right) * right)


_BINARY_OPS = {
    "+": lambda a, b: _wrap(a + b),
    "-": lambda a, b: _wrap(a - b),
    "*": lambda a, b: _wrap(a * b),
    "/": _div,
    "%": _mod,
    "&": lambda a, b: _wrap((a & _WORD) & (b & _WORD)),
    "|": lambda a, b: _wrap((a & _WORD) | (b & _WORD)),
    "^": lambda a, b: _wrap((a & _WORD) ^ (b & _WORD)),
    "<<": lambda a, b: _wrap(a << (b & 31)),
    ">>": lambda a, b: a >> (b & 31),  # arithmetic: a is signed
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
}


def compile_predicate(source: str, symtab=None,
                      func: Optional[str] = None) -> Predicate:
    """Compile predicate *source* once, for many evaluations.

    Raises :class:`~repro.errors.PredicateCompileError` (with the
    offending token in context) for anything that cannot be resolved
    and checked now — never defer a compile problem to the first hit.
    """
    if not source or not source.strip():
        raise PredicateCompileError("empty predicate", token="",
                                    source=source)
    node = _parse(source)
    compiler = _Compiler(source, symtab, func)
    fn, deps, const = compiler.compile(node)
    return Predicate(source, fn, deps, const,
                     reads=tuple(compiler.reads),
                     dynamic_reads=compiler.dynamic_reads,
                     uses_hit=compiler.uses_hit)


def memory_reader(mem) -> Callable[[int], int]:
    """Wrap a :class:`repro.machine.memory.Memory` as a guarded signed
    word reader for :class:`EvalContext`."""
    from repro.machine.memory import MemoryFault

    def read(addr: int) -> int:
        try:
            return to_signed(mem.read_word(addr & _WORD & ~3))
        except (MemoryFault, IndexError, ValueError) as exc:
            raise PredicateError(
                "bad dereference of 0x%x in predicate" % (addr & _WORD),
                reason="bad_deref", addr=addr & _WORD) from exc

    return read
