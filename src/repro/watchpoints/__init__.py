"""Predicate watchpoints: conditional and transition data breakpoints.

The MRS answers "was this region accessed?"; this package answers the
debugger-level question "*should this access stop the program?*".  It
has two halves:

* :mod:`repro.watchpoints.predicate` — the predicate language: one
  mini-C expression over ``$value`` / ``$old`` / ``$addr`` / ``$size``
  and the debuggee's globals, compiled once per watchpoint into a tree
  of closures (with constant folding and dependency tracking);
* :mod:`repro.watchpoints.engine` — the evaluation engine between the
  MRS notification callback and the debugger's action dispatch:
  access filter, byte-range guard, predicate evaluation, transition
  edge detection, per-watchpoint counters, and disarm-on-error.

Transition watchpoints follow Arya et al. ("Transition Watchpoints:
Teaching Old Debuggers New Tricks"): the watchpoint carries a shadow
truth value, initialised from memory at arm time, and fires only when
the predicate's truth *changes* on the selected edge.
"""

from repro.errors import PredicateCompileError, PredicateError
from repro.watchpoints.engine import (ACCESS_KINDS, EDGES, WatchStats,
                                      WatchpointEngine, access_allows,
                                      edge_fires)
from repro.watchpoints.predicate import (SPECIALS, EvalContext,
                                         Predicate, compile_predicate,
                                         condition_to_expr,
                                         memory_reader)

__all__ = [
    "ACCESS_KINDS", "EDGES", "SPECIALS",
    "EvalContext", "Predicate", "WatchStats", "WatchpointEngine",
    "PredicateCompileError", "PredicateError",
    "access_allows", "compile_predicate", "condition_to_expr",
    "edge_fires", "memory_reader",
]
