"""Register model for the SPARC-like target machine.

The architecture exposes:

* eight globals ``%g0``-``%g7`` (``%g0`` reads as zero, writes discarded),
* three windowed banks ``%o0``-``%o7``, ``%l0``-``%l7``, ``%i0``-``%i7``
  with SPARC ``save``/``restore`` semantics (the caller's *outs* become the
  callee's *ins*),
* four global *monitor registers* ``%m0``-``%m3``, an architectural
  extension standing in for SPARC ancillary state registers.  They hold the
  per-write-type segment caches of the monitored region service
  (see DESIGN.md, "Monitor registers").

Registers are named by small integer ids (see ``REGISTER_IDS``); the
assembler resolves textual names once so the simulator core never parses
strings.
"""

from __future__ import annotations

from repro.errors import ReproError

from typing import Dict, List

WORD_MASK = 0xFFFFFFFF

#: Number of register windows resident in the register file.  ``save``
#: beyond this depth models a window-overflow trap (the spill itself happens
#: in kernel mode and is charged as cycles, not simulated stores).
NUM_WINDOWS = 8

#: Windows spilled/filled per overflow/underflow trap.  Real SunOS trap
#: handlers move several windows at once precisely so that call-depth
#: oscillation (e.g. a procedure-call write check at steady recursion
#: depth) does not trap on every save/restore pair.
WINDOW_TRAP_BULK = 4

NUM_GLOBALS = 8
NUM_MONITOR = 4

# Architectural register ids.
# g0-g7 -> 0..7, o0-o7 -> 8..15, l0-l7 -> 16..23, i0-i7 -> 24..31,
# m0-m3 -> 32..35.
G0 = 0
O_BASE = 8
L_BASE = 16
I_BASE = 24
M_BASE = 32
NUM_REGISTER_IDS = 36

SP = O_BASE + 6  # %sp == %o6
FP = I_BASE + 6  # %fp == %i6
O7 = O_BASE + 7  # call return address
I7 = I_BASE + 7


def _build_register_ids() -> Dict[str, int]:
    ids: Dict[str, int] = {}
    for i in range(8):
        ids["%%g%d" % i] = G0 + i
        ids["%%o%d" % i] = O_BASE + i
        ids["%%l%d" % i] = L_BASE + i
        ids["%%i%d" % i] = I_BASE + i
    for i in range(NUM_MONITOR):
        ids["%%m%d" % i] = M_BASE + i
    ids["%sp"] = SP
    ids["%fp"] = FP
    return ids


#: Map from register name (``%fp``, ``%o0``, ...) to register id.
REGISTER_IDS: Dict[str, int] = _build_register_ids()

#: Inverse map (canonical names; ``%o6``/``%i6`` print as ``%sp``/``%fp``).
REGISTER_NAMES: Dict[int, str] = {}
for _name, _rid in REGISTER_IDS.items():
    if _name in ("%sp", "%fp"):
        continue
    REGISTER_NAMES[_rid] = _name
REGISTER_NAMES[SP] = "%sp"
REGISTER_NAMES[FP] = "%fp"


def register_name(rid: int) -> str:
    """Return the canonical assembly name for register id *rid*."""
    return REGISTER_NAMES[rid]


class _Window:
    """One register window: eight *outs* and eight *locals*.

    The *ins* of a window are the *outs* of its parent, which gives exact
    SPARC overlap semantics without a ring buffer.
    """

    __slots__ = ("outs", "locals", "parent")

    def __init__(self, parent: "_Window" = None):
        self.outs: List[int] = [0] * 8
        self.locals: List[int] = [0] * 8
        self.parent = parent


class WindowError(ReproError):
    """Raised on ``restore`` with no saved window."""


class RegisterFile:
    """Windowed register file with overflow/underflow accounting.

    ``save_window``/``restore_window`` return ``True`` when the operation
    caused a window overflow or underflow trap, so the CPU can charge the
    corresponding cycle cost.
    """

    __slots__ = ("globals", "monitors", "_window", "_resident", "_spilled",
                 "depth")

    def __init__(self):
        self.globals: List[int] = [0] * NUM_GLOBALS
        self.monitors: List[int] = [0] * NUM_MONITOR
        self._window = _Window(parent=None)
        # Number of windows materialized in the register file (incl. current)
        self._resident = 1
        # Number of windows spilled to the (kernel-side) save area.
        self._spilled = 0
        # Call depth, for diagnostics.
        self.depth = 1

    def read(self, rid: int) -> int:
        if rid < 8:
            return self.globals[rid] if rid else 0
        if rid < 16:
            return self._window.outs[rid - 8]
        if rid < 24:
            return self._window.locals[rid - 16]
        if rid < 32:
            parent = self._window.parent
            if parent is None:
                return 0
            return parent.outs[rid - 24]
        return self.monitors[rid - 32]

    def write(self, rid: int, value: int) -> None:
        value &= WORD_MASK
        if rid < 8:
            if rid:
                self.globals[rid] = value
            return
        if rid < 16:
            self._window.outs[rid - 8] = value
            return
        if rid < 24:
            self._window.locals[rid - 16] = value
            return
        if rid < 32:
            parent = self._window.parent
            if parent is not None:
                parent.outs[rid - 24] = value
            return
        self.monitors[rid - 32] = value

    def save_window(self) -> bool:
        """Push a new window (as ``save`` does).  Returns overflow flag.

        On overflow the trap handler spills ``WINDOW_TRAP_BULK`` windows
        at once, so steady-depth oscillation does not trap every time.
        """
        self._window = _Window(parent=self._window)
        self.depth += 1
        if self._resident >= NUM_WINDOWS - 1:
            bulk = min(WINDOW_TRAP_BULK, self._resident - 1)
            self._spilled += bulk
            self._resident -= bulk - 1  # spilled bulk, gained the new one
            return True
        self._resident += 1
        return False

    def restore_window(self) -> bool:
        """Pop the current window (as ``restore``).  Returns underflow flag."""
        parent = self._window.parent
        if parent is None:
            raise WindowError("restore with no saved register window")
        self._window = parent
        self.depth -= 1
        if self._resident > 1:
            self._resident -= 1
            return False
        if self._spilled:
            bulk = min(WINDOW_TRAP_BULK, self._spilled)
            self._spilled -= bulk
            self._resident = bulk
            return True
        return False
