"""Instruction set for the SPARC-like target machine.

The set is a faithful subset of SPARC v8 integer instructions: 3-operand
ALU ops with optional condition-code setting, ``sethi``, loads and stores
of bytes / words / doublewords, delayed control transfers (``b<cond>``
with an optional annul bit, ``call``, ``jmpl``), register-window
``save``/``restore`` and the ``ta`` software trap.

Instructions are decoded once (by :mod:`repro.asm.parser`) into the
objects defined here; :class:`repro.machine.cpu.CPU` executes them by
calling :meth:`Instruction.execute`.  Every instruction carries a ``tag``
used by the evaluation harness to attribute cycles: ``"orig"`` for program
instructions, ``"check"`` / ``"lib"`` / ``"patch"`` / ``"preheader"`` /
``"fpcheck"`` / ``"jmpcheck"`` / ``"pad"`` for code added by the monitored
region service (see DESIGN.md §3).
"""

from __future__ import annotations

from repro.errors import ReproError

from typing import Optional

from repro.isa.registers import register_name

WORD_MASK = 0xFFFFFFFF
SIGN_BIT = 0x80000000

#: simm13 immediate range accepted by ALU / memory instructions.
SIMM13_MIN = -4096
SIMM13_MAX = 4095


class IsaError(ReproError):
    """Raised for malformed instructions (bad immediate, bad operand)."""


def to_signed(value: int) -> int:
    """Interpret a 32-bit value as a signed integer."""
    value &= WORD_MASK
    return value - 0x100000000 if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Truncate a Python integer to its 32-bit two's-complement bits."""
    return value & WORD_MASK


def check_simm13(value: int) -> int:
    if not SIMM13_MIN <= value <= SIMM13_MAX:
        raise IsaError("immediate %d out of simm13 range" % value)
    return value


class Operand2:
    """Second ALU source: either a register or a simm13 immediate."""

    __slots__ = ("is_imm", "value")

    def __init__(self, is_imm: bool, value: int):
        self.is_imm = is_imm
        self.value = check_simm13(value) if is_imm else value

    @classmethod
    def reg(cls, rid: int) -> "Operand2":
        return cls(False, rid)

    @classmethod
    def imm(cls, value: int) -> "Operand2":
        return cls(True, value)

    def read(self, regs) -> int:
        if self.is_imm:
            return self.value & WORD_MASK
        return regs.read(self.value)

    def __str__(self) -> str:
        return str(self.value) if self.is_imm else register_name(self.value)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Operand2) and self.is_imm == other.is_imm
                and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.is_imm, self.value))


class Instruction:
    """Base class for decoded instructions."""

    __slots__ = ("tag", "site")
    #: mnemonic, set by subclasses
    mnemonic = "?"

    def __init__(self):
        self.tag = "orig"
        #: write-site id assigned by the instrumenter (stores only).
        self.site: Optional[int] = None

    def execute(self, cpu) -> None:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.mnemonic


# ---------------------------------------------------------------------------
# ALU operations
# ---------------------------------------------------------------------------

def _op_add(a: int, b: int) -> int:
    return (a + b) & WORD_MASK


def _op_sub(a: int, b: int) -> int:
    return (a - b) & WORD_MASK


def _op_and(a: int, b: int) -> int:
    return a & b


def _op_andn(a: int, b: int) -> int:
    return a & ~b & WORD_MASK


def _op_or(a: int, b: int) -> int:
    return a | b


def _op_xor(a: int, b: int) -> int:
    return a ^ b


def _op_sll(a: int, b: int) -> int:
    return (a << (b & 31)) & WORD_MASK


def _op_srl(a: int, b: int) -> int:
    return (a & WORD_MASK) >> (b & 31)


def _op_sra(a: int, b: int) -> int:
    return to_unsigned(to_signed(a) >> (b & 31))


def _op_smul(a: int, b: int) -> int:
    return to_unsigned(to_signed(a) * to_signed(b))


def _op_sdiv(a: int, b: int) -> int:
    sb = to_signed(b)
    if sb == 0:
        raise ZeroDivisionError("sdiv by zero")
    sa = to_signed(a)
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return to_unsigned(quotient)


ALU_OPS = {
    "add": _op_add,
    "sub": _op_sub,
    "and": _op_and,
    "andn": _op_andn,
    "or": _op_or,
    "xor": _op_xor,
    "sll": _op_sll,
    "srl": _op_srl,
    "sra": _op_sra,
    "smul": _op_smul,
    "sdiv": _op_sdiv,
}

#: extra cycles beyond the 1-cycle base, per ALU op.
ALU_EXTRA_CYCLES = {"smul": 4, "sdiv": 19}


class ArithInsn(Instruction):
    """3-operand ALU instruction, optionally setting the condition codes."""

    __slots__ = ("op", "rs1", "op2", "rd", "set_cc", "_fn")

    def __init__(self, op: str, rs1: int, op2: Operand2, rd: int,
                 set_cc: bool = False):
        super().__init__()
        if op not in ALU_OPS:
            raise IsaError("unknown ALU op %r" % op)
        self.op = op
        self.rs1 = rs1
        self.op2 = op2
        self.rd = rd
        self.set_cc = set_cc
        self._fn = ALU_OPS[op]

    @property
    def mnemonic(self) -> str:
        return self.op + ("cc" if self.set_cc else "")

    def execute(self, cpu) -> None:
        regs = cpu.regs
        a = regs.read(self.rs1)
        b = self.op2.read(regs)
        result = self._fn(a, b)
        regs.write(self.rd, result)
        extra = ALU_EXTRA_CYCLES.get(self.op)
        if extra:
            cpu.charge(extra)
        if self.set_cc:
            n = 1 if result & SIGN_BIT else 0
            z = 1 if result == 0 else 0
            v = c = 0
            if self.op == "add":
                full = a + b
                c = 1 if full > WORD_MASK else 0
                v = 1 if (~(a ^ b) & (a ^ result)) & SIGN_BIT else 0
            elif self.op == "sub":
                c = 1 if (a & WORD_MASK) < (b & WORD_MASK) else 0
                v = 1 if ((a ^ b) & (a ^ result)) & SIGN_BIT else 0
            cpu.set_icc(n, z, v, c)

    def __str__(self) -> str:
        return "%s %s,%s,%s" % (self.mnemonic, register_name(self.rs1),
                                self.op2, register_name(self.rd))


class SethiInsn(Instruction):
    """``sethi imm22, rd``: rd = imm22 << 10."""

    __slots__ = ("imm22", "rd")
    mnemonic = "sethi"

    def __init__(self, imm22: int, rd: int):
        super().__init__()
        if not 0 <= imm22 < (1 << 22):
            raise IsaError("sethi immediate out of range")
        self.imm22 = imm22
        self.rd = rd

    def execute(self, cpu) -> None:
        cpu.regs.write(self.rd, (self.imm22 << 10) & WORD_MASK)

    def __str__(self) -> str:
        return "sethi %%hi(0x%x),%s" % (self.imm22 << 10,
                                        register_name(self.rd))


class NopInsn(Instruction):
    """``nop`` (architecturally ``sethi 0, %g0``)."""

    __slots__ = ()
    mnemonic = "nop"

    def execute(self, cpu) -> None:
        return None


# ---------------------------------------------------------------------------
# Memory access
# ---------------------------------------------------------------------------

class MemAddress:
    """``[rs1 + rs2]`` or ``[rs1 + simm13]`` effective address."""

    __slots__ = ("rs1", "rs2", "imm")

    def __init__(self, rs1: int, rs2: Optional[int] = None, imm: int = 0):
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = 0 if rs2 is not None else check_simm13(imm)

    def effective(self, regs) -> int:
        base = regs.read(self.rs1)
        if self.rs2 is not None:
            return (base + regs.read(self.rs2)) & WORD_MASK
        return (base + self.imm) & WORD_MASK

    def __str__(self) -> str:
        if self.rs2 is not None:
            return "[%s+%s]" % (register_name(self.rs1),
                                register_name(self.rs2))
        if self.imm:
            return "[%s%+d]" % (register_name(self.rs1), self.imm)
        return "[%s]" % register_name(self.rs1)


class LoadInsn(Instruction):
    """``ld``/``ldub``/``ldsb``/``ldd`` — memory load."""

    __slots__ = ("width", "signed", "addr", "rd")

    def __init__(self, width: int, addr: MemAddress, rd: int,
                 signed: bool = False):
        super().__init__()
        if width not in (1, 4, 8):
            raise IsaError("unsupported load width %d" % width)
        self.width = width
        self.signed = signed
        self.addr = addr
        self.rd = rd

    @property
    def mnemonic(self) -> str:
        if self.width == 1:
            return "ldsb" if self.signed else "ldub"
        return "ldd" if self.width == 8 else "ld"

    def execute(self, cpu) -> None:
        ea = self.addr.effective(cpu.regs)
        if self.width == 1:
            value = cpu.load_byte(ea)
            if self.signed and value & 0x80:
                value |= 0xFFFFFF00
            cpu.regs.write(self.rd, value)
        elif self.width == 4:
            cpu.regs.write(self.rd, cpu.load_word(ea))
        else:
            if self.rd & 1:
                raise IsaError("ldd destination must be even register")
            cpu.regs.write(self.rd, cpu.load_word(ea))
            cpu.regs.write(self.rd + 1, cpu.load_word(ea + 4))

    def __str__(self) -> str:
        return "%s %s,%s" % (self.mnemonic, self.addr,
                             register_name(self.rd))


class StoreInsn(Instruction):
    """``st``/``stb``/``std`` — memory store (a *write instruction*)."""

    __slots__ = ("width", "rd", "addr")

    def __init__(self, width: int, rd: int, addr: MemAddress):
        super().__init__()
        if width not in (1, 4, 8):
            raise IsaError("unsupported store width %d" % width)
        self.width = width
        self.rd = rd
        self.addr = addr

    @property
    def mnemonic(self) -> str:
        if self.width == 1:
            return "stb"
        return "std" if self.width == 8 else "st"

    def execute(self, cpu) -> None:
        ea = self.addr.effective(cpu.regs)
        value = cpu.regs.read(self.rd)
        if self.width == 1:
            cpu.store_byte(ea, value & 0xFF, self)
        elif self.width == 4:
            cpu.store_word(ea, value, self)
        else:
            if self.rd & 1:
                raise IsaError("std source must be even register")
            cpu.store_word(ea, value, self)
            cpu.store_word(ea + 4, cpu.regs.read(self.rd + 1), self)

    def __str__(self) -> str:
        return "%s %s,%s" % (self.mnemonic, register_name(self.rd),
                             self.addr)


# ---------------------------------------------------------------------------
# Control transfer
# ---------------------------------------------------------------------------

def _cc_a(n, z, v, c):
    return True


def _cc_n(n, z, v, c):
    return False


def _cc_e(n, z, v, c):
    return z == 1


def _cc_ne(n, z, v, c):
    return z == 0


def _cc_l(n, z, v, c):
    return (n ^ v) == 1


def _cc_le(n, z, v, c):
    return z == 1 or (n ^ v) == 1


def _cc_g(n, z, v, c):
    return not (z == 1 or (n ^ v) == 1)


def _cc_ge(n, z, v, c):
    return (n ^ v) == 0


def _cc_lu(n, z, v, c):
    return c == 1


def _cc_leu(n, z, v, c):
    return c == 1 or z == 1


def _cc_gu(n, z, v, c):
    return not (c == 1 or z == 1)


def _cc_geu(n, z, v, c):
    return c == 0


def _cc_neg(n, z, v, c):
    return n == 1


def _cc_pos(n, z, v, c):
    return n == 0


BRANCH_CONDS = {
    "a": _cc_a, "n": _cc_n, "e": _cc_e, "ne": _cc_ne,
    "l": _cc_l, "le": _cc_le, "g": _cc_g, "ge": _cc_ge,
    "lu": _cc_lu, "leu": _cc_leu, "gu": _cc_gu, "geu": _cc_geu,
    "neg": _cc_neg, "pos": _cc_pos,
}

#: conditions whose branch is the logical negation of another; used by
#: analyses that reason about the false edge.
NEGATED_COND = {
    "a": "n", "n": "a", "e": "ne", "ne": "e", "l": "ge", "ge": "l",
    "le": "g", "g": "le", "lu": "geu", "geu": "lu", "leu": "gu",
    "gu": "leu", "neg": "pos", "pos": "neg",
}


class BranchInsn(Instruction):
    """``b<cond>[,a] target`` — delayed conditional branch.

    SPARC annul semantics: for conditional branches the delay slot is
    annulled only when the branch is *not* taken; for ``ba,a`` the delay
    slot is always annulled (which is what makes single-instruction
    Kessler patches possible); ``bn,a`` annuls unconditionally too.
    """

    __slots__ = ("cond", "annul", "target", "_fn")

    def __init__(self, cond: str, target: int, annul: bool = False):
        super().__init__()
        if cond not in BRANCH_CONDS:
            raise IsaError("unknown branch condition %r" % cond)
        self.cond = cond
        self.annul = annul
        self.target = target
        self._fn = BRANCH_CONDS[cond]

    @property
    def mnemonic(self) -> str:
        return "b" + self.cond + (",a" if self.annul else "")

    def execute(self, cpu) -> None:
        taken = self._fn(cpu.icc_n, cpu.icc_z, cpu.icc_v, cpu.icc_c)
        if taken:
            # ``ba,a`` annuls its delay slot even though taken.
            annul_slot = self.annul and self.cond == "a"
            cpu.branch_taken(self.target, annul_slot)
        elif self.annul:
            cpu.branch_untaken_annul()

    def __str__(self) -> str:
        return "%s 0x%x" % (self.mnemonic, self.target)


class CallInsn(Instruction):
    """``call target`` — pc to ``%o7``, delayed transfer."""

    __slots__ = ("target",)
    mnemonic = "call"

    def __init__(self, target: int):
        super().__init__()
        self.target = target

    def execute(self, cpu) -> None:
        cpu.regs.write(15, cpu.pc)  # %o7
        cpu.branch_taken(self.target, False)

    def __str__(self) -> str:
        return "call 0x%x" % self.target


class JmplInsn(Instruction):
    """``jmpl rs1+op2, rd`` — indirect jump; ``ret`` is jmpl %i7+8, %g0."""

    __slots__ = ("rs1", "op2", "rd")
    mnemonic = "jmpl"

    def __init__(self, rs1: int, op2: Operand2, rd: int):
        super().__init__()
        self.rs1 = rs1
        self.op2 = op2
        self.rd = rd

    def execute(self, cpu) -> None:
        target = (cpu.regs.read(self.rs1) + self.op2.read(cpu.regs)) \
            & WORD_MASK
        cpu.regs.write(self.rd, cpu.pc)
        cpu.branch_taken(target, False)

    def __str__(self) -> str:
        return "jmpl %s+%s,%s" % (register_name(self.rs1), self.op2,
                                  register_name(self.rd))


class SaveInsn(Instruction):
    """``save rs1, op2, rd`` — add in the old window, then push a window."""

    __slots__ = ("rs1", "op2", "rd")
    mnemonic = "save"

    def __init__(self, rs1: int, op2: Operand2, rd: int):
        super().__init__()
        self.rs1 = rs1
        self.op2 = op2
        self.rd = rd

    def execute(self, cpu) -> None:
        regs = cpu.regs
        result = (regs.read(self.rs1) + self.op2.read(regs)) & WORD_MASK
        overflow = regs.save_window()
        regs.write(self.rd, result)
        if overflow:
            cpu.charge(cpu.costs.window_trap)
        cpu.notify_window(+1)

    def __str__(self) -> str:
        return "save %s,%s,%s" % (register_name(self.rs1), self.op2,
                                  register_name(self.rd))


class RestoreInsn(Instruction):
    """``restore [rs1, op2, rd]`` — add in old window, pop, write in new."""

    __slots__ = ("rs1", "op2", "rd")
    mnemonic = "restore"

    def __init__(self, rs1: int = 0, op2: Operand2 = None, rd: int = 0):
        super().__init__()
        self.rs1 = rs1
        self.op2 = op2 if op2 is not None else Operand2.imm(0)
        self.rd = rd

    def execute(self, cpu) -> None:
        regs = cpu.regs
        result = (regs.read(self.rs1) + self.op2.read(regs)) & WORD_MASK
        underflow = regs.restore_window()
        regs.write(self.rd, result)
        if underflow:
            cpu.charge(cpu.costs.window_trap)
        cpu.notify_window(-1)

    def __str__(self) -> str:
        return "restore %s,%s,%s" % (register_name(self.rs1), self.op2,
                                     register_name(self.rd))


class TrapInsn(Instruction):
    """``ta code`` — software trap into the host (Python) trap handlers."""

    __slots__ = ("code",)
    mnemonic = "ta"

    def __init__(self, code: int):
        super().__init__()
        self.code = code

    def execute(self, cpu) -> None:
        cpu.trap(self.code)

    def __str__(self) -> str:
        return "ta 0x%x" % self.code
