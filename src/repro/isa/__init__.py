"""Instruction set and register model of the SPARC-like target."""
