"""008.espresso mimic: two-level logic minimization over bit-set covers.

Espresso manipulates covers (arrays of bit-set cubes) with heavy use of
C ``register`` declarations.  Writes come from cube set operations
(monotonic result stores), per-column count updates through pointers
(loop-invariant addresses), and scattered scalar bookkeeping.  The paper
reports a balanced elimination mix for it (23% symbol / 19.5% LI /
15.4% range) — the mimic mixes all three write classes deliberately.
"""

from repro.workloads.common import RAND_SOURCE, scaled

NAME = "008.espresso"
LANG = "C"
DESCRIPTION = "bit-set cover operations with register-heavy loops"

_TEMPLATE = RAND_SOURCE + """
int cover_a[{nwords}];
int cover_b[{nwords}];
int cover_r[{nwords}];
int col_count[{width}];

int set_and(register int ra, register int rb, register int rr) {
    register int i;
    for (i = 0; i < {width}; i = i + 1) {
        cover_r[rr + i] = cover_a[ra + i] & cover_b[rb + i];
    }
    return 0;
}

int set_or(register int ra, register int rb, register int rr) {
    register int i;
    for (i = 0; i < {width}; i = i + 1) {
        cover_r[rr + i] = cover_a[ra + i] | cover_b[rb + i];
    }
    return 0;
}

int count_ones(register int w) {
    register int n;
    n = 0;
    while (w != 0) {
        n = n + (w & 1);
        w = w >> 1;
    }
    return n;
}

int column_counts(int *counter) {
    register int c;
    register int i;
    register int j;
    for (c = 0; c < {ncubes}; c = c + 1) {
        for (i = 0; i < {width}; i = i + 1) {
            j = count_ones(cover_r[c * {width} + i]);
            *counter = *counter + j;
            col_count[i] = col_count[i] + j;
        }
    }
    return *counter;
}

int main() {
    register int c;
    register int i;
    int total;
    int check;
    __seed = 99;
    for (i = 0; i < {nwords}; i = i + 1) {
        cover_a[i] = rnd(65536);
        cover_b[i] = rnd(65536);
    }
    total = 0;
    for (c = 0; c < {ncubes}; c = c + 1) {
        if (c & 1) {
            set_or(c * {width}, c * {width}, c * {width});
        } else {
            set_and(c * {width}, c * {width}, c * {width});
        }
    }
    column_counts(&total);
    check = total;
    for (i = 0; i < {width}; i = i + 1) {
        check = check * 5 + col_count[i];
    }
    print(check);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    ncubes = scaled(40, scale, minimum=4)
    width = 8
    return (_TEMPLATE.replace("{nwords}", str(ncubes * width))
            .replace("{ncubes}", str(ncubes))
            .replace("{width}", str(width)))
