"""022.li mimic: a small Lisp evaluator over cons cells.

xlisp spends its time in ``xleval``/``cons``: deep recursion (parameter
homing stores on every call) plus heap writes building cells.  It had
the *highest* write-check overhead in Table 1 (128.5% for Bitmap) and
75.9% symbol elimination — almost all its writes are stores of locals
and parameters that symbol matching can claim.
"""

from repro.workloads.common import scaled

NAME = "022.li"
LANG = "C"
DESCRIPTION = "lisp cons/eval kernel; recursion-dominant"

_TEMPLATE = """
int heap[{heapwords}];
int hp;

int cons(int car_v, int cdr_v) {
    int cell;
    cell = hp;
    heap[hp] = car_v;
    heap[hp + 1] = cdr_v;
    hp = hp + 2;
    return cell + 1;
}

int car(int p) { return heap[p - 1]; }
int cdr(int p) { return heap[p]; }
int is_atom(int p) {
    if (p & 1) return 0;
    return 1;
}

int num(int v) { return v * 2; }
int val(int p) { return p / 2; }

int mklist(int depth, int seed) {
    int left;
    int right;
    if (depth <= 0) {
        return num(seed % 10 + 1);
    }
    left = mklist(depth - 1, seed * 3 + 1);
    right = mklist(depth - 1, seed * 5 + 2);
    return cons(left, cons(right, num(seed % 3)));
}

int xleval(int form) {
    int op;
    int a;
    int b;
    if (is_atom(form)) {
        return val(form);
    }
    a = xleval(car(form));
    b = xleval(car(cdr(form)));
    op = val(cdr(cdr(form)));
    if (op == 0) return a + b;
    if (op == 1) return a - b;
    return a * b % 16384;
}

int main() {
    int round;
    int form;
    int check;
    check = 0;
    for (round = 0; round < {rounds}; round = round + 1) {
        hp = 0;
        form = mklist({depth}, round + 3);
        check = (check * 7 + xleval(form)) % 1000000;
    }
    print(check);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    rounds = scaled(16, scale, minimum=2)
    depth = 6
    heapwords = 4 * (3 * (2 ** depth))
    return (_TEMPLATE.replace("{rounds}", str(rounds))
            .replace("{depth}", str(depth))
            .replace("{heapwords}", str(heapwords)))
