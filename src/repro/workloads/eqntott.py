"""023.eqntott mimic: truth-table term sorting.

The real eqntott spends nearly all its time in ``cmppt``, comparing
bit-vector terms held in registers; dynamic writes are rare (an
occasional swap).  The paper measured essentially zero overhead for it
(Table 1) and 71.9% symbol elimination (Table 2).  This mimic performs a
selection sort over fixed-width terms where comparison loops are
register-only and writes happen only on swaps.
"""

from repro.workloads.common import RAND_SOURCE, scaled

NAME = "023.eqntott"
LANG = "C"
DESCRIPTION = "bit-vector term sort; compare-dominant, write-starved"

_TEMPLATE = RAND_SOURCE + """
int terms[{nwords}];

int cmppt(register int a, register int b) {
    register int i;
    i = 0;
    while (i < {width}) {
        if (terms[a * {width} + i] < terms[b * {width} + i]) return -1;
        if (terms[a * {width} + i] > terms[b * {width} + i]) return 1;
        i = i + 1;
    }
    return 0;
}

int swap(int a, int b) {
    register int i;
    int t;
    for (i = 0; i < {width}; i = i + 1) {
        t = terms[a * {width} + i];
        terms[a * {width} + i] = terms[b * {width} + i];
        terms[b * {width} + i] = t;
    }
    return 0;
}

int main() {
    register int i;
    register int j;
    register int best;
    int sum;
    __seed = 12345;
    for (i = 0; i < {nwords}; i = i + 1) {
        terms[i] = rnd(64);
    }
    for (i = 0; i < {nterms} - 1; i = i + 1) {
        best = i;
        for (j = i + 1; j < {nterms}; j = j + 1) {
            if (cmppt(j, best) < 0) {
                best = j;
            }
        }
        if (best != i) {
            swap(i, best);
        }
    }
    sum = 0;
    for (i = 0; i < {nterms}; i = i + 1) {
        sum = sum * 3 + terms[i * {width}];
    }
    print(sum);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    nterms = scaled(44, scale, minimum=6)
    width = 4
    return (_TEMPLATE.replace("{nwords}", str(nterms * width))
            .replace("{nterms}", str(nterms))
            .replace("{width}", str(width)))
