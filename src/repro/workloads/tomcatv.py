"""047.tomcatv mimic: vectorized mesh-generation stencil (fixed-point).

tomcatv sweeps 2-D grids with neighbour stencils; writes walk rows
monotonically, so loop optimization converts them to range checks
(paper: 81.2% eliminated, 10.8% range)."""

from repro.workloads.common import scaled

NAME = "047.tomcatv"
LANG = "F"
DESCRIPTION = "2-D stencil sweeps over mesh arrays"

_TEMPLATE = """
int xg[{n}][{n}];
int yg[{n}][{n}];
int rx[{n}][{n}];
int ry[{n}][{n}];

int main() {
    int i;
    int j;
    int it;
    int xx;
    int yy;
    int check;
    for (i = 0; i < {n}; i = i + 1) {
        for (j = 0; j < {n}; j = j + 1) {
            xg[i][j] = i * 8 + j;
            yg[i][j] = i - j * 4;
            rx[i][j] = 0;
            ry[i][j] = 0;
        }
    }
    for (it = 0; it < {iters}; it = it + 1) {
        for (i = 1; i < {n} - 1; i = i + 1) {
            for (j = 1; j < {n} - 1; j = j + 1) {
                xx = xg[i][j + 1] - xg[i][j - 1]
                   + xg[i + 1][j] - xg[i - 1][j];
                yy = yg[i][j + 1] - yg[i][j - 1]
                   + yg[i + 1][j] - yg[i - 1][j];
                rx[i][j] = xx / 4;
                ry[i][j] = yy / 4;
            }
        }
        for (i = 1; i < {n} - 1; i = i + 1) {
            for (j = 1; j < {n} - 1; j = j + 1) {
                xg[i][j] = xg[i][j] + rx[i][j] % 9 - 4;
                yg[i][j] = yg[i][j] + ry[i][j] % 9 - 4;
            }
        }
    }
    check = 0;
    for (i = 0; i < {n}; i = i + 1) {
        for (j = 0; j < {n}; j = j + 1) {
            check = (check * 3 + xg[i][j] + yg[i][j]) % 1000000;
        }
    }
    print(check);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    n = scaled(24, scale, minimum=6)
    iters = 4
    return _TEMPLATE.replace("{n}", str(n)).replace("{iters}", str(iters))
