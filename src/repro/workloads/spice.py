"""013.spice2g6 mimic: sparse-matrix solve with indirection.

spice's writes scatter through index vectors (``a[col[j]]``), which no
static analysis can bound — those checks stay.  Its scalar bookkeeping
writes are symbol-matchable, giving the paper's 78.9% elimination with
almost nothing from loop optimization (0.2% LI, 1.0% range).
"""

from repro.workloads.common import RAND_SOURCE, scaled

NAME = "013.spice2g6"
LANG = "F"
DESCRIPTION = "sparse matrix-vector iteration with indirect writes"

_TEMPLATE = RAND_SOURCE + """
int val[{nnz}];
int col[{nnz}];
int rowptr[{nplus}];
int x[{n}];
int y[{n}];

int main() {
    int i;
    int j;
    int k;
    int sweep;
    int acc;
    int check;
    __seed = 31415;
    k = 0;
    for (i = 0; i < {n}; i = i + 1) {
        rowptr[i] = k;
        j = 0;
        while (j < {per_row} && k < {nnz}) {
            val[k] = rnd(61) + 1;
            col[k] = rnd({n});
            k = k + 1;
            j = j + 1;
        }
        x[i] = rnd(97);
        y[i] = 0;
    }
    rowptr[{n}] = k;
    check = 0;
    for (sweep = 0; sweep < {sweeps}; sweep = sweep + 1) {
        for (i = 0; i < {n}; i = i + 1) {
            acc = 0;
            for (j = rowptr[i]; j < rowptr[i + 1]; j = j + 1) {
                acc = acc + val[j] * x[col[j]];
                y[col[j]] = y[col[j]] + (acc & 15);
            }
            x[i] = (x[i] + acc) % 10007;
        }
        check = (check * 7 + x[sweep % {n}]) % 1000000;
    }
    for (i = 0; i < {n}; i = i + 1) {
        check = (check * 3 + y[i]) % 1000000;
    }
    print(check);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    n = scaled(64, scale, minimum=8)
    per_row = 6
    sweeps = 10
    return (_TEMPLATE.replace("{nplus}", str(n + 1))
            .replace("{nnz}", str(n * per_row))
            .replace("{n}", str(n))
            .replace("{per_row}", str(per_row))
            .replace("{sweeps}", str(sweeps)))
