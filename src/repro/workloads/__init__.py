"""SPEC89-mimic workload registry.

Ten mini-C programs mirroring the write behaviour of the paper's
benchmarks (four C, six FORTRAN-style).  Access them through
:data:`WORKLOADS` or :func:`get_workload`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import (doduc, eqntott, espresso, fpppp, gcc, li,
                             matrix300, nasker, spice, tomcatv)
from repro.workloads.common import Workload

_MODULES = [eqntott, espresso, gcc, li, doduc, fpppp, matrix300, nasker,
            spice, tomcatv]

WORKLOADS: Dict[str, Workload] = {}
for _mod in _MODULES:
    WORKLOADS[_mod.NAME] = Workload(
        name=_mod.NAME, lang=_mod.LANG, source_fn=_mod.source,
        description=_mod.DESCRIPTION, expected_output=[])

#: Table ordering used throughout the paper: C programs then FORTRAN.
WORKLOAD_ORDER: List[str] = [
    "023.eqntott", "008.espresso", "001.gcc1.35", "022.li",
    "015.doduc", "042.fpppp", "030.matrix300", "020.nasker",
    "013.spice2g6", "047.tomcatv",
]

C_WORKLOADS = [n for n in WORKLOAD_ORDER if WORKLOADS[n].lang == "C"]
F_WORKLOADS = [n for n in WORKLOAD_ORDER if WORKLOADS[n].lang == "F"]


def get_workload(name: str) -> Workload:
    if name not in WORKLOADS:
        raise KeyError("unknown workload %r (have %s)"
                       % (name, WORKLOAD_ORDER))
    return WORKLOADS[name]


def workload_source(name: str, scale: float = 1.0) -> str:
    return get_workload(name).source_fn(scale)
