"""015.doduc mimic: Monte-Carlo reactor kernel (fixed-point).

doduc is scalar-update-dominated FORTRAN: nested loops reading tables
and updating many local scalars, with occasional array writes.  All
scalars live in memory under naive compilation, so nearly every write
is symbol-matchable — the paper reports 95.4% of checks eliminated
(84.7% symbol, 10.6% range).
"""

from repro.workloads.common import RAND_SOURCE, scaled

NAME = "015.doduc"
LANG = "F"
DESCRIPTION = "nested scalar-update loops with table lookups"

_TEMPLATE = RAND_SOURCE + """
int table[{tsize}];
int hist[64];

int step(int x, int y) {
    int u;
    int v;
    int w;
    u = table[x % {tsize}];
    v = table[y % {tsize}];
    w = (u * 3 + v * 5) % 8191;
    return w;
}

int main() {
    int iter;
    int i;
    int state;
    int energy;
    int flux;
    int leak;
    int check;
    __seed = 4242;
    for (i = 0; i < {tsize}; i = i + 1) {
        table[i] = rnd(8191);
    }
    for (i = 0; i < 64; i = i + 1) {
        hist[i] = 0;
    }
    state = 17;
    check = 0;
    for (iter = 0; iter < {iters}; iter = iter + 1) {
        energy = 1000;
        flux = state;
        leak = 0;
        i = 0;
        while (energy > 10) {
            flux = step(flux, energy);
            energy = energy - (flux % 23) - 1;
            leak = leak + (flux & 7);
            i = i + 1;
        }
        hist[leak % 64] = hist[leak % 64] + 1;
        state = (state * 31 + leak) % 9973;
        check = (check + flux + i) % 1000000;
    }
    for (i = 0; i < 64; i = i + 1) {
        check = (check * 3 + hist[i]) % 1000000;
    }
    print(check);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    iters = scaled(70, scale, minimum=4)
    return _TEMPLATE.replace("{iters}", str(iters)).replace(
        "{tsize}", "128")
