"""020.nasker mimic: the NAS kernel medley (fixed-point).

nasker runs seven small numeric kernels.  The mimic includes three
representative ones: an MXM-style multiply (monotonic writes), a
row-reduction whose accumulator address is loop-invariant in the inner
loop (LI write motion — nasker has the largest LI column in Table 2 at
17.3%), and a GMTRY-style Gaussian elimination sweep.  The paper calls
programs like this the big winners: "For scientific programs such as
the NAS kernels, analysis reduced write checks by a factor of ten or
more" (94.4% eliminated).
"""

from repro.workloads.common import scaled

NAME = "020.nasker"
LANG = "F"
DESCRIPTION = "NAS kernels: mxm + row reduction + elimination sweep"

_TEMPLATE = """
int ka[{n}][{n}];
int kb[{n}][{n}];
int kc[{n}][{n}];
int rowsum[{n}];

int mxm() {
    int i;
    int j;
    int k;
    for (j = 0; j < {n}; j = j + 1) {
        for (k = 0; k < {n}; k = k + 1) {
            for (i = 0; i < {n}; i = i + 1) {
                kc[i][j] = kc[i][j] + ka[i][k] * kb[k][j];
            }
        }
    }
    return 0;
}

int reduce() {
    int i;
    int j;
    for (i = 0; i < {n}; i = i + 1) {
        rowsum[i] = 0;
        for (j = 0; j < {n}; j = j + 1) {
            rowsum[i] = rowsum[i] + kc[i][j];
        }
    }
    return 0;
}

int sweep() {
    int i;
    int j;
    int piv;
    for (i = 1; i < {n}; i = i + 1) {
        piv = ka[i - 1][i - 1];
        if (piv == 0) { piv = 1; }
        for (j = 0; j < {n}; j = j + 1) {
            ka[i][j] = ka[i][j] - (ka[i - 1][j] * 3) / piv;
        }
    }
    return 0;
}

int main() {
    int i;
    int j;
    int pass;
    int check;
    for (i = 0; i < {n}; i = i + 1) {
        for (j = 0; j < {n}; j = j + 1) {
            ka[i][j] = (i * 13 + j * 7) % 32 + 1;
            kb[i][j] = (i * 3 + j * 17) % 32 + 1;
            kc[i][j] = 0;
        }
    }
    check = 0;
    for (pass = 0; pass < {passes}; pass = pass + 1) {
        mxm();
        reduce();
        sweep();
        for (i = 0; i < {n}; i = i + 1) {
            check = (check * 3 + rowsum[i]) % 1000000;
        }
    }
    print(check);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    n = scaled(16, scale, minimum=4)
    passes = 2
    return _TEMPLATE.replace("{n}", str(n)).replace(
        "{passes}", str(passes))
