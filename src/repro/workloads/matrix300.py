"""030.matrix300 mimic: blocked matrix multiply (fixed-point).

matrix300 is pure SAXPY-style matrix multiplication.  Every array write
in the inner loop walks a column monotonically, so loop optimization
converts the entire inner-loop check traffic into pre-header range
checks: the paper reports **100%** of checks eliminated (51.7% symbol —
the memory-resident loop indices — and 48.3% range).
"""

from repro.workloads.common import scaled

NAME = "030.matrix300"
LANG = "F"
DESCRIPTION = "triple-loop matrix multiply; monotonic array writes"

_TEMPLATE = """
int a[{n}][{n}];
int b[{n}][{n}];
int c[{n}][{n}];

int main() {
    int i;
    int j;
    int k;
    int check;
    for (i = 0; i < {n}; i = i + 1) {
        for (j = 0; j < {n}; j = j + 1) {
            a[i][j] = (i * 7 + j * 3) % 64;
            b[i][j] = (i * 5 + j * 11) % 64;
            c[i][j] = 0;
        }
    }
    for (j = 0; j < {n}; j = j + 1) {
        for (k = 0; k < {n}; k = k + 1) {
            for (i = 0; i < {n}; i = i + 1) {
                c[i][j] = c[i][j] + a[i][k] * b[k][j];
            }
        }
    }
    check = 0;
    for (i = 0; i < {n}; i = i + 1) {
        for (j = 0; j < {n}; j = j + 1) {
            check = (check * 3 + c[i][j]) % 1000000;
        }
    }
    print(check);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    n = scaled(18, scale, minimum=4)
    return _TEMPLATE.replace("{n}", str(n))
