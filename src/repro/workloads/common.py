"""Shared pieces for the SPEC-mimic workloads.

Each workload is a mini-C program whose *write behaviour* (dynamic write
density, stack/heap/BSS mix, loop structure, use of ``register``)
mimics one SPEC89 program from the paper's Table 1/2.  Real SPEC
sources and inputs are not redistributable and would be far too large to
simulate; DESIGN.md records this substitution.

Workloads print a checksum so tests can verify that instrumentation
preserves behaviour exactly.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple

#: deterministic LCG used by workloads that need pseudo-random data
RAND_SOURCE = """
int __seed;

int rnd(int limit) {
    __seed = __seed * 1103515245 + 12345;
    __seed = __seed & 1073741823;
    return __seed % limit;
}
"""

#: simple first-fit allocator over sbrk(), used by the pointer-heavy
#: C workloads (gcc, li).  Block layout: [size_words, next, payload...].
MALLOC_SOURCE = """
int *__free_list;

int *alloc_words(int n) {
    int *p;
    int *prev;
    prev = 0;
    p = __free_list;
    while (p != 0) {
        if (p[0] >= n) {
            if (prev != 0) { prev[1] = p[1]; }
            else { __free_list = p[1]; }
            return p + 2;
        }
        prev = p;
        p = p[1];
    }
    p = sbrk((n + 2) * 4);
    p[0] = n;
    p[1] = 0;
    return p + 2;
}

int free_words(int *q) {
    int *p;
    p = q - 2;
    p[1] = __free_list;
    __free_list = p;
    return 0;
}
"""


class Workload(NamedTuple):
    """One registered workload."""

    name: str              # paper benchmark name, e.g. "023.eqntott"
    lang: str              # "C" or "F"
    source_fn: Callable[[float], str]
    description: str
    expected_output: List[str]  # checksum lines at scale=1.0


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))
