"""001.gcc (1.35) mimic: tree building, folding and list bookkeeping.

GCC allocates expression trees, folds constants, and threads symbol
lists — irregular pointer-chasing code with many small functions and
heavy ``register`` usage.  The paper found it among the *worst* cases
for write-check elimination (52.1% total) because register declarations
leave few memory writes that symbol matching can claim, and its
overhead with full optimization exceeded simple bitmap checking.
"""

from repro.workloads.common import MALLOC_SOURCE, RAND_SOURCE, scaled

NAME = "001.gcc1.35"
LANG = "C"
DESCRIPTION = "expression-tree construction and constant folding"

_TEMPLATE = RAND_SOURCE + MALLOC_SOURCE + """
struct node { int op; int value; int left; int right; };

int node_count;

int *mk_leaf(int v) {
    register int *n;
    n = alloc_words(4);
    n[0] = 0;
    n[1] = v;
    n[2] = 0;
    n[3] = 0;
    node_count = node_count + 1;
    return n;
}

int *mk_op(int op, int *l, int *r) {
    register int *n;
    n = alloc_words(4);
    n[0] = op;
    n[1] = 0;
    n[2] = l;
    n[3] = r;
    node_count = node_count + 1;
    return n;
}

int *build(register int depth) {
    register int op;
    int *l;
    int *r;
    if (depth <= 0) {
        return mk_leaf(rnd(100) - 50);
    }
    op = 1 + rnd(3);
    l = build(depth - 1);
    r = build(depth - 1);
    return mk_op(op, l, r);
}

int eval(int *n) {
    register int a;
    register int b;
    register int op;
    op = n[0];
    if (op == 0) return n[1];
    a = eval(n[2]);
    b = eval(n[3]);
    if (op == 1) return a + b;
    if (op == 2) return a - b;
    return a * b;
}

int fold(int *n) {
    register int op;
    int *a;
    int *b;
    op = n[0];
    if (op == 0) return 0;
    fold(n[2]);
    fold(n[3]);
    a = n[2];
    b = n[3];
    if (*(a + 0) == 0 && *(b + 0) == 0) {
        n[0] = 0;
        if (op == 1) { n[1] = *(a + 1) + *(b + 1); }
        if (op == 2) { n[1] = *(a + 1) - *(b + 1); }
        if (op == 3) { n[1] = *(a + 1) * *(b + 1); }
        free_words(a);
        free_words(b);
        node_count = node_count - 2;
    }
    return 0;
}

int main() {
    register int t;
    int *tree;
    int check;
    __seed = 7;
    node_count = 0;
    check = 0;
    for (t = 0; t < {ntrees}; t = t + 1) {
        tree = build({depth});
        check = check * 3 + eval(tree);
        fold(tree);
        check = check + eval(tree);
        check = check & 268435455;
    }
    print(check);
    print(node_count);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    ntrees = scaled(20, scale, minimum=2)
    return _TEMPLATE.replace("{ntrees}", str(ntrees)).replace(
        "{depth}", "5")
