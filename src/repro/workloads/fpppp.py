"""042.fpppp mimic: two-electron integral kernel (fixed-point).

fpppp is famous for enormous straight-line basic blocks updating dozens
of scalars, plus small-array writes.  Under debug compilation those
scalars are all memory-resident; the paper eliminates 81.2% of its
checks (70.4% symbol, 10.8% range).
"""

from repro.workloads.common import scaled

NAME = "042.fpppp"
LANG = "F"
DESCRIPTION = "huge straight-line scalar blocks with small array writes"

_TEMPLATE = """
int xint[{n}];
int gout[{n}];

int main() {
    int i;
    int k;
    int t1; int t2; int t3; int t4; int t5; int t6;
    int t7; int t8; int t9; int t10; int t11; int t12;
    int acc;
    int check;
    for (i = 0; i < {n}; i = i + 1) {
        xint[i] = (i * 37 + 11) % 4096;
        gout[i] = 0;
    }
    check = 0;
    for (k = 0; k < {passes}; k = k + 1) {
        for (i = 0; i < {n}; i = i + 1) {
            t1 = xint[i] * 3 + 7;
            t2 = t1 * t1 % 65536;
            t3 = t2 + xint[(i + 1) % {n}];
            t4 = t3 * 5 - t1;
            t5 = t4 % 32768;
            t6 = t5 + t2 * 3;
            t7 = t6 - t4 / 3;
            t8 = t7 * 7 % 65536;
            t9 = t8 + t5 - t3;
            t10 = t9 % 16384;
            t11 = t10 * 3 + t8 / 5;
            t12 = t11 % 65536;
            acc = t12 + t10 + t6;
            gout[i] = gout[i] + acc % 8192;
            check = (check + t12) % 1000000;
        }
    }
    for (i = 0; i < {n}; i = i + 1) {
        check = (check * 3 + gout[i]) % 1000000;
    }
    print(check);
    return 0;
}
"""


def source(scale: float = 1.0) -> str:
    passes = scaled(14, scale, minimum=1)
    return _TEMPLATE.replace("{passes}", str(passes)).replace("{n}", "96")
