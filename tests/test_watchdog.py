"""Watchdog budgets, resumable limits, and graceful eval degradation."""

import pytest

from repro.eval.overhead import Partial, WorkloadBench, average, truncated
from repro.eval.table1 import format_table, measure_workload
from repro.faults import FaultPlan
from repro.machine.cpu import SimulationError, SimulationLimit, Watchdog
from repro.session import DebugSession

PROGRAM = """
int total;
int main() {
    register int i;
    total = 0;
    for (i = 0; i < 500; i = i + 1) {
        total = total + i;
    }
    print(total);
    print(1);
    print(2);
    return 0;
}
"""


def _session():
    session = DebugSession.from_minic(PROGRAM)
    session.mrs.enable()
    return session


class TestBudgets:
    @pytest.mark.parametrize("kwargs,kind", [
        ({"max_instructions": 300}, "instructions"),
        ({"max_cycles": 400}, "cycles"),
        ({"max_traps": 2}, "traps"),
    ])
    def test_each_budget_kind_trips_with_context(self, kwargs, kind):
        session = _session()
        watchdog = Watchdog(mrs=session.mrs, output=session.output,
                            **kwargs)
        with pytest.raises(SimulationLimit) as excinfo:
            session.run(watchdog=watchdog)
        limit = excinfo.value
        assert limit.budget == kind
        assert limit.checkpoint is not None
        for key in ("pc", "cycles", "instructions", "traps"):
            assert key in limit.context
        # a watchdog limit is a SimulationError, so existing handlers
        # for runaway simulations keep working
        assert isinstance(limit, SimulationError)

    def test_limit_is_resumable_to_completion(self):
        reference = _session()
        assert reference.run() == 0

        session = _session()
        interruptions = 0
        watchdog = Watchdog(max_instructions=700, snapshot=False)
        resume = False
        while True:
            try:
                session.run(watchdog=watchdog, resume=resume)
                break
            except SimulationLimit:
                # re-arming grants the budget again from the current pc
                interruptions += 1
                resume = True
                assert interruptions < 100
        assert interruptions >= 1
        assert session.output == reference.output
        assert session.cpu.instructions == reference.cpu.instructions

    def test_checkpoint_from_limit_restores_the_debuggee(self):
        session = _session()
        watchdog = Watchdog(max_instructions=900, mrs=session.mrs,
                            output=session.output)
        with pytest.raises(SimulationLimit) as excinfo:
            session.run(watchdog=watchdog)
        snapshot = excinfo.value.checkpoint
        # run to completion, then rewind to the limit point and finish
        # again: both continuations must agree exactly
        assert session.run(resume=True) == 0
        first = (list(session.output), session.cpu.instructions)
        snapshot.restore(session.cpu, output=session.output,
                         mrs=session.mrs)
        assert session.cpu.instructions == excinfo.value.context[
            "instructions"]
        assert session.run(resume=True) == 0
        assert (list(session.output), session.cpu.instructions) == first

    def test_default_instruction_cap_still_enforced(self):
        session = _session()
        with pytest.raises(SimulationLimit):
            session.run(max_instructions=50)


class TestEvalDegradation:
    def test_overhead_becomes_partial_under_cycle_budget(self):
        probe = WorkloadBench("023.eqntott", scale=0.1)
        full_cycles = probe.baseline().cycles

        plan = FaultPlan(max_cycles=full_cycles // 3)
        bench = WorkloadBench("023.eqntott", scale=0.1, faults=plan)
        overhead = bench.overhead("Bitmap", enabled=True)
        assert isinstance(overhead, Partial)
        assert truncated(overhead)
        assert bench.baseline().truncated
        # the partial measurement is still a usable float
        assert -100.0 < float(overhead) < 1000.0

    def test_unbounded_overhead_stays_a_plain_float(self):
        bench = WorkloadBench("023.eqntott", scale=0.1)
        overhead = bench.overhead("Bitmap", enabled=True)
        assert not truncated(overhead)
        assert not isinstance(overhead, Partial)

    def test_average_propagates_truncation(self):
        assert truncated(average([1.0, Partial(3.0)]))
        assert not truncated(average([1.0, 3.0]))
        assert average([1.0, Partial(3.0)]) == 2.0

    def test_table1_row_truncates_instead_of_raising(self):
        plan = FaultPlan(max_cycles=2_000)
        row = measure_workload("023.eqntott", scale=0.1,
                               columns=["Disabled", "Bitmap"], faults=plan)
        assert all(truncated(value) for value in row.values())

    def test_format_table_flags_truncated_cells(self):
        results = {"023.eqntott": {
            "Disabled": 1.0, "Bitmap": Partial(12.0), "BitmapInline": 2.0,
            "BitmapInlineRegisters": 3.0, "Cache": 4.0, "CacheInline": 5.0}}
        text = format_table(results, with_paper=False)
        assert "12.0%*" in text
        assert "1.0%*" not in text
        assert "truncated by a watchdog budget" in text

    def test_max_instructions_bound_without_fault_plan(self):
        bench = WorkloadBench("023.eqntott", scale=0.1,
                              max_instructions=500)
        overhead = bench.overhead("Bitmap", enabled=True)
        assert truncated(overhead)
