"""Tests for the core MRS data structures: regions, segmented bitmap,
superpage index, and layout — including property-based comparison of
the bitmap against the naive interval-set oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitmap import SegmentedBitmap
from repro.core.layout import MonitorLayout
from repro.core.ranges import SuperpageIndex
from repro.core.regions import MonitoredRegion, RegionError, RegionSet
from repro.machine.memory import Memory


class TestMonitoredRegion:
    def test_basic(self):
        region = MonitoredRegion(0x1000, 16)
        assert region.end == 0x1010
        assert region.contains(0x100C)
        assert not region.contains(0x1010)
        assert list(region.words()) == [0x1000, 0x1004, 0x1008, 0x100C]

    @pytest.mark.parametrize("start,size", [
        (0x1001, 4), (0x1002, 4), (0x1000, 0), (0x1000, 6), (0x1000, -4)])
    def test_alignment_validation(self, start, size):
        with pytest.raises(RegionError):
            MonitoredRegion(start, size)

    def test_overlap(self):
        a = MonitoredRegion(0x1000, 16)
        assert a.overlaps(MonitoredRegion(0x100C, 8))
        assert not a.overlaps(MonitoredRegion(0x1010, 8))
        assert not a.overlaps(MonitoredRegion(0x0FF0, 16))

    def test_equality_and_hash(self):
        assert MonitoredRegion(0x10, 4) == MonitoredRegion(0x10, 4)
        assert len({MonitoredRegion(0x10, 4),
                    MonitoredRegion(0x10, 4)}) == 1


class TestRegionSet:
    def test_add_remove_find(self):
        regions = RegionSet()
        region = MonitoredRegion(0x2000, 8)
        regions.add(region)
        assert regions.hit(0x2004)
        assert regions.find(0x2004).start == 0x2000
        regions.remove(region)
        assert not regions.hit(0x2004)

    def test_overlap_rejected(self):
        regions = RegionSet()
        regions.add(MonitoredRegion(0x2000, 8))
        with pytest.raises(RegionError):
            regions.add(MonitoredRegion(0x2004, 8))

    def test_remove_unknown_rejected(self):
        regions = RegionSet()
        with pytest.raises(RegionError):
            regions.remove(MonitoredRegion(0x2000, 8))

    def test_hit_spans_access_size(self):
        regions = RegionSet()
        regions.add(MonitoredRegion(0x2004, 4))
        assert regions.hit(0x2000, 8)       # 8-byte access reaches in
        assert not regions.hit(0x2000, 4)

    def test_intersects_range(self):
        regions = RegionSet()
        regions.add(MonitoredRegion(0x2000, 8))
        assert regions.intersects_range(0x1000, 0x2000)
        assert regions.intersects_range(0x2007, 0x3000)
        assert not regions.intersects_range(0x2008, 0x3000)


class TestLayout:
    def test_defaults_match_paper(self):
        layout = MonitorLayout()
        assert layout.segment_words == 128
        assert layout.segment_bytes == 512
        assert layout.seg_shift == 9
        assert layout.bitmap_words == 4

    def test_segment_arithmetic(self):
        layout = MonitorLayout(128)
        assert layout.segment_of(0) == 0
        assert layout.segment_of(511) == 0
        assert layout.segment_of(512) == 1
        assert layout.word_index_in_segment(512 + 4 * 5) == 5

    def test_superpage_arithmetic(self):
        layout = MonitorLayout()
        assert layout.superpage_of(0) == 0
        assert layout.superpage_of((1 << 25) - 1) == 0
        assert layout.superpage_of(1 << 25) == 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            MonitorLayout(100)
        with pytest.raises(ValueError):
            MonitorLayout(16)

    def test_table_scales_inversely_with_segment_size(self):
        small = MonitorLayout(128)
        large = MonitorLayout(1024)
        assert small.table_bytes() == 8 * large.table_bytes()


class TestSegmentedBitmap:
    def setup_method(self):
        self.memory = Memory()
        self.layout = MonitorLayout()
        self.bitmap = SegmentedBitmap(self.memory, self.layout)

    def test_set_and_query(self):
        region = MonitoredRegion(0x1000, 12)
        self.bitmap.set_region(region)
        assert self.bitmap.is_monitored(0x1000)
        assert self.bitmap.is_monitored(0x1008)
        assert not self.bitmap.is_monitored(0x100C)

    def test_null_pointer_means_unmonitored(self):
        entry = self.layout.seg_table_entry(self.layout.segment_of(0x5000))
        assert self.memory.read_word(entry) == 0
        self.bitmap.set_region(MonitoredRegion(0x5000, 4))
        assert self.memory.read_word(entry) != 0
        self.bitmap.clear_region(MonitoredRegion(0x5000, 4))
        assert self.memory.read_word(entry) == 0

    def test_hit_covers_byte_and_doubleword(self):
        self.bitmap.set_region(MonitoredRegion(0x1004, 4))
        assert self.bitmap.hit(0x1005, 1)      # byte inside the word
        assert self.bitmap.hit(0x1000, 8)      # doubleword overlaps
        assert not self.bitmap.hit(0x1000, 4)

    def test_region_spanning_segments(self):
        start = self.layout.segment_bytes - 8
        region = MonitoredRegion(start, 16)   # crosses segment 0 -> 1
        touched = self.bitmap.set_region(region)
        assert touched == {0, 1}
        assert self.bitmap.is_monitored(start)
        assert self.bitmap.is_monitored(start + 12)

    def test_overlapping_words_refcounted(self):
        # two adjacent regions in one segment; deleting one keeps the
        # other's bits
        self.bitmap.set_region(MonitoredRegion(0x1000, 4))
        self.bitmap.set_region(MonitoredRegion(0x1004, 4))
        self.bitmap.clear_region(MonitoredRegion(0x1000, 4))
        assert not self.bitmap.is_monitored(0x1000)
        assert self.bitmap.is_monitored(0x1004)

    def test_space_accounting(self):
        assert self.bitmap.bitmap_bytes_allocated() == 0
        self.bitmap.set_region(MonitoredRegion(0x1000, 4))
        assert self.bitmap.bitmap_bytes_allocated() == \
            4 * self.layout.bitmap_words


# -- property-based: bitmap == interval oracle ------------------------------

_region_spec = st.tuples(
    st.integers(min_value=0, max_value=4000).map(lambda w: 0x10000 + 4 * w),
    st.integers(min_value=1, max_value=32).map(lambda w: 4 * w))


@settings(max_examples=60, deadline=None)
@given(specs=st.lists(_region_spec, min_size=1, max_size=12),
       probes=st.lists(st.integers(min_value=0, max_value=4200),
                       min_size=10, max_size=40),
       deletions=st.lists(st.booleans(), min_size=12, max_size=12))
def test_bitmap_matches_interval_oracle(specs, probes, deletions):
    """Random create/delete sequences: the segmented bitmap answers
    membership exactly like the naive region set."""
    memory = Memory()
    layout = MonitorLayout()
    bitmap = SegmentedBitmap(memory, layout)
    oracle = RegionSet()
    created = []
    for start, size in specs:
        region = MonitoredRegion(start, size)
        try:
            oracle.add(region)
        except RegionError:
            continue  # overlapping spec: skip (regions must not overlap)
        bitmap.set_region(region)
        created.append(region)
    for region, delete in zip(list(created), deletions):
        if delete:
            oracle.remove(region)
            bitmap.clear_region(region)
    for probe in probes:
        addr = 0x10000 + 4 * probe
        assert bitmap.is_monitored(addr) == oracle.hit(addr, 1), \
            hex(addr)


@settings(max_examples=40, deadline=None)
@given(specs=st.lists(_region_spec, min_size=1, max_size=8),
       lo_word=st.integers(min_value=0, max_value=4200),
       span=st.integers(min_value=0, max_value=600))
def test_superpage_index_is_conservative(specs, lo_word, span):
    """The superpage range check never misses: if any region intersects
    [lo, hi], range_may_hit must be True (it may be conservatively True
    otherwise)."""
    memory = Memory()
    layout = MonitorLayout()
    index = SuperpageIndex(memory, layout)
    oracle = RegionSet()
    for start, size in specs:
        region = MonitoredRegion(start, size)
        try:
            oracle.add(region)
        except RegionError:
            continue
        index.add_region(region)
    lo = 0x10000 + 4 * lo_word
    hi = lo + 4 * span
    if oracle.intersects_range(lo, hi):
        assert index.range_may_hit(lo, hi)


class TestSuperpageIndex:
    def test_counts_in_memory(self):
        memory = Memory()
        layout = MonitorLayout()
        index = SuperpageIndex(memory, layout)
        region = MonitoredRegion(0x1000, 8)
        index.add_region(region)
        entry = layout.superpage_entry(layout.superpage_of(0x1000))
        assert memory.read_word(entry) == 1
        index.remove_region(region)
        assert memory.read_word(entry) == 0

    def test_region_spanning_superpages(self):
        memory = Memory()
        layout = MonitorLayout()
        index = SuperpageIndex(memory, layout)
        start = (1 << 25) - 8
        region = MonitoredRegion(start, 16)
        index.add_region(region)
        assert index.range_may_hit(start, start)
        assert index.range_may_hit(1 << 25, (1 << 25) + 4)

    def test_underflow_detected(self):
        memory = Memory()
        index = SuperpageIndex(memory, MonitorLayout())
        with pytest.raises(ValueError):
            index.remove_region(MonitoredRegion(0x1000, 4))
