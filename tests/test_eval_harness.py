"""Tests for the evaluation harness itself (tiny scales)."""

import pytest

from repro.eval.breakeven import (breakeven_full_fraction,
                                  compute_breakeven, cost_cache,
                                  cost_registers)
from repro.eval.figure3 import measure_hit_rate
from repro.eval.nop_experiment import linear_regression, measure_workload
from repro.eval.overhead import WorkloadBench, average
from repro.eval.paper_data import TABLE1, TABLE1_COLUMNS, TABLE2
from repro.eval.space import measure_workload as measure_space
from repro.eval.table1 import format_table, measure_workload as table1_row
from repro.eval.table1 import summarize
from repro.eval.table2 import measure_workload as table2_row

TINY = 0.2


class TestWorkloadBench:
    def test_baseline_cached(self):
        bench = WorkloadBench("042.fpppp", scale=TINY)
        first = bench.baseline()
        second = bench.baseline()
        assert first is second

    def test_overhead_positive_for_enabled_checks(self):
        bench = WorkloadBench("042.fpppp", scale=TINY)
        assert bench.overhead("Bitmap", enabled=True) > 5.0

    def test_output_mismatch_detected(self):
        bench = WorkloadBench("042.fpppp", scale=TINY)
        run = bench.run_instrumented("Cache", enabled=True)
        assert run.output == bench.baseline().output

    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        assert average([]) == 0.0


class TestTable1Harness:
    def test_row_has_all_columns(self):
        row = table1_row("042.fpppp", scale=TINY)
        assert set(row) == set(TABLE1_COLUMNS)

    def test_disabled_cheapest(self):
        row = table1_row("030.matrix300", scale=TINY)
        assert row["Disabled"] < row["Bitmap"]
        assert row["Disabled"] < row["Cache"]

    def test_formatting_and_summary(self):
        rows = {"042.fpppp": table1_row("042.fpppp", scale=TINY)}
        text = format_table(rows)
        assert "042.fpppp" in text and "%" in text
        summary = summarize(rows)
        assert "overall" in summary and "F" in summary


class TestTable2Harness:
    def test_row_fields(self):
        row = table2_row("030.matrix300", scale=TINY)
        assert row["total"] == pytest.approx(
            row["sym"] + row["li"] + row["range"], abs=0.1)
        assert row["total"] >= 90.0
        assert row["full"] < row["sym_overhead"] + 1.0

    def test_paper_reference_data_complete(self):
        assert set(TABLE1) == set(TABLE2)
        assert len(TABLE1) == 10


class TestFigure3Harness:
    def test_hit_rate_bounds(self):
        rate = measure_hit_rate("030.matrix300", 128, scale=TINY)
        assert 0.0 <= rate <= 1.0

    def test_bigger_segments_never_much_worse(self):
        small = measure_hit_rate("030.matrix300", 64, scale=TINY)
        large = measure_hit_rate("030.matrix300", 1024, scale=TINY)
        assert large >= small - 0.02


class TestNopHarness:
    def test_linear_regression(self):
        slope, intercept = linear_regression([1, 2, 3], [2.0, 4.0, 6.0])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(0.0)

    def test_nop_overheads_increase(self):
        row = measure_workload("042.fpppp", scale=TINY)
        assert row["nop32"] > row["nop2"]
        assert row["slope"] > 0


class TestSpaceAndBreakeven:
    def test_space_fraction_near_one_thirty_second(self):
        row = measure_space("030.matrix300", scale=TINY)
        assert 0.02 < row["fraction"] < 0.10

    def test_breakeven_monotone_in_load_cost(self):
        fast = breakeven_full_fraction(0.05, 2.0)
        slow = breakeven_full_fraction(0.05, 8.0)
        assert 0.0 < fast < slow < 1.0

    def test_cost_model_consistency(self):
        # at zero full lookups, caching is cheaper; at 100%, dearer
        assert cost_cache(0.0, 0.05, 4.0) < cost_registers(0.0, 4.0)
        assert cost_cache(1.0, 0.05, 4.0) > cost_registers(1.0, 4.0)
        ranges = compute_breakeven()
        assert set(ranges) == {"C", "F"}


class TestReportGenerator:
    def test_report_contains_all_sections(self):
        from repro.eval.report import generate
        report = generate(scale=0.15)
        for marker in ("E1", "E4/E5", "E3", "E2", "E6", "E7", "E8",
                       "E9"):
            assert marker in report
        assert "Table 1" in report and "elimination" in report
