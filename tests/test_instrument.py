"""Tests for write-site discovery, classification, and the rewriter."""

import pytest

from repro.asm.ast import AsmInsn
from repro.asm.parser import parse
from repro.core.runtime_asm import (WRITE_TYPE_BSS, WRITE_TYPE_BSS_VAR,
                                    WRITE_TYPE_HEAP, WRITE_TYPE_STACK)
from repro.instrument.rewriter import instrument_source
from repro.instrument.strategies import STRATEGIES, make_strategy
from repro.instrument.writes import (InstrumentError, check_cc_liveness,
                                     enumerate_write_sites)


def sites_of(source, lang="C"):
    return enumerate_write_sites(parse(source), lang)


class TestSiteEnumeration:
    def test_numbering_in_order(self):
        source = """
        .text
        .proc f
f:      st %o0, [%fp-4]
        ld [%fp-4], %o1
        st %o1, [%fp-8]
        stb %o1, [%fp-9]
        .endproc
"""
        sites = sites_of(source)
        assert [s.site for s in sites] == [0, 1, 2]
        assert [s.width for s in sites] == [4, 4, 1]
        assert all(s.func == "f" for s in sites)

    def test_site_stamped_on_statement(self):
        stmts = parse("\t.text\n\tst %o0, [%fp-4]\n")
        sites = enumerate_write_sites(stmts, "C")
        store = [s for s in stmts if isinstance(s, AsmInsn)][0]
        assert store.site == sites[0].site

    def test_non_orig_stores_skipped(self):
        source = "\t.text\n\t.tag lib\n\tst %o0, [%fp-4]\n"
        assert sites_of(source) == []

    def test_store_in_delay_slot_rejected(self):
        source = """
        .text
        ba somewhere
        st %o0, [%fp-4]
somewhere: nop
"""
        with pytest.raises(InstrumentError):
            sites_of(source)

    def test_reserved_register_store_rejected(self):
        with pytest.raises(InstrumentError):
            sites_of("\t.text\n\tst %g4, [%fp-4]\n")
        with pytest.raises(InstrumentError):
            sites_of("\t.text\n\tst %o0, [%g5]\n")


class TestWriteTypes:
    def test_stack_writes(self):
        sites = sites_of("\t.text\n\tst %o0, [%fp-4]\n\tst %o0, [%sp+64]\n")
        assert all(s.write_type == WRITE_TYPE_STACK for s in sites)

    def test_bss_constant_address(self):
        source = """
        .text
        sethi %hi(g), %l0
        or %l0, %lo(g), %l0
        st %o0, [%l0]
        .data
g:      .word 0
"""
        sites = sites_of(source)
        assert sites[0].write_type == WRITE_TYPE_BSS

    def test_indexed_global_is_heap_in_c(self):
        source = """
        .text
        sethi %hi(a), %l0
        or %l0, %lo(a), %l0
        st %o0, [%l0+%l1]
        .data
a:      .skip 64
"""
        assert sites_of(source, "C")[0].write_type == WRITE_TYPE_HEAP

    def test_indexed_global_is_bssvar_in_fortran(self):
        source = """
        .text
        sethi %hi(a), %l0
        or %l0, %lo(a), %l0
        st %o0, [%l0+%l1]
        .data
a:      .skip 64
"""
        assert sites_of(source, "F")[0].write_type == WRITE_TYPE_BSS_VAR

    def test_pointer_write_is_heap(self):
        sites = sites_of("\t.text\n\tld [%fp-4], %l0\n\tst %o0, [%l0]\n")
        assert sites[0].write_type == WRITE_TYPE_HEAP

    def test_base_invalidated_by_redefinition(self):
        source = """
        .text
        sethi %hi(g), %l0
        or %l0, %lo(g), %l0
        add %l0, %l1, %l0
        st %o0, [%l0]
        .data
g:      .word 0
"""
        assert sites_of(source)[0].write_type == WRITE_TYPE_HEAP

    def test_base_invalidated_across_labels(self):
        source = """
        .text
        sethi %hi(g), %l0
        or %l0, %lo(g), %l0
later:  st %o0, [%l0]
        .data
g:      .word 0
"""
        assert sites_of(source)[0].write_type == WRITE_TYPE_HEAP


class TestCcLiveness:
    def test_safe_patterns_pass(self):
        check_cc_liveness(parse("""
        .text
        st %o0, [%fp-4]
        cmp %o0, 1
        be target
        nop
target: nop
"""))

    def test_store_between_cmp_and_branch_rejected(self):
        with pytest.raises(InstrumentError):
            check_cc_liveness(parse("""
        .text
        cmp %o0, 1
        st %o0, [%fp-4]
        be target
        nop
target: nop
"""))

    def test_store_then_unconditional_is_safe(self):
        check_cc_liveness(parse("""
        .text
        cmp %o0, 1
        st %o0, [%fp-4]
        ba target
        nop
target: nop
"""))


class TestRewriter:
    SOURCE = """
        .lang C
        .text
        .proc main
main:
        save %sp, -96, %sp
        mov 7, %o0
        st %o0, [%fp-4]
        ld [%fp-4], %i0
        ret
        restore
        .endproc
"""

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_every_strategy_assembles_and_runs(self, name):
        from repro.asm.loader import load_program
        inst = instrument_source(self.SOURCE, name)
        program = inst.assemble()
        loaded = load_program(program)
        from repro.core.service import MonitoredRegionService
        mrs = MonitoredRegionService(loaded, inst)
        mrs.enable()
        assert loaded.run() == 7

    def test_check_tags_attributed(self):
        inst = instrument_source(self.SOURCE, "Bitmap")
        tags = {s.tag for s in inst.statements if isinstance(s, AsmInsn)}
        assert "check" in tags and "lib" in tags and "orig" in tags

    def test_checks_inserted_after_stores(self):
        inst = instrument_source(self.SOURCE, "Bitmap")
        stmts = [s for s in inst.statements if isinstance(s, AsmInsn)]
        store_pos = next(i for i, s in enumerate(stmts) if s.is_store()
                         and s.tag == "orig")
        assert stmts[store_pos + 1].tag == "check"
        # the disabled-flag test comes first
        assert stmts[store_pos + 1].mnemonic == "orcc"

    def test_library_included_once(self):
        inst = instrument_source(self.SOURCE, "Cache")
        program = inst.assemble()
        assert "__mrs_check_w4" in program.labels
        assert "__mrs_miss_0_w4" in program.labels

    def test_disabled_flag_skips_check_body(self):
        from repro.asm.loader import load_program
        from repro.core.service import MonitoredRegionService
        inst = instrument_source(self.SOURCE, "Bitmap")
        loaded = load_program(inst.assemble())
        MonitoredRegionService(loaded, inst)  # stays disabled
        loaded.run()
        # only the 3-instruction disabled prologue ran per check
        assert loaded.cpu.tag_counts["check"] == 3
        assert loaded.cpu.tag_counts.get("lib", 0) <= 3  # startup stub

    def test_cache_strategy_rejected_with_plan(self):
        from repro.instrument.plan import OptimizationPlan
        plan = OptimizationPlan()
        plan.fp_push_indices.append(3)
        with pytest.raises(InstrumentError):
            instrument_source(self.SOURCE, "Cache", plan=plan)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("NoSuchStrategy")
