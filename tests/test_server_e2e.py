"""End-to-end debug-server tests over real sockets.

Covers the ISSUE acceptance flow (two concurrent sessions, launch ->
setDataBreakpoints -> continue -> monitorHit -> disconnect), quota
degradation, fault-injected sessions, capacity limits, idle eviction,
malformed/oversized frame handling, draining shutdown, time travel
(protocol v2: record -> reverseContinue / stepBack / lastWrite), and
the thread-safety of a shared MonitoredRegionService.
"""

import socket
import struct
import threading

import pytest

from repro.errors import ServerError
from repro.faults import BITMAP_ALLOC
from repro.machine.cpu import SimulationLimit, Watchdog
from repro.server import (DebugClient, DebugServer, RemoteError,
                          ServerConfig)
from repro.server.protocol import decode, encode, read_frame, Request
from repro.session import DebugSession

SOURCE = """
int total;
int main() {
    register int i;
    total = 0;
    for (i = 0; i < 20; i = i + 1) {
        total = total + i;
    }
    print(total);
    return 0;
}
"""

TEXT_BASE = 0x10000


@pytest.fixture
def server():
    instance = DebugServer(config=ServerConfig(max_sessions=8,
                                               workers=4)).start()
    yield instance
    instance.close(drain=False, timeout=2.0)


def client_for(server, timeout=15.0):
    return DebugClient(port=server.port, timeout=timeout)


def launch_with_watch(client, stop=True):
    session_id = client.launch(SOURCE)
    info = client.data_breakpoint_info(session_id, "total")
    assert info["dataId"] == "w:total@"
    results = client.set_data_breakpoints(
        session_id, [{"dataId": info["dataId"], "stop": stop}])
    assert results[0]["verified"] is True
    return session_id, info


def run_to_exit(client, session_id):
    stop = client.cont(session_id)
    while not stop.get("exited"):
        stop = client.cont(session_id)
    return stop


class TestAcceptanceFlow:
    def test_launch_watch_hit_evaluate_disconnect(self, server):
        with client_for(server) as client:
            negotiated = client.initialize()
            assert negotiated["capabilities"][
                "supportsDataBreakpoints"] is True
            session_id, info = launch_with_watch(client)
            stop = client.cont(session_id)
            assert stop["reason"] == "watch"
            assert stop["symbol"] == "total"
            assert stop["hitBreakpointIds"] == ["w:total@"]
            hit = client.wait_event("monitorHit")
            assert hit["sessionId"] == session_id
            assert hit["symbol"] == "total"
            assert hit["address"] == info["address"]
            assert hit["size"] == info["size"]
            assert hit["pc"] >= TEXT_BASE
            assert hit["isRead"] is False
            stop = run_to_exit(client, session_id)
            assert stop["exitCode"] == 0
            # 20 loop writes + the initialisation write
            hits = client.pop_events("monitorHit")
            assert len(hits) + 1 == 21
            output = "".join(body["output"]
                             for body in client.pop_events("output"))
            assert "190" in output
            assert client.evaluate(session_id, "total")["value"] == 190
            assert client.disconnect(session_id) is True
            with pytest.raises(RemoteError) as excinfo:
                client.evaluate(session_id, "total")
            assert excinfo.value.context["reason"] == "unknown_session"

    def test_two_concurrent_sessions_one_disconnects(self, server):
        """The ISSUE acceptance criterion: two concurrent sessions each
        observe their own monitorHit with the right symbol and pc, and
        one disconnecting does not disturb the other."""
        barrier = threading.Barrier(2, timeout=20)
        results = {}
        errors = []

        def drive(name, extra_continues):
            try:
                with client_for(server) as client:
                    client.initialize()
                    session_id, info = launch_with_watch(client)
                    barrier.wait()  # both sessions live concurrently
                    stop = client.cont(session_id)
                    hit = client.wait_event("monitorHit")
                    assert hit["symbol"] == "total"
                    assert hit["pc"] >= TEXT_BASE
                    assert hit["sessionId"] == session_id
                    barrier.wait()  # both have observed a hit
                    for _ in range(extra_continues):
                        if stop.get("exited"):
                            break
                        stop = client.cont(session_id)
                    results[name] = (session_id, stop["reason"])
                    client.disconnect(session_id)
            except Exception as exc:  # pragma: no cover
                errors.append((name, exc))

        first = threading.Thread(target=drive, args=("first", 0))
        second = threading.Thread(target=drive, args=("second", 50))
        first.start()
        second.start()
        first.join(timeout=30)
        second.join(timeout=30)
        assert not errors, errors
        assert results["first"][0] != results["second"][0]
        assert results["second"][1] == "exited"
        # the server survived both sessions and still serves
        with client_for(server) as client:
            client.initialize()
            assert client.sessions() == []

    def test_conditional_breakpoint(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE)
            info = client.data_breakpoint_info(session_id, "total")
            client.set_data_breakpoints(
                session_id, [{"dataId": info["dataId"],
                              "condition": ">= 100"}])
            stop = client.cont(session_id)
            assert stop["reason"] == "watch"
            assert stop["value"] >= 100

    def test_step_and_unwatchable_name(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE)
            stop = client.step(session_id, count=5)
            assert stop["reason"] == "step"
            assert stop["instructions"] == 5
            # a register variable is not watchable: null dataId + note
            info = client.data_breakpoint_info(session_id, "i",
                                               func="main")
            assert info["dataId"] is None
            assert "register" in info["description"]


class TestQuotaDegradation:
    def test_quota_is_resumable_and_instructions_accumulate(self):
        config = ServerConfig(quota_instructions=40)
        with DebugServer(config=config).start() as server:
            with client_for(server) as client:
                client.initialize()
                session_id, _info = launch_with_watch(client, stop=False)
                stop = client.cont(session_id)
                assert stop["reason"] == "quota"
                assert stop["resumable"] is True
                assert stop["budget"] == "instructions"
                quotas = 1
                while stop["reason"] == "quota":
                    stop = client.cont(session_id)
                    quotas += 1
                    assert quotas < 100
                assert stop["reason"] == "exited"
                assert quotas > 1
                assert stop["instructionsSpent"] == stop["instructions"]

    def test_client_cannot_exceed_server_quota(self):
        config = ServerConfig(quota_instructions=40)
        with DebugServer(config=config).start() as server:
            with client_for(server) as client:
                client.initialize()
                session_id = client.launch(SOURCE)
                stop = client.cont(session_id, quota=10_000_000)
                assert stop["reason"] == "quota"


class TestFaultInjection:
    def test_injected_fault_is_a_structured_error_not_a_crash(self,
                                                              server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(
                SOURCE, faults={"schedule": {BITMAP_ALLOC: [0]}})
            info = client.data_breakpoint_info(session_id, "total")
            results = client.set_data_breakpoints(
                session_id, [{"dataId": info["dataId"]}])
            assert results[0]["verified"] is False
            error = results[0]["error"]
            assert error["error"] == "RegionCreateError"
            assert error["cause"]["error"] == "InjectedFault"
            assert "region" in error["context"]
            # the MRS rolled back: the same breakpoint now installs
            # (occurrence 0 already consumed) and the session still runs
            results = client.set_data_breakpoints(
                session_id, [{"dataId": info["dataId"]}])
            assert results[0]["verified"] is True
            assert client.cont(session_id)["reason"] == "watch"
        # ... and the server still serves fresh sessions
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE)
            assert run_to_exit(client, session_id)["exitCode"] == 0


class TestResourceManagement:
    def test_session_capacity_is_enforced(self):
        config = ServerConfig(max_sessions=1)
        with DebugServer(config=config).start() as server:
            with client_for(server) as client:
                client.initialize()
                client.launch(SOURCE)
                with pytest.raises(RemoteError) as excinfo:
                    client.launch(SOURCE)
                assert excinfo.value.remote_error == "ServerError"
                assert excinfo.value.context["reason"] == "capacity"

    def test_idle_sessions_are_evicted_with_an_event(self):
        config = ServerConfig(idle_timeout=0.3)
        with DebugServer(config=config).start() as server:
            with client_for(server) as client:
                client.initialize()
                session_id = client.launch(SOURCE)
                evicted = client.wait_event("sessionEvicted",
                                            timeout=10.0)
                assert evicted["sessionId"] == session_id
                assert evicted["reason"] == "idle"
                with pytest.raises(RemoteError) as excinfo:
                    client.cont(session_id)
                assert excinfo.value.context["reason"] == \
                    "unknown_session"

    def test_draining_manager_refuses_new_work(self, server):
        manager = server.manager
        manager.shutdown(drain=True, timeout=1.0)
        with pytest.raises(ServerError) as excinfo:
            manager.create(lambda: None)
        assert excinfo.value.context["reason"] == "draining"
        with pytest.raises(ServerError):
            manager.execute("s1", lambda managed: None)

    def test_disconnecting_client_reaps_its_sessions(self, server):
        client = client_for(server)
        client.initialize()
        client.launch(SOURCE)
        assert server.manager.session_count() == 1
        client.close()
        deadline = threading.Event()
        for _ in range(100):
            if server.manager.session_count() == 0:
                break
            deadline.wait(0.05)
        assert server.manager.session_count() == 0


class TestWireRobustness:
    def test_malformed_frame_gets_error_and_connection_survives(self,
                                                                server):
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=10)
        try:
            body = b"this is not json"
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = decode(read_frame(sock))
            assert response.success is False
            assert response.error["error"] == "ProtocolError"
            # frame boundaries held: the connection still serves
            sock.sendall(encode(Request(seq=1, command="initialize",
                                        arguments={})))
            response = decode(read_frame(sock))
            assert response.success is True
        finally:
            sock.close()

    def test_oversized_frame_drops_the_connection(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=10)
        try:
            sock.sendall(struct.pack(">I", 1 << 30))
            response = decode(read_frame(sock))
            assert response.success is False
            assert response.error["context"]["reason"] == "oversized"
            assert read_frame(sock) is None  # server hung up
        finally:
            sock.close()

    def test_server_ignores_client_events(self, server):
        with client_for(server) as client:
            client.initialize()
            from repro.server.protocol import Event
            client._sock.sendall(encode(Event(seq=99, event="rogue")))
            # a direction violation is answered, not fatal
            assert client.initialize()["protocolVersion"] == 4


class TestTimeTravel:
    """ISSUE acceptance: time travel end to end over the socket."""

    def test_capability_negotiation_gates_step_back(self, server):
        with client_for(server) as client:
            negotiated = client.initialize()
            assert negotiated["protocolVersion"] == 4
            assert negotiated["capabilities"]["supportsStepBack"] is True
            # a v1 client must never be offered time travel
            legacy = client.initialize(version=1)
            assert legacy["protocolVersion"] == 1
            assert "supportsStepBack" not in legacy["capabilities"]

    def test_reverse_continue_and_last_write_over_socket(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE, record={"stride": 200})
            info = client.data_breakpoint_info(session_id, "total")
            client.set_data_breakpoints(
                session_id, [{"dataId": info["dataId"], "stop": False}])
            stop = run_to_exit(client, session_id)
            final = stop["instructions"]
            forward_hits = client.pop_events("monitorHit")
            assert forward_hits

            # reverse-continue stops at the most recent recorded write
            stop = client.reverse_continue(session_id)
            assert stop["reason"] == "watch"
            assert stop["symbol"] == "total"
            assert stop["value"] == 190
            assert stop["instructions"] < final
            assert stop["exited"] is False
            first_stop = stop["instructions"]

            # ... and keeps walking backwards through earlier writes
            stop = client.reverse_continue(session_id)
            assert stop["reason"] == "watch"
            assert stop["instructions"] < first_stop
            assert stop["value"] < 190

            # the replayed window streamed monitorHit events again
            replayed = client.pop_events("monitorHit")
            assert replayed
            assert all(hit["sessionId"] == session_id
                       for hit in replayed)

            # lastWrite answers (pc, instruction, old/new) from here
            body = client.last_write(session_id, "total")
            assert body["found"] is True
            assert body["address"] == info["address"]
            assert body["pc"] >= TEXT_BASE
            assert body["instruction"] < stop["instructions"]
            assert body["newValue"] == stop["value"]
            assert body["source"] == "trace"

            # stepBack lands exactly count instructions earlier
            here = stop["instructions"]
            stop = client.step_back(session_id, count=7)
            assert stop["reason"] == "step"
            assert stop["instructions"] == here - 7

            # forward execution from the travelled point still works
            stop = run_to_exit(client, session_id)
            assert stop["exitCode"] == 0
            assert stop["instructions"] == final
            client.disconnect(session_id)

    def test_reverse_requests_need_a_recording(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE)  # no record option
            for call in (lambda: client.reverse_continue(session_id),
                         lambda: client.step_back(session_id),
                         lambda: client.last_write(session_id, "total")):
                with pytest.raises(RemoteError) as excinfo:
                    call()
                assert excinfo.value.remote_error == "ReplayError"
                assert excinfo.value.context["reason"] == "not_recording"
            # the session itself is unharmed
            assert run_to_exit(client, session_id)["exitCode"] == 0

    def test_reverse_continue_at_start_reports_replay_start(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE, record=True)
            launch_info = client.data_breakpoint_info(session_id, "total")
            client.set_data_breakpoints(
                session_id, [{"dataId": launch_info["dataId"],
                              "stop": False}])
            stop = client.reverse_continue(session_id)
            assert stop["reason"] == "replay-start"
            assert stop["instructions"] == 0


class TestReRunnableSession:
    """Satellite: DebugSession.run() must not double-count on re-run."""

    def test_fresh_run_after_limit_matches_reference(self):
        reference = DebugSession.from_minic(SOURCE)
        reference.mrs.enable()
        assert reference.run() == 0
        expected = (reference.cpu.instructions, list(reference.output))

        session = DebugSession.from_minic(SOURCE)
        session.mrs.enable()
        with pytest.raises(SimulationLimit):
            session.run(watchdog=Watchdog(max_instructions=50,
                                          snapshot=False))
        # a *fresh* run (server relaunch) rewinds instead of stacking
        assert session.run() == 0
        assert (session.cpu.instructions, list(session.output)) == \
            expected
        # and once more, to prove it is stable
        assert session.run() == 0
        assert (session.cpu.instructions, list(session.output)) == \
            expected

    def test_resume_before_start_is_a_fresh_run(self):
        session = DebugSession.from_minic(SOURCE)
        session.mrs.enable()
        assert session.run(resume=True) == 0

    def test_resume_semantics_unchanged(self):
        session = DebugSession.from_minic(SOURCE)
        session.mrs.enable()
        watchdog = Watchdog(max_instructions=60, snapshot=False)
        interruptions = 0
        resume = False
        while True:
            try:
                assert session.run(watchdog=watchdog, resume=resume) == 0
                break
            except SimulationLimit:
                interruptions += 1
                resume = True
                assert interruptions < 200
        assert interruptions >= 1


class TestSharedServiceThreadSafety:
    """Satellite: concurrent MRS mutation must not corrupt state."""

    def test_concurrent_create_delete_is_consistent(self):
        session = DebugSession.from_minic(SOURCE)
        session.mrs.enable()
        mrs = session.mrs
        errors = []

        def hammer(offset):
            try:
                for round_no in range(30):
                    start = 0x20010000 + offset * 0x1000
                    region = mrs.create_region(start, 16)
                    mrs.pre_monitor("total")
                    mrs.post_monitor("total")
                    mrs.delete_region(region)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(index,))
                   for index in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        assert len(mrs.regions) == 0
        assert mrs.active_sites() == []
        # the bitmap agrees that nothing is monitored any more
        for offset in range(6):
            start = 0x20010000 + offset * 0x1000
            assert not mrs.bitmap.hit(start, 16)
